"""replint — the repro repository's AST-based invariant checker.

Five rule families enforce what code review used to: **REP001** determinism
(seeded, threaded randomness), **REP002** cache coherence (the overlay /
underlay cache contracts from ``docs/PERFORMANCE.md``), **REP003** layering
(substrate never imports drivers), **REP004** perf hygiene (batched delay
lookups, not in-loop scalar faults), **REP005** no topology pickling (the
underlay crosses process boundaries via shared memory, never pickled into
pool submissions).  See ``docs/STATIC_ANALYSIS.md``.

Usage::

    python -m tools.replint src tests          # CLI
    from tools.replint import check_paths      # pytest bridge / programmatic

Suppress a finding with ``# replint: disable=REP00x`` on (or directly
above) the offending line.
"""

from .engine import (
    FileContext,
    Rule,
    Violation,
    check_file,
    check_paths,
    iter_python_files,
)
from .rules import default_rules, rules_by_code

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "check_file",
    "check_paths",
    "iter_python_files",
    "default_rules",
    "rules_by_code",
]
