"""Command-line entry point: ``python -m tools.replint [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import DEFAULT_EXCLUDED_DIRS, check_paths
from .rules import default_rules, rules_by_code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.replint",
        description=(
            "AST-based invariant checker for the repro codebase: "
            "determinism (REP001), cache coherence (REP002), layering "
            "(REP003), perf hygiene (REP004), no topology pickling "
            "(REP005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="descend into 'fixtures' directories (excluded by default "
        "because the replint test suite keeps deliberately bad files there)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print only violations",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name:16s} {rule.description}")
        return 0

    rules = default_rules()
    if args.rules:
        table = rules_by_code()
        wanted = [c.strip() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in wanted if c not in table]
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(table))})",
                file=sys.stderr,
            )
            return 2
        rules = [table[c] for c in wanted]

    excluded = DEFAULT_EXCLUDED_DIRS
    if args.include_fixtures:
        excluded = frozenset(excluded - {"fixtures"})

    try:
        violations = check_paths(
            [Path(p) for p in args.paths], rules=rules, excluded_dirs=excluded
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.format())
    if not args.quiet:
        codes = ", ".join(r.code for r in rules)
        if violations:
            print(f"replint: {len(violations)} violation(s) [{codes}]")
        else:
            print(f"replint: clean [{codes}]")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
