"""Command-line entry point: ``python -m tools.replint [paths...]``.

Exit status: 0 when clean (or all findings baselined), 1 when new
violations were found, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import DEFAULT_EXCLUDED_DIRS, check_paths, iter_contexts
from .output import (
    apply_baseline,
    default_baseline_path,
    load_baseline,
    to_json,
    to_sarif,
    write_baseline,
)
from .rules import default_rules, rules_by_code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.replint",
        description=(
            "Whole-program invariant checker for the repro codebase: "
            "determinism (REP001), cache coherence (REP002), layering "
            "(REP003), perf hygiene (REP004), no topology pickling "
            "(REP005), oracle seam (REP006), batched queries (REP007), "
            "SoA hygiene (REP008), RNG stream discipline (REP009), "
            "shared-memory lifecycle (REP010), version bumps (REP011), "
            "float-order hazards (REP012), suppression hygiene (REP013)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "tools"],
        help="files or directories to check (default: src tests tools)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="descend into 'fixtures' directories (excluded by default "
        "because the replint test suite keeps deliberately bad files there)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings serialization (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write findings to FILE instead of stdout "
        "(the summary line still goes to stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings file; findings recorded there do not fail "
        "the run (default: tools/replint/baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        nargs="?",
        const="",
        help="write the current findings as the new baseline and exit 0 "
        "(default target: the active baseline path)",
    )
    parser.add_argument(
        "--show-suppressions",
        action="store_true",
        help="audit every '# replint: disable' pragma (with justification) "
        "and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print only violations",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name:24s} {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    excluded = DEFAULT_EXCLUDED_DIRS
    if args.include_fixtures:
        excluded = frozenset(excluded - {"fixtures"})

    if args.show_suppressions:
        try:
            count = 0
            for ctx in iter_contexts(paths, excluded_dirs=excluded):
                for record in ctx.suppressions.records:
                    count += 1
                    codes = ",".join(sorted(record.codes))
                    scope = (
                        "file"
                        if record.kind == "file"
                        else f"line {record.target_line}"
                    )
                    why = record.justification or "(no justification)"
                    print(f"{ctx.path}:{record.pragma_line}: [{codes}] {scope} — {why}")
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.quiet:
            print(f"replint: {count} suppression(s)")
        return 0

    rules: List[object] = list(default_rules())
    if args.rules:
        table = rules_by_code()
        wanted = [c.strip() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in wanted if c not in table]
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(table))})",
                file=sys.stderr,
            )
            return 2
        rules = [table[c] for c in wanted]

    try:
        violations = check_paths(paths, rules=rules, excluded_dirs=excluded)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = default_baseline_path()

    if args.write_baseline is not None:
        target = Path(args.write_baseline) if args.write_baseline else baseline_path
        if target is None:
            target = Path(__file__).resolve().parent / "baseline.json"
        write_baseline(target, violations)
        if not args.quiet:
            print(f"replint: wrote baseline with {len(violations)} finding(s) to {target}")
        return 0

    absorbed = 0
    if baseline_path is not None:
        violations, absorbed = apply_baseline(violations, load_baseline(baseline_path))

    if args.format == "json":
        _emit(to_json(violations, rules), args.output)
    elif args.format == "sarif":
        _emit(to_sarif(violations, rules), args.output)
    else:
        text = "".join(v.format() + "\n" for v in violations)
        _emit(text, args.output)

    if not args.quiet:
        codes = ", ".join(getattr(r, "code", "?") for r in rules)
        suffix = f", {absorbed} baselined" if absorbed else ""
        if violations:
            print(f"replint: {len(violations)} violation(s){suffix} [{codes}]")
        else:
            print(f"replint: clean{suffix} [{codes}]")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
