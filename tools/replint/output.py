"""Machine-readable output and the findings baseline.

Three serializations of a findings list:

* text — the classic ``path:line:col: CODE message`` (lives on
  :meth:`~tools.replint.engine.Violation.format`; nothing to do here),
* JSON — a small stable schema for scripting,
* SARIF 2.1.0 — what GitHub code scanning ingests, so replint findings
  annotate pull requests next to CodeQL's.

Plus the **baseline**: a checked-in inventory of accepted findings so CI
fails only on *new* ones.  Fingerprints are ``sha1(path::code::message)``
— deliberately line-independent, so unrelated edits that shift a finding
up or down do not churn the baseline; identical findings are multiplicity
counted, so adding a second instance of a baselined problem still fails.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Violation

__all__ = [
    "fingerprint",
    "to_json",
    "to_sarif",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: Schema version of both the JSON findings format and the baseline file.
FORMAT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def fingerprint(violation: Violation) -> str:
    """Stable identity of a finding, independent of its line/column."""
    key = f"{violation.path}::{violation.code}::{violation.message}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()


def _rule_table(rules: Sequence[object]) -> List[Tuple[str, str, str]]:
    seen = set()
    out: List[Tuple[str, str, str]] = []
    for rule in rules:
        code = getattr(rule, "code", "")
        if not code or code in seen:
            continue
        seen.add(code)
        out.append((code, getattr(rule, "name", ""), getattr(rule, "description", "")))
    return sorted(out)


def to_json(violations: Sequence[Violation], rules: Sequence[object] = ()) -> str:
    """Render findings as a JSON document (stable key order, trailing \\n)."""
    doc = {
        "version": FORMAT_VERSION,
        "tool": "replint",
        "rules": [
            {"code": code, "name": name, "description": desc}
            for code, name, desc in _rule_table(rules)
        ],
        "findings": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
                "fingerprint": fingerprint(v),
            }
            for v in violations
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def to_sarif(violations: Sequence[Violation], rules: Sequence[object] = ()) -> str:
    """Render findings as a SARIF 2.1.0 log (one run, one artifact per file)."""
    sarif_rules = [
        {
            "id": code,
            "name": name or code,
            "shortDescription": {"text": desc or name or code},
            "help": {"text": f"See docs/STATIC_ANALYSIS.md, section {code}."},
        }
        for code, name, desc in _rule_table(rules)
    ]
    known = {r["id"] for r in sarif_rules}
    results = []
    for v in violations:
        result = {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(v.path).as_posix(),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": max(v.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {"replintFingerprint/v1": fingerprint(v)},
        }
        if v.code in known:
            result["ruleIndex"] = sorted(known).index(v.code)
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "rules": sarif_rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into ``{fingerprint: allowed count}``.

    A missing file is an empty baseline (every finding is new), so a fresh
    checkout with no baseline behaves exactly like plain replint.
    """
    if not path.is_file():
        return {}
    doc = json.loads(path.read_text(encoding="utf-8"))
    entries = doc.get("findings", [])
    out: Dict[str, int] = {}
    for entry in entries:
        out[entry["fingerprint"]] = out.get(entry["fingerprint"], 0) + int(
            entry.get("count", 1)
        )
    return out


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Write the baseline for *violations* (sorted, multiplicity-counted)."""
    counted: Dict[str, Dict[str, object]] = {}
    for v in violations:
        fp = fingerprint(v)
        if fp in counted:
            counted[fp]["count"] = int(counted[fp]["count"]) + 1  # type: ignore[arg-type]
        else:
            counted[fp] = {
                "fingerprint": fp,
                "path": v.path,
                "code": v.code,
                "message": v.message,
                "count": 1,
            }
    doc = {
        "version": FORMAT_VERSION,
        "tool": "replint",
        "findings": sorted(
            counted.values(), key=lambda e: (e["path"], e["code"], e["message"])
        ),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> Tuple[List[Violation], int]:
    """Split findings into (new, suppressed-by-baseline count).

    Each baselined fingerprint absorbs up to its recorded count of
    matching findings; any surplus is new (a second copy of an accepted
    problem is still a regression).
    """
    budget = dict(baseline)
    fresh: List[Violation] = []
    absorbed = 0
    for v in violations:
        fp = fingerprint(v)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            absorbed += 1
        else:
            fresh.append(v)
    return fresh, absorbed


def default_baseline_path() -> Optional[Path]:
    """The checked-in baseline next to this package, when present."""
    candidate = Path(__file__).resolve().parent / "baseline.json"
    return candidate if candidate.is_file() else None
