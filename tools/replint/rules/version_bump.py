"""REP011 — structural mutation implies a version bump, on every path.

The compiled forwarding graphs (PR 5) and the flat ACE store (PR 6) are
caches keyed by ``Overlay.epoch`` / ``AceProtocol`` ``state_version``.  A
method that mutates tracked structure but returns without bumping the
counter leaves a stale compiled graph looking fresh — the bug class that
no test catches until a query routes over an edge that no longer exists.

Contracts (a class named below, or any textual subclass of it):

========== ============================== ======================
Class      Tracked structure              Version counter
========== ============================== ======================
Overlay    ``self._adjacency``/``_hosts`` ``self._epoch``
ArrayOverlay ``self._index``/``_nedges``  ``self._epoch``
AceProtocol ``self._states`` + calls to   ``self._state_version``
            ``self._flat.put/.drop``
========== ============================== ======================

*Mutation* means element-level change — subscript assignment/deletion,
augmented assignment, mutator method calls (``add``/``discard``/``pop``/
``update``/…), directly or through a one-level local alias.  Rebinding the
whole attribute (``self._index = fresh``) is the constructor/rebuild idiom
and is not tracked; cost backfill into value arrays is not structure.

The all-paths scanner accepts two idioms besides a plain bump-after-
mutate: the *bump-iff-changed* guard (``if self._flat.drop(p):
self._state_version += 1`` — the falsy branch means nothing changed) and
``finally`` blocks.  A **private** helper that mutates without bumping is
accepted when every in-index caller bumps (or is itself such a helper,
transitively) — that is how ``_new_slot`` stays an implementation detail
of ``add_peer``.  Public methods must satisfy the contract themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import ProgramRule, Violation
from ..program import ClassInfo, FunctionInfo, ProgramIndex
from ..program.dataflow import check_obligation, collect_bindings, walk_no_nested

_MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


@dataclass(frozen=True)
class _Contract:
    classes: Tuple[str, ...]
    tracked_attrs: Tuple[str, ...]
    version_attrs: Tuple[str, ...]
    #: attribute -> method names whose *call* is a tracked mutation
    mutating_calls: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


_CONTRACTS: Tuple[_Contract, ...] = (
    _Contract(
        classes=("Overlay",),
        tracked_attrs=("_adjacency", "_hosts"),
        version_attrs=("_epoch",),
    ),
    _Contract(
        classes=("ArrayOverlay",),
        tracked_attrs=("_index", "_nedges"),
        version_attrs=("_epoch",),
    ),
    _Contract(
        classes=("AceProtocol",),
        tracked_attrs=("_states",),
        version_attrs=("_state_version",),
        mutating_calls={"_flat": ("put", "drop")},
    ),
)

#: Methods never checked: construction fills structure before the object
#: is visible, so there is no cache to invalidate yet.
_EXEMPT_METHODS = {"__init__", "__new__", "__setstate__"}


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``X`` (possibly through one subscript layer)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class VersionBumpRule(ProgramRule):
    """Flag tracked mutations that can return without a version bump."""

    code = "REP011"
    name = "version-bump"
    description = (
        "methods mutating Overlay/ArrayOverlay adjacency or AceProtocol "
        "state membership must bump _epoch/_state_version on every return "
        "path; compiled-graph and flat-store caches key on those counters"
    )

    def check_program(self, program: ProgramIndex) -> Iterable[Violation]:
        plans = self._method_plans(program)
        verdicts: Dict[str, Optional[bool]] = {}
        for qualname in sorted(plans):
            self._verdict(qualname, plans, program, verdicts)
        for qualname in sorted(plans):
            plan = plans[qualname]
            if verdicts.get(qualname) or not plan.failures:
                continue
            for anchor, detail in plan.failures:
                yield Violation(
                    path=plan.info.path,
                    line=anchor.lineno,
                    col=anchor.col_offset + 1,
                    code=self.code,
                    message=(
                        f"{plan.class_name}.{plan.info.name}() mutates "
                        f"tracked structure but {detail} without bumping "
                        f"{' or '.join(plan.contract.version_attrs)}; stale "
                        f"compiled-graph caches would key on the old version"
                    ),
                )

    # -- planning -----------------------------------------------------------

    def _contract_for(self, program: ProgramIndex, cinfo: ClassInfo) -> Optional[_Contract]:
        """Most-specific contract for *cinfo* (own name first, then bases)."""
        by_class = {name: c for c in _CONTRACTS for name in c.classes}
        if cinfo.name in by_class:
            return by_class[cinfo.name]
        seen: Set[str] = set()
        frontier = list(cinfo.bases)
        while frontier:
            base = frontier.pop(0)
            if base in seen:
                continue
            seen.add(base)
            if base in by_class:
                return by_class[base]
            for parent in program.classes_by_name.get(base, []):
                frontier.extend(parent.bases)
        return None

    def _method_plans(self, program: ProgramIndex) -> Dict[str, "_Plan"]:
        plans: Dict[str, _Plan] = {}
        for cinfo in program.classes.values():
            contract = self._contract_for(program, cinfo)
            if contract is None:
                continue
            for mname, minfo in cinfo.methods.items():
                if mname in _EXEMPT_METHODS:
                    continue
                failures = self._scan_method(minfo, contract)
                if failures is None:
                    continue  # no tracked mutations at all
                plans[minfo.qualname] = _Plan(
                    info=minfo,
                    class_name=cinfo.name,
                    contract=contract,
                    failures=failures,
                )
        return plans

    def _scan_method(
        self, minfo: FunctionInfo, contract: _Contract
    ) -> Optional[List[Tuple[ast.AST, str]]]:
        node = minfo.node
        body = getattr(node, "body", [])
        if not body:
            return None
        tracked = set(contract.tracked_attrs)
        versions = set(contract.version_attrs)

        # One-level aliases: x = self._adjacency / x = self._extra[i] etc.
        aliases: Dict[str, str] = {}
        for name, binds in collect_bindings(body).items():
            for binding in binds:
                attr = _self_attr(binding.value)
                if attr in tracked:
                    aliases[name] = attr

        def mutated_attr(n: ast.AST) -> Optional[str]:
            """Tracked attribute mutated by *n*, if any."""

            def receiver_attr(expr: ast.expr) -> Optional[str]:
                attr = _self_attr(expr)
                if attr in tracked:
                    return attr
                base = expr
                if isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in aliases:
                    return aliases[base.id]
                return None

            if isinstance(n, (ast.Assign, ast.AnnAssign)):
                targets = n.targets if isinstance(n, ast.Assign) else [n.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = receiver_attr(target)
                        if attr is not None:
                            return attr
                return None
            if isinstance(n, ast.AugAssign):
                if isinstance(n.target, (ast.Subscript, ast.Attribute)):
                    attr = receiver_attr(n.target)
                    # ``self._nedges[i] += 1`` and ``self._nedges += 1``
                    if attr is None and isinstance(n.target, ast.Attribute):
                        attr = _self_attr(n.target)
                        attr = attr if attr in tracked else None
                    return attr
                return None
            if isinstance(n, ast.Delete):
                for target in n.targets:
                    if isinstance(target, ast.Subscript):
                        attr = receiver_attr(target)
                        if attr is not None:
                            return attr
                return None
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
                if n.func.attr in _MUTATOR_METHODS:
                    return receiver_attr(n.func.value)
                for attr, methods in contract.mutating_calls.items():
                    if n.func.attr in methods and _self_attr(n.func.value) == attr:
                        return attr
                return None
            return None

        def is_trigger(n: ast.AST) -> bool:
            return mutated_attr(n) is not None

        def is_release(n: ast.AST) -> bool:
            if isinstance(n, (ast.Assign, ast.AnnAssign)):
                targets = n.targets if isinstance(n, ast.Assign) else [n.target]
                return any(_self_attr(t) in versions for t in targets)
            if isinstance(n, ast.AugAssign):
                return _self_attr(n.target) in versions
            return False

        if not any(is_trigger(n) for n in walk_no_nested(node)):
            return None
        failures = check_obligation(body, is_trigger, is_release)
        out: List[Tuple[ast.AST, str]] = []
        for failure in failures:
            anchor = failure.trigger if failure.trigger is not None else body[-1]
            where = getattr(failure.exit_node, "lineno", None)
            detail = (
                f"can return (line {where})"
                if failure.kind == "return" and where is not None
                else "can fall off the end"
            )
            out.append((anchor, detail))
        return out

    # -- caller-bump fixpoint -----------------------------------------------

    def _bumps_anywhere(self, info: FunctionInfo, versions: Set[str]) -> bool:
        for n in walk_no_nested(info.node):
            if isinstance(n, ast.Assign) and any(
                _self_attr(t) in versions or
                (isinstance(t, ast.Attribute) and t.attr in versions)
                for t in n.targets
            ):
                return True
            if isinstance(n, ast.AugAssign) and (
                _self_attr(n.target) in versions
                or (
                    isinstance(n.target, ast.Attribute)
                    and n.target.attr in versions
                )
            ):
                return True
        return False

    def _verdict(
        self,
        qualname: str,
        plans: Dict[str, "_Plan"],
        program: ProgramIndex,
        verdicts: Dict[str, Optional[bool]],
        stack: Optional[Set[str]] = None,
    ) -> bool:
        """Whether *qualname* satisfies its contract (possibly via callers)."""
        if qualname in verdicts:
            cached = verdicts[qualname]
            return bool(cached)
        stack = stack or set()
        if qualname in stack:
            return False  # mutual recursion with no bump anywhere: flag it
        stack.add(qualname)
        try:
            plan = plans.get(qualname)
            if plan is None:
                return True
            if not plan.failures:
                verdicts[qualname] = True
                return True
            if not plan.info.is_private:
                verdicts[qualname] = False
                return False
            versions = set(plan.contract.version_attrs)
            callers = program.callers_of.get(qualname, [])
            if not callers:
                verdicts[qualname] = False
                return False
            for site in callers:
                caller = program.functions.get(site.caller)
                if caller is None:
                    verdicts[qualname] = False
                    return False
                if self._bumps_anywhere(caller, versions):
                    continue
                caller_plan = plans.get(site.caller)
                if caller_plan is not None and self._verdict(
                    site.caller, plans, program, verdicts, stack
                ):
                    continue
                # A caller that neither bumps nor mutates must be excused
                # the same way a private non-bumping mutator is.
                if caller.is_private and self._excused_caller(
                    site.caller, versions, plans, program, verdicts, stack
                ):
                    continue
                verdicts[qualname] = False
                return False
            verdicts[qualname] = True
            return True
        finally:
            stack.discard(qualname)

    def _excused_caller(
        self,
        qualname: str,
        versions: Set[str],
        plans: Dict[str, "_Plan"],
        program: ProgramIndex,
        verdicts: Dict[str, Optional[bool]],
        stack: Set[str],
    ) -> bool:
        """A private non-mutating caller is fine when *its* callers all
        bump (transitively) — ``_maybe_compact`` between ``connect`` and
        ``_compact`` is this shape."""
        if qualname in stack:
            return False
        stack.add(qualname)
        try:
            callers = program.callers_of.get(qualname, [])
            if not callers:
                return False
            for site in callers:
                caller = program.functions.get(site.caller)
                if caller is None:
                    return False
                if self._bumps_anywhere(caller, versions):
                    continue
                if plans.get(site.caller) is not None and self._verdict(
                    site.caller, plans, program, verdicts, stack
                ):
                    continue
                if caller.is_private and self._excused_caller(
                    site.caller, versions, plans, program, verdicts, stack
                ):
                    continue
                return False
            return True
        finally:
            stack.discard(qualname)


@dataclass
class _Plan:
    info: FunctionInfo
    class_name: str
    contract: _Contract
    failures: List[Tuple[ast.AST, str]]
