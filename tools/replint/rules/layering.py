"""REP003 — the dependency arrows between repro's subpackages point one way.

The layering (bottom to top) is::

    repro.topology, repro.perf          # substrate: graphs, caches, counters
    repro.oracle                        # delay backends over the substrate
    repro.sim, repro.search, repro.core # mechanics: events, queries, ACE
    repro.extensions                    # alternative protocols (LTM, Gia, ...)
    repro.experiments, repro.cli        # drivers that assemble everything

Lower layers importing upper ones (``topology`` importing ``experiments``)
creates cycles, makes the substrate untestable in isolation, and — the MPO
lesson from PAPERS.md — lets experiment-level policy leak into cache-bearing
infrastructure.  This rule also forbids importing ``_``-private names across
modules: a private helper that is imported elsewhere is an API without a
contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..engine import FileContext, Rule, Violation

#: (importer prefix, forbidden import prefix) pairs.
_FORBIDDEN: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...]], ...] = (
    (
        ("repro.topology", "repro.sim", "repro.perf", "repro.oracle"),
        ("repro.experiments", "repro.extensions", "repro.cli"),
    ),
    (
        ("repro.search", "repro.core"),
        ("repro.experiments", "repro.cli"),
    ),
)


class LayeringRule(Rule):
    """Forbid upward imports and cross-module private-name imports."""

    code = "REP003"
    name = "layering"
    description = (
        "substrate layers (topology/sim) must not import driver layers "
        "(experiments/extensions); private _names are not importable "
        "across modules"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bad = self._forbidden_target(ctx.module, alias.name)
                    if bad:
                        yield ctx.violation(node, self.code, bad)
            elif isinstance(node, ast.ImportFrom):
                is_package = ctx.path.name == "__init__.py"
                resolved = _resolve_import(ctx.module, node, is_package)
                if resolved is not None:
                    bad = self._forbidden_target(ctx.module, resolved)
                    if bad:
                        yield ctx.violation(node, self.code, bad)
                for alias in node.names:
                    if _is_private(alias.name):
                        src = resolved or node.module or "." * node.level
                        yield ctx.violation(
                            node,
                            self.code,
                            f"importing private name {alias.name!r} from "
                            f"{src} couples modules through an interface "
                            "with no contract; promote it to a public API "
                            "or inline it",
                        )

    def _forbidden_target(
        self, module: Optional[str], imported: str
    ) -> Optional[str]:
        if module is None:
            return None
        for importers, forbidden in _FORBIDDEN:
            if _has_prefix(module, importers) and _has_prefix(imported, forbidden):
                return (
                    f"layering violation: {module} (substrate layer) imports "
                    f"{imported} (driver layer); dependencies must point "
                    "from drivers down to the substrate, never up"
                )
        return None


def _has_prefix(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def _resolve_import(
    module: Optional[str], node: ast.ImportFrom, is_package: bool
) -> Optional[str]:
    """Absolute dotted target of an ImportFrom, or ``None`` if unknown.

    Relative imports are resolved against the importer's package (a package
    ``__init__`` is its own package; a plain module's package drops the last
    component); absolute imports are returned as written.
    """
    if node.level == 0:
        return node.module
    if module is None:
        return None
    package = module.split(".")
    if not is_package:
        package = package[:-1]
    if len(package) < node.level - 1:
        return None
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None
