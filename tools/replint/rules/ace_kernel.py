"""REP014 — no per-peer scalar ACE refresh loops outside the kernel.

The batched ACE kernel (PR 8, :mod:`repro.core.batch_ace`) extracts every
scheduled peer's h-neighbor closure in one shared CSR frontier sweep, runs
the Phase-1 cost pass over flat arrays, and builds the MSTs with a
segmented local-index kernel.  A loop of the shape

.. code-block:: python

    for peer in batch:
        state, phase1 = protocol.refresh_peer(peer)     # or run_phase1 /
        ...                                             # neighbor_closure

re-derives one closure per peer per iteration — a BFS, a dict-of-dicts
cost table and a Python MST each time — and is exactly the interpreter
bound inner loop the kernel replaced.  Inside ``repro.core`` and
``repro.experiments`` — the packages the step/churn drivers live in — such
loops must route through the batched entry points (``batched_step``,
``churn_refresh``, ``extract_closures``) or carry a line suppression
explaining why the scalar path is genuinely required (the scalar
reference implementation itself, cold single-peer paths).

The rule flags ``for``/``async for`` statements that call
``refresh_peer()`` / ``run_phase1()`` / ``neighbor_closure()`` anywhere
in the loop body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, Violation

_SCALAR_CALLS = {"refresh_peer", "run_phase1", "neighbor_closure"}

_HOT_PACKAGES = ("repro.core", "repro.experiments")


def _body_calls(node: ast.AST) -> Iterator[str]:
    """Names of flagged scalar ACE helpers called anywhere under *node*."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Attribute) and func.attr in _SCALAR_CALLS:
            yield func.attr
        elif isinstance(func, ast.Name) and func.id in _SCALAR_CALLS:
            yield func.id


class AceKernelRule(Rule):
    """Flag per-peer scalar ACE refresh loops in step/churn driver code."""

    code = "REP014"
    name = "ace-kernel"
    description = (
        "per-peer loops calling refresh_peer()/run_phase1()/"
        "neighbor_closure() re-derive one closure per iteration; step and "
        "churn drivers must use the batched kernel (batched_step/"
        "churn_refresh/extract_closures)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in _HOT_PACKAGES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            helpers = sorted(
                {name for part in node.body for name in _body_calls(part)}
            )
            if not helpers:
                continue
            calls = ", ".join(f"{name}()" for name in helpers)
            yield ctx.violation(
                node,
                self.code,
                f"per-peer loop calls {calls} each iteration, re-deriving "
                "closures one peer at a time; route through the batched ACE "
                "kernel (batched_step/churn_refresh/extract_closures) or "
                "justify the scalar path with a suppression",
            )
