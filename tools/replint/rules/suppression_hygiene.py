"""REP013 — every suppression pragma must say why.

A ``# replint: disable=...`` comment is a standing exception to a repo
invariant; six months later the only thing that keeps it honest is the
justification written next to it.  This rule requires non-empty free text
after the code list::

    ok:   # replint: disable=REP004 — served from the just-warmed cache
    bad:  # replint: disable=REP004

The findings of this rule are **not themselves suppressible**: a bare
``# replint: disable`` would otherwise silence the very rule that audits
it.  Fix the pragma (or use ``--show-suppressions`` to review the whole
inventory).
"""

from __future__ import annotations

from typing import Iterator, List

from ..engine import FileContext, Rule, Violation


class SuppressionHygieneRule(Rule):
    """Flag ``replint: disable`` pragmas with no justification text."""

    code = "REP013"
    name = "suppression-hygiene"
    description = (
        "every '# replint: disable[-file]=' pragma must carry a written "
        "justification after the code list; audit the inventory with "
        "--show-suppressions"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for record in ctx.suppressions.records:
            if record.justification:
                continue
            codes = ",".join(sorted(record.codes))
            directive = "disable-file" if record.kind == "file" else "disable"
            yield Violation(
                path=str(ctx.path),
                line=record.pragma_line,
                col=1,
                code=self.code,
                message=(
                    f"suppression 'replint: {directive}={codes}' has no "
                    f"justification; add one after the code list "
                    f"(e.g. '... {codes} — reason')"
                ),
            )

    def run(self, ctx: FileContext) -> List[Violation]:
        # Deliberately bypass the suppression filter: this rule polices the
        # pragmas themselves, so they must not be able to silence it.
        if not self.applies_to(ctx):
            return []
        return list(self.check(ctx))
