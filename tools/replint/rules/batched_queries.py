"""REP007 — experiment drivers batch their queries.

PR 5 lowered every compilable forwarding strategy into a CSR graph and
replaced the experiments' query loops with one vectorized multi-source
kernel (:func:`repro.search.batch.run_queries` /
:func:`~repro.search.batch.propagate_many`).  A ``repro.experiments``
module that loops the scalar engine over query sources —
``run_query(...)`` or ``propagate(...)`` inside a ``for``/``while`` body —
quietly reverts the measurement path to one heap simulation per query,
which is the exact regression the batched kernel (and its >=5x benchmark
gate) exists to prevent.

The rule audits ``repro.experiments`` modules only: the scalar engine
remains the reference implementation, and tests, benchmarks, and the
search layer itself (including the batched engine's own fallback loop)
loop it freely.  Scalar flows the batch kernel cannot express — e.g.
``cached_query``'s ``stop_at`` pruning — are not flagged, and a deliberate
per-query scalar loop carries a line suppression stating why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, Violation

#: Scalar query entry points that have a batched replacement.
_SCALAR_QUERY_CALLS = frozenset(
    {"run_query", "propagate", "ace_query", "ace_propagate"}
)

#: Module prefix the rule audits.
_SCOPED_PREFIX = "repro.experiments"


class BatchedQueriesRule(Rule):
    """Flag scalar query-engine calls inside experiment loop bodies."""

    code = "REP007"
    name = "batched-queries"
    description = (
        "experiment modules must not loop the scalar run_query()/"
        "propagate() engine over query sources; batch them through "
        "repro.search.batch.run_queries/propagate_many"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return ctx.module == _SCOPED_PREFIX or ctx.module.startswith(
            _SCOPED_PREFIX + "."
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._visit(ctx, ctx.tree, in_loop=False)

    def _visit(
        self, ctx: FileContext, node: ast.AST, in_loop: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor)):
                # The iterable is evaluated once, outside the loop.
                yield from self._visit(ctx, child.iter, in_loop)
                yield from self._visit(ctx, child.target, in_loop)
                for part in child.body + child.orelse:
                    yield from self._visit(ctx, part, True)
                continue
            if isinstance(child, ast.While):
                # The condition re-evaluates every iteration: it counts.
                yield from self._visit(ctx, child.test, True)
                for part in child.body + child.orelse:
                    yield from self._visit(ctx, part, True)
                continue
            if in_loop and isinstance(child, ast.Call):
                name = _call_name(child.func)
                if name in _SCALAR_QUERY_CALLS:
                    yield ctx.violation(
                        child,
                        self.code,
                        f"scalar {name}() inside a loop body runs one heap "
                        "simulation per query; batch the sources through "
                        "run_queries()/propagate_many() "
                        "(repro.search.batch) instead",
                    )
            yield from self._visit(ctx, child, in_loop)
    # Comprehensions and generator expressions are deliberately not
    # counted: like REP004, flagging single vectorisable expressions would
    # drown the signal — the seed-era pattern is the statement-level loop.


def _call_name(func: ast.expr) -> str:
    """The called name, whether spelled bare or as an attribute."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""
