"""REP010 — shared-memory segments are unlinked on every path, by their owner.

POSIX shared memory outlives the process: a ``SharedMemory(create=True)``
segment that nobody ``unlink()``s stays in ``/dev/shm`` until reboot.  The
repo's ownership contract (``repro.topology.shm``) is:

* the **exporter** owns the segment and must reach ``unlink()`` on every
  path — a ``try``/``finally``, a context manager (``SharedSegments`` is
  one), or by *transferring* ownership (returning the handle, storing it
  in a registry, passing it to another function);
* **attachers** (``attach_shared``/``attach_array``/plain
  ``SharedMemory(name=...)``) map someone else's segment and must *never*
  unlink it — only close.

This rule walks every ``repro`` function in the program index.  Creation
sites (``export_shared()``, ``export_arrays()``, ``SharedUnderlay``/
``SharedSegments``/``SharedEmbedding`` construction, ``SharedMemory(...,
create=True)``, and calls into in-repo functions that *return* fresh
owners) bind local owner names; the all-paths dataflow scanner then
demands an ``unlink`` — directly, through an alias, or via a cleanup loop
over an owner container — before every return that does not transfer the
owner out.  A creation whose result is dropped on the floor (a bare
expression statement) is flagged immediately.  Conversely, any
``.unlink()`` on an attach-derived name is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import ProgramRule, Violation
from ..program import FunctionInfo, ProgramIndex
from ..program.dataflow import check_obligation, collect_bindings, walk_no_nested

#: Calls (by trailing name) that create an *owned* segment.
_CREATOR_NAMES = {
    "export_shared",
    "export_arrays",
    "SharedUnderlay",
    "SharedSegments",
    "SharedEmbedding",
}

#: Calls (by trailing name) that attach to someone else's segment.
_ATTACH_NAMES = {"attach_shared", "attach_array"}


def _trailing_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _mentions(node: Optional[ast.AST], names: Set[str]) -> bool:
    if node is None:
        return False
    return any(
        isinstance(n, ast.Name) and n.id in names for n in walk_no_nested(node)
    )


class ShmLifecycleRule(ProgramRule):
    """Flag owner segments that can leak and attachers that unlink."""

    code = "REP010"
    name = "shm-lifecycle"
    description = (
        "every export_shared()/SharedUnderlay/SharedMemory(create=True) "
        "owner must reach unlink() on all paths (finally/context manager) "
        "or transfer ownership out; attachers must never unlink"
    )

    def check_program(self, program: ProgramIndex) -> Iterable[Violation]:
        owner_sources = self._owner_source_functions(program)
        for info in program.iter_functions("repro"):
            ctx = program.context_for(info)
            for node, message in self._check_function(program, info, owner_sources):
                yield Violation(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=self.code,
                    message=message,
                )

    # -- creation classification --------------------------------------------

    def _is_creator_call(
        self,
        node: ast.Call,
        resolved: Dict[ast.Call, Optional[str]],
        owner_sources: Set[str],
    ) -> bool:
        name = _trailing_name(node.func)
        if name in _CREATOR_NAMES:
            return True
        if name == "SharedMemory":
            for kw in node.keywords:
                if kw.arg == "create" and (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                ):
                    return True
            return False
        callee = resolved.get(node)
        return callee is not None and callee in owner_sources

    def _is_attach_call(self, node: ast.Call) -> bool:
        name = _trailing_name(node.func)
        if name in _ATTACH_NAMES:
            return True
        if name == "SharedMemory":
            return not any(kw.arg == "create" for kw in node.keywords)
        return False

    def _owner_source_functions(self, program: ProgramIndex) -> Set[str]:
        """Functions whose return value carries a freshly-created owner.

        One local pass: the function contains a creator call, and some
        ``return`` mentions a name the creation (or a container holding
        it) was bound to, or returns a creation directly.  Calls to these
        then count as creations at *their* call sites.
        """
        sources: Set[str] = set()
        for info in program.iter_functions("repro"):
            body = getattr(info.node, "body", [])
            creations = [
                n
                for n in walk_no_nested(info.node)
                if isinstance(n, ast.Call)
                and (
                    _trailing_name(n.func) in _CREATOR_NAMES
                    or (
                        _trailing_name(n.func) == "SharedMemory"
                        and any(kw.arg == "create" for kw in n.keywords)
                    )
                )
            ]
            if not creations:
                continue
            tainted = self._owner_names(body, set(creations))
            for node in walk_no_nested(info.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if _mentions(node.value, tainted) or any(
                    c in set(walk_no_nested(node.value)) for c in creations
                ):
                    sources.add(info.qualname)
                    break
        return sources

    def _owner_names(
        self, body: List[ast.stmt], creations: Set[ast.Call]
    ) -> Set[str]:
        """Names bound to a creation, plus containers they are stored in."""
        owners: Set[str] = set()
        bindings = collect_bindings(body)
        for name, binds in bindings.items():
            for binding in binds:
                if binding.value in creations or (
                    isinstance(binding.value, ast.Call)
                    and binding.value in creations
                ):
                    owners.add(name)
        # containers: local[key] = <owner or creation>
        for root in body:
            for node in walk_no_nested(root):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in bindings
                        and (
                            node.value in creations
                            or _mentions(node.value, owners)
                        )
                    ):
                        owners.add(target.value.id)
        return owners

    # -- per-function check -------------------------------------------------

    def _check_function(
        self,
        program: ProgramIndex,
        info: FunctionInfo,
        owner_sources: Set[str],
    ) -> Iterable[Tuple[ast.AST, str]]:
        if info.qualname in owner_sources:
            # The function hands its creations to the caller; the call
            # sites carry the obligation instead.
            transfer_via_return = True
        else:
            transfer_via_return = True  # returns mentioning the owner always transfer
        body = getattr(info.node, "body", [])
        if not body:
            return
        resolved: Dict[ast.Call, Optional[str]] = {
            site.node: site.callee
            for site in program.calls_by_caller.get(info.qualname, [])
        }
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in walk_no_nested(info.node):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

        bindings = collect_bindings(body)

        owners: Dict[str, List[ast.Call]] = {}
        attach_names: Set[str] = set()
        for name, binds in bindings.items():
            for binding in binds:
                if isinstance(binding.value, ast.Call) and self._is_attach_call(
                    binding.value
                ):
                    attach_names.add(name)

        for node in walk_no_nested(info.node):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_creator_call(node, resolved, owner_sources):
                continue
            placement = self._placement(node, parents)
            if placement is None:
                continue  # transferred at the creation site itself
            kind, name_or_stmt = placement
            if kind == "leak":
                yield (
                    node,
                    f"'{_trailing_name(node.func)}(...)' creates an owned "
                    f"shared segment whose handle is dropped; bind it and "
                    f"unlink on all paths (or use the context manager)",
                )
            elif kind == "owner":
                owners.setdefault(name_or_stmt, []).append(node)

        for owner, creations in sorted(owners.items()):
            yield from self._check_owner(
                info, body, bindings, owner, creations, transfer_via_return
            )

        # Attachers must never unlink.
        attach_aliases = self._aliases(bindings, attach_names)
        for node in walk_no_nested(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in attach_aliases
            ):
                yield (
                    node,
                    f"'{node.func.value.id}' attaches to a segment owned by "
                    f"another process; attachers must close(), never "
                    f"unlink() — the exporter owns the segment's lifetime",
                )

    def _placement(
        self, node: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[Tuple[str, str]]:
        """How a creation's result is captured.

        ``None``
            transferred right at the creation site (returned, yielded,
            passed as an argument, stored into an attribute or non-local
            subscript, used as a context manager) — no local obligation;
        ``("owner", name)``
            bound to local *name* (including tuple unpacking), which now
            owes an ``unlink`` on all paths;
        ``("leak", "")``
            a bare expression statement: the handle is unrecoverable.
        """
        child: ast.AST = node
        parent = parents.get(child)
        while parent is not None:
            if isinstance(parent, ast.Call) and child is not parent.func:
                return None  # argument position: ownership handed over
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return None
            if isinstance(parent, ast.withitem):
                return None  # context manager handles the lifecycle
            if isinstance(parent, ast.Assign):
                names: List[str] = []
                transferred = False
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        names.append(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        names.extend(
                            e.id for e in target.elts if isinstance(e, ast.Name)
                        )
                    else:
                        transferred = True  # attribute / subscript store
                if names:
                    # Tuple unpacking can bind several names; charge the
                    # first (the conventions put the handle first) — the
                    # alias machinery picks up the rest.
                    return ("owner", names[0])
                if transferred:
                    return None
            if isinstance(parent, ast.Expr):
                return ("leak", "")
            child, parent = parent, parents.get(parent)
        return ("leak", "")

    def _aliases(
        self, bindings: Dict[str, List["object"]], roots: Set[str]
    ) -> Set[str]:
        out = set(roots)
        for name, binds in bindings.items():
            if name in out:
                continue
            for binding in binds:
                if _mentions(binding.value, roots):  # type: ignore[attr-defined]
                    out.add(name)
                    break
        return out

    def _check_owner(
        self,
        info: FunctionInfo,
        body: List[ast.stmt],
        bindings: Dict[str, List["object"]],
        owner: str,
        creations: List[ast.Call],
        transfer_via_return: bool,
    ) -> Iterable[Tuple[ast.AST, str]]:
        aliases = self._aliases(bindings, {owner})
        creation_set = set(creations)

        def is_trigger(node: ast.AST) -> bool:
            return node in creation_set

        def is_release(node: ast.AST) -> bool:
            # seg.unlink() on the owner or an alias.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in aliases
            ):
                return True
            # Ownership transfer: the owner passed as an argument ...
            if isinstance(node, ast.Call) and not (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in aliases
            ):
                if any(_mentions(arg, aliases) for arg in node.args) or any(
                    _mentions(kw.value, aliases) for kw in node.keywords
                ):
                    return True
            # ... stored into an attribute or a non-local subscript ...
            if isinstance(node, ast.Assign) and _mentions(node.value, aliases):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
            # ... or yielded out.
            if isinstance(node, (ast.Yield, ast.YieldFrom)) and _mentions(
                getattr(node, "value", None), aliases
            ):
                return True
            # Cleanup loop over an owner container: the whole loop is one
            # release unit (see dataflow._scan_loop).
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _mentions(node.iter, aliases) and any(
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "unlink"
                    for s in node.body
                    for n in walk_no_nested(s)
                ):
                    return True
            return False

        def exit_ok(ret: ast.Return) -> bool:
            return transfer_via_return and _mentions(ret.value, aliases)

        failures = check_obligation(body, is_trigger, is_release, exit_ok)
        for failure in failures:
            anchor = failure.trigger if failure.trigger is not None else creations[0]
            where = getattr(failure.exit_node, "lineno", None)
            detail = (
                f"the return at line {where} is reached"
                if failure.kind == "return" and where is not None
                else "the end of the function is reached"
            )
            yield (
                anchor,
                f"owned shared segment '{owner}' may leak: {detail} without "
                f"unlink() or an ownership transfer; wrap the lifetime in "
                f"try/finally or the SharedSegments context manager",
            )
