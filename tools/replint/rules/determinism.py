"""REP001 — every source of randomness (and wall-clock time) is explicit.

The reproduction's contract is that one seed reproduces one figure, bit for
bit.  Three patterns silently break that contract:

* ``np.random.default_rng()`` **without a seed** — the classic fallback
  ``rng = rng or np.random.default_rng()`` means a caller that forgets to
  thread an RNG gets fresh OS entropy and a different world every run.  Use
  :func:`repro.rng.ensure_rng` (seeded default) or require the argument.
* **global-state RNG calls** — stdlib ``random.*`` and the legacy
  ``np.random.*`` module functions (``np.random.rand`` etc.) mutate hidden
  process-wide state, so any import-order or concurrency change reshuffles
  every downstream draw.
* **wall-clock reads in simulation logic** — ``time.time()`` inside
  ``repro.sim`` / ``repro.core`` couples simulated behaviour to the host
  clock.  Simulated time lives on the event loop; real time belongs only in
  measurement code (``time.perf_counter`` in benchmarks is fine).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..engine import FileContext, Rule, Violation

#: numpy.random attributes that are *constructors* for explicit, seedable
#: generators — the sanctioned API (everything else on np.random is the
#: legacy global-state interface).
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock functions of the ``time`` module (monotonic/perf_counter are
#: duration measurement, not wall-clock, and stay allowed).
_WALL_CLOCK = {"time", "time_ns"}

#: Module prefixes in which wall-clock reads are forbidden.
_SIM_LOGIC_PREFIXES = ("repro.sim", "repro.core")


class DeterminismRule(Rule):
    """Flag unseeded/ambient randomness and wall-clock reads in sim logic."""

    code = "REP001"
    name = "determinism"
    description = (
        "randomness must be seeded and threaded explicitly; no unseeded "
        "default_rng(), no global-state random.*/np.random.* calls, no "
        "wall-clock time in simulation logic"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = _collect_aliases(ctx.tree)
        in_sim_logic = ctx.module is not None and ctx.module.startswith(
            _SIM_LOGIC_PREFIXES
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(ctx, node, aliases, in_sim_logic)

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        aliases: "_Aliases",
        in_sim_logic: bool,
    ) -> Iterator[Violation]:
        func = node.func
        # -- unseeded default_rng() ------------------------------------
        if _is_default_rng(func, aliases) and not node.args and not node.keywords:
            yield ctx.violation(
                node,
                self.code,
                "unseeded np.random.default_rng() breaks run-to-run "
                "reproducibility; thread a seeded Generator through the "
                "caller (see repro.rng.ensure_rng)",
            )
            return
        # -- stdlib random.* global state ------------------------------
        if isinstance(func, ast.Attribute) and _resolves_to(
            func.value, aliases.stdlib_random
        ):
            yield ctx.violation(
                node,
                self.code,
                f"random.{func.attr}() uses hidden global RNG state; use an "
                "explicit numpy Generator threaded from the scenario seed",
            )
            return
        if isinstance(func, ast.Name) and func.id in aliases.stdlib_random_funcs:
            yield ctx.violation(
                node,
                self.code,
                f"{func.id}() (from the random module) uses hidden global "
                "RNG state; use an explicit numpy Generator",
            )
            return
        # -- legacy np.random.* global state ---------------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr not in _NP_RANDOM_ALLOWED
            and _is_np_random(func.value, aliases)
        ):
            yield ctx.violation(
                node,
                self.code,
                f"np.random.{func.attr}() is the legacy global-state API; "
                "use a seeded np.random.Generator instead",
            )
            return
        # -- wall clock in simulation logic ----------------------------
        if in_sim_logic:
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _WALL_CLOCK
                and _resolves_to(func.value, aliases.time_module)
            ) or (
                isinstance(func, ast.Name) and func.id in aliases.wall_clock_funcs
            ):
                name = func.attr if isinstance(func, ast.Attribute) else func.id
                yield ctx.violation(
                    node,
                    self.code,
                    f"wall-clock {name}() inside simulation logic couples "
                    "results to the host clock; use the event loop's "
                    "simulated time (or perf_counter for measurement only)",
                )


class _Aliases:
    """Names the file binds to the random/numpy/time modules."""

    def __init__(self) -> None:
        self.stdlib_random: Set[str] = set()       # names for module `random`
        self.stdlib_random_funcs: Set[str] = set() # `from random import x`
        self.numpy: Set[str] = set()               # names for module `numpy`
        self.np_random: Set[str] = set()           # names for `numpy.random`
        self.default_rng_funcs: Set[str] = set()   # `from numpy.random import default_rng`
        self.time_module: Set[str] = set()         # names for module `time`
        self.wall_clock_funcs: Set[str] = set()    # `from time import time`


def _collect_aliases(tree: ast.Module) -> _Aliases:
    out = _Aliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    out.stdlib_random.add(bound)
                elif alias.name == "numpy" or alias.name.startswith("numpy."):
                    if alias.name == "numpy.random" and alias.asname:
                        out.np_random.add(alias.asname)
                    else:
                        out.numpy.add(bound)
                elif alias.name == "time":
                    out.time_module.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    out.stdlib_random_funcs.add(alias.asname or alias.name)
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        out.np_random.add(alias.asname or alias.name)
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        out.default_rng_funcs.add(alias.asname or alias.name)
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK:
                        out.wall_clock_funcs.add(alias.asname or alias.name)
    return out


def _resolves_to(node: ast.expr, names: Set[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in names


def _is_np_random(node: ast.expr, aliases: _Aliases) -> bool:
    """Whether *node* denotes the ``numpy.random`` module."""
    if _resolves_to(node, aliases.np_random):
        return True
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and _resolves_to(node.value, aliases.numpy)
    )


def _is_default_rng(func: ast.expr, aliases: _Aliases) -> bool:
    if isinstance(func, ast.Name):
        return func.id in aliases.default_rng_funcs
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "default_rng"
        and _is_np_random(func.value, aliases)
    )
