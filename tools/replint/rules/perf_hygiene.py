"""REP004 — no per-element ``delay()``/``cost()`` lookups inside loops.

PR 1's headline optimisation is that the hot paths never fault scalar
shortest-path queries one at a time: working sets are prefetched with
``Overlay.warm_edge_costs()`` / ``warm_sources()`` /
``PhysicalTopology.warm()``, and multi-target lookups go through
``Overlay.costs_from()`` / ``PhysicalTopology.delays_from_many()`` (one
vectorised scipy Dijkstra for all uncached sources).  A ``.cost(u, v)`` or
``.delay(u, v)`` call inside a ``for``/``while`` body is exactly the pattern
that regressed the seed code to one Dijkstra per loop iteration.

The rule flags any such in-loop call in importable ``src/`` modules.  Calls
that are *known* to be cache-resident (e.g. iterating the overlay's own
edges after ``warm_edge_costs()``) carry a line suppression stating why —
which turns each exception into documentation instead of folklore.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, Violation

_SCALAR_LOOKUPS = {"delay", "cost"}


class PerfHygieneRule(Rule):
    """Flag scalar delay/cost lookups inside for/while bodies."""

    code = "REP004"
    name = "perf-hygiene"
    description = (
        "scalar .delay()/.cost() calls inside loop bodies re-fault the "
        "underlay one query at a time; use costs_from/delays_from_many/"
        "warm* batched APIs"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # Only importable src/ modules: tests and tooling may loop freely.
        return ctx.module is not None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._visit(ctx, ctx.tree, in_loop=False)

    def _visit(
        self, ctx: FileContext, node: ast.AST, in_loop: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            if isinstance(child, (ast.For, ast.AsyncFor)):
                # The iterable is evaluated once, outside the loop.
                yield from self._visit(ctx, child.iter, in_loop)
                yield from self._visit(ctx, child.target, in_loop)
                for part in child.body + child.orelse:
                    yield from self._visit(ctx, part, True)
                continue
            if isinstance(child, ast.While):
                # The condition re-evaluates every iteration: it counts.
                yield from self._visit(ctx, child.test, True)
                for part in child.body + child.orelse:
                    yield from self._visit(ctx, part, True)
                continue
            if in_loop and isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SCALAR_LOOKUPS
                ):
                    yield ctx.violation(
                        child,
                        self.code,
                        f"scalar .{func.attr}() inside a loop body faults "
                        "the underlay one query at a time; batch with "
                        "costs_from()/delays_from_many() or prefetch via "
                        "warm()/warm_edge_costs()/warm_sources()",
                    )
            yield from self._visit(ctx, child, child_in_loop)
    # Comprehensions/generator expressions and sort keys are deliberately
    # not counted: they are single vectorisable expressions the batched
    # APIs consume whole, and flagging them would drown the signal.
