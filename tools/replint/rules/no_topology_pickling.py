"""REP005 — built topologies never cross the process boundary by pickle.

The parallel harness's contract (``docs/PERFORMANCE.md``) is that only
small, seeded configs travel to worker processes: each distinct underlay is
built once in the parent, exported with
``PhysicalTopology.export_shared()``, and mapped zero-copy by the workers'
``attach_shared_underlays`` initializer.  Passing a built
``PhysicalTopology`` (or a ``Scenario`` carrying one) into an executor
submission silently re-serialises the whole CSR graph per task — at paper
scale (20,000 nodes) that is megabytes of pickle per trial and exactly the
overhead the shared-memory path exists to remove.

The rule flags, inside importable ``src/`` modules, any pool-submission
call (``.submit``/``.map``/``.apply_async``/…) whose arguments mention

* a name bound from ``PhysicalTopology(...)``, ``attach_shared(...)``,
  ``build_underlay(...)`` or ``build_scenario(...)`` in an enclosing scope,
* a parameter annotated ``PhysicalTopology`` or ``Scenario``, or
* such a constructor call written inline, or a ``.physical`` attribute.

Ship the :class:`~repro.experiments.setup.ScenarioConfig` instead and let
:mod:`repro.experiments.parallel` do the shared-memory plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import FileContext, Rule, Violation

#: Executor / multiprocessing-pool methods that pickle their arguments.
_POOL_METHODS = {
    "submit",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
}

#: Callables whose result is a built topology (or a scenario holding one).
_TOPOLOGY_BUILDERS = {
    "PhysicalTopology",
    "attach_shared",
    "build_underlay",
    "build_scenario",
    "from_networkx",
}

#: Annotations marking a parameter as topology-carrying.
_TOPOLOGY_TYPES = {"PhysicalTopology", "Scenario"}

_REMEDY = (
    "; send the seeded ScenarioConfig and share the underlay via "
    "export_shared()/attach_shared() (see repro.experiments.parallel)"
)


def _is_topology_builder(call: ast.Call) -> bool:
    """Whether *call* constructs a topology/scenario by name."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _TOPOLOGY_BUILDERS
    if isinstance(func, ast.Attribute):
        return func.attr in _TOPOLOGY_BUILDERS
    return False


def _annotation_names(node: ast.AST) -> Set[str]:
    """Bare names mentioned in an annotation (handles Optional[...] etc.)."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            names.add(child.value.rsplit(".", 1)[-1])  # string annotation
    return names


def _assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    for child in ast.walk(target):
        if isinstance(child, ast.Name):
            yield child.id


class NoTopologyPicklingRule(Rule):
    """Flag built topologies passed into executor/pool submissions."""

    code = "REP005"
    name = "no-topology-pickling"
    description = (
        "built PhysicalTopology/Scenario objects pickled into process-pool "
        "submissions re-serialise the underlay per task; workers must "
        "attach it from shared memory instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # Only importable src/ modules: tests exercise pickling on purpose.
        return ctx.module is not None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._scan_scope(ctx, ctx.tree, frozenset())

    # ------------------------------------------------------------------

    def _scan_scope(
        self, ctx: FileContext, scope: ast.AST, inherited: "frozenset[str]"
    ) -> Iterator[Violation]:
        """Check one lexical scope, then recurse into nested scopes."""
        tracked = set(inherited)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for param in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]:
                if param.annotation is not None and (
                    _annotation_names(param.annotation) & _TOPOLOGY_TYPES
                ):
                    tracked.add(param.arg)

        # Pass 1: bindings.  Collected before any call is checked so the
        # verdict does not depend on statement order within the scope.
        nested = []
        calls = []
        for node in self._scope_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                nested.append(node)
                continue
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_topology_builder(node.value):
                    for target in node.targets:
                        tracked.update(_assigned_names(target))
            elif isinstance(node, ast.AnnAssign):
                names = _annotation_names(node.annotation)
                builder_value = isinstance(
                    node.value, ast.Call
                ) and _is_topology_builder(node.value)
                if (names & _TOPOLOGY_TYPES or builder_value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
            elif isinstance(node, ast.Call):
                calls.append(node)

        # Pass 2: pool submissions.
        for node in calls:
            yield from self._check_pool_call(ctx, node, tracked)

        frozen = frozenset(tracked)
        for inner in nested:
            yield from self._scan_scope(ctx, inner, frozen)

    def _scope_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Every node in *scope*, not descending into nested def/class."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _check_pool_call(
        self, ctx: FileContext, call: ast.Call, tracked: Set[str]
    ) -> Iterator[Violation]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS):
            return
        payload = list(call.args) + [kw.value for kw in call.keywords]
        for expr in payload:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in tracked:
                    yield ctx.violation(
                        node, self.code,
                        f"{node.id!r} holds a built topology and is pickled "
                        f"into .{func.attr}()" + _REMEDY,
                    )
                elif isinstance(node, ast.Attribute) and node.attr == "physical":
                    yield ctx.violation(
                        node, self.code,
                        f"a scenario's .physical underlay is pickled into "
                        f".{func.attr}()" + _REMEDY,
                    )
                elif isinstance(node, ast.Call) and _is_topology_builder(node):
                    yield ctx.violation(
                        node, self.code,
                        f"topology built inline inside a .{func.attr}() "
                        "submission is pickled per task" + _REMEDY,
                    )
