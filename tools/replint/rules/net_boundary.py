"""REP015 — the live-network boundary: real I/O stays inside ``repro.net``.

PR 9 added a live asyncio runtime (``repro.net``) that runs the protocol
over real sockets.  Its convergence guarantee — a seeded live run equals
the discrete-event simulator bit for bit — only holds if *all* real-world
coupling stays behind that package boundary:

* **Blocking sockets, sleeps and wall-clock reads outside ``repro.net``**
  — ``import socket``, ``time.sleep()`` and ``time.time()``/``time_ns()``
  (or an event loop's ``loop.time()``) anywhere else in ``repro.*`` lets
  host-machine state leak into layers whose outputs must be a pure
  function of the seed.  REP001 already polices wall-clock reads in the
  simulation kernels (``repro.sim``/``repro.core``); REP015 extends the
  blocking-I/O ban to the whole tree and leaves those two prefixes'
  wall-clock reads to REP001 so each defect gets one diagnostic.
  Duration measurement (``time.perf_counter``/``monotonic``) stays
  allowed everywhere.
* **``repro.net`` importing ``repro.experiments``** — the runtime takes a
  duck-typed scenario (anything with ``overlay``/``catalog``/``config``)
  precisely so the socket layer never depends on the experiment drivers;
  an upward import here would make the live runtime untestable without
  the figure pipeline and reopen the REP003 layering hole one package up.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..engine import FileContext, Rule, Violation

#: The package whose modules are allowed to touch sockets and clocks.
_NET_PREFIX = "repro.net"

#: Prefixes whose wall-clock reads REP001 already flags (one diagnostic
#: per defect: REP015 skips the clock check there, not the socket check).
_REP001_PREFIXES = ("repro.sim", "repro.core")

#: Wall-clock attributes of the ``time`` module (perf_counter/monotonic
#: measure durations and stay allowed).
_WALL_CLOCK = {"time", "time_ns"}

#: ``time`` attributes that block the calling thread.
_BLOCKING = {"sleep"}


class NetBoundaryRule(Rule):
    """Keep real I/O inside ``repro.net`` and experiments out of it."""

    code = "REP015"
    name = "net-boundary"
    description = (
        "wall-clock reads, blocking sockets and sleeps live only in "
        "repro.net; repro.net never imports repro.experiments"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module
        if module is None or not _in_package(module, "repro"):
            return
        if _in_package(module, _NET_PREFIX):
            yield from self._check_net_imports(ctx)
        else:
            yield from self._check_real_io(ctx, module)

    # -- inside repro.net: no experiment-layer imports -----------------

    def _check_net_imports(self, ctx: FileContext) -> Iterator[Violation]:
        is_package = ctx.path.name == "__init__.py"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _in_package(alias.name, "repro.experiments"):
                        yield self._upward(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                resolved = _resolve_import(ctx.module, node, is_package)
                if resolved and _in_package(resolved, "repro.experiments"):
                    yield self._upward(ctx, node, resolved)

    def _upward(
        self, ctx: FileContext, node: ast.stmt, imported: str
    ) -> Violation:
        return ctx.violation(
            node,
            self.code,
            f"{ctx.module} imports {imported}: the live runtime must stay "
            "independent of the experiment drivers — take a duck-typed "
            "scenario (overlay/catalog/config) instead",
        )

    # -- outside repro.net: no sockets, sleeps, wall clocks ------------

    def _check_real_io(
        self, ctx: FileContext, module: str
    ) -> Iterator[Violation]:
        clock_is_rep001s = _in_package(module, _REP001_PREFIXES)
        aliases = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "socket" or alias.name.startswith("socket."):
                        yield self._socket(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "socket":
                    yield self._socket(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases, clock_is_rep001s)

    def _socket(self, ctx: FileContext, node: ast.stmt) -> Violation:
        return ctx.violation(
            node,
            self.code,
            f"blocking socket I/O in {ctx.module}: real sockets live only "
            "in repro.net (the asyncio runtime); everything below it "
            "models the network with simulated message passing",
        )

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        aliases: "_TimeAliases",
        clock_is_rep001s: bool,
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in aliases.time_module:
                if func.attr in _BLOCKING:
                    yield self._blocking(ctx, node, f"time.{func.attr}")
                elif func.attr in _WALL_CLOCK and not clock_is_rep001s:
                    yield self._clock(ctx, node, f"time.{func.attr}")
            elif (
                func.attr == "time"
                and isinstance(base, ast.Name)
                and base.id.endswith("loop")
                and not clock_is_rep001s
            ):
                yield self._clock(ctx, node, f"{base.id}.time")
        elif isinstance(func, ast.Name):
            if func.id in aliases.blocking_funcs:
                yield self._blocking(ctx, node, func.id)
            elif func.id in aliases.wall_clock_funcs and not clock_is_rep001s:
                yield self._clock(ctx, node, func.id)

    def _blocking(self, ctx: FileContext, node: ast.AST, name: str) -> Violation:
        return ctx.violation(
            node,
            self.code,
            f"{name}() blocks the thread outside repro.net; simulated "
            "layers advance logical time on the event heap, and the live "
            "runtime uses asyncio.sleep",
        )

    def _clock(self, ctx: FileContext, node: ast.AST, name: str) -> Violation:
        return ctx.violation(
            node,
            self.code,
            f"wall-clock {name}() outside repro.net couples a seeded "
            "layer to the host clock; keep real time behind the network "
            "boundary (perf_counter for duration measurement is fine)",
        )


class _TimeAliases:
    """Names the file binds to the ``time`` module and its functions."""

    def __init__(self) -> None:
        self.time_module: Set[str] = set()
        self.wall_clock_funcs: Set[str] = set()
        self.blocking_funcs: Set[str] = set()


def _collect_aliases(tree: ast.Module) -> _TimeAliases:
    out = _TimeAliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    out.time_module.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "time":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in _WALL_CLOCK:
                        out.wall_clock_funcs.add(bound)
                    elif alias.name in _BLOCKING:
                        out.blocking_funcs.add(bound)
    return out


def _in_package(module: str, prefixes) -> bool:
    if isinstance(prefixes, str):
        prefixes = (prefixes,)
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _resolve_import(
    module: Optional[str], node: ast.ImportFrom, is_package: bool
) -> Optional[str]:
    """Absolute dotted target of an ImportFrom, or ``None`` if unknown."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    package = module.split(".")
    if not is_package:
        package = package[:-1]
    if len(package) < node.level - 1:
        return None
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None
