"""The replint rule families.

========  ======================  =====================================================
Code      Name                    Invariant
========  ======================  =====================================================
REP001    determinism             randomness is seeded and threaded, never ambient
REP002    cache-coherence         delay/cost caches are touched only by their owners
REP003    layering                topology/sim never import experiment-layer modules
REP004    perf-hygiene            no per-element delay/cost lookups inside loops
REP005    no-topology-pickling    built topologies reach workers via shared memory,
                                  never pickled into pool submissions
REP006    oracle-seam             core/search query delays through a DelayOracle,
                                  never PhysicalTopology.delay/delays_from* directly
REP007    batched-queries         experiments batch query propagation through
                                  repro.search.batch, never loop the scalar engine
REP008    soa-hygiene             engine hot paths never scan peers one Python
                                  object at a time; bulk/array APIs instead
========  ======================  =====================================================

``REP000`` is reserved for parse errors (emitted by the engine, not a rule).
Each invariant is documented in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine import Rule
from .batched_queries import BatchedQueriesRule
from .cache_coherence import CacheCoherenceRule
from .determinism import DeterminismRule
from .layering import LayeringRule
from .no_topology_pickling import NoTopologyPicklingRule
from .oracle_seam import OracleSeamRule
from .perf_hygiene import PerfHygieneRule
from .soa_hygiene import SoaHygieneRule

__all__ = [
    "DeterminismRule",
    "CacheCoherenceRule",
    "LayeringRule",
    "PerfHygieneRule",
    "NoTopologyPicklingRule",
    "OracleSeamRule",
    "BatchedQueriesRule",
    "SoaHygieneRule",
    "default_rules",
    "rules_by_code",
]


def default_rules() -> List[Rule]:
    """One instance of every shipped rule, in code order."""
    return [
        DeterminismRule(),
        CacheCoherenceRule(),
        LayeringRule(),
        PerfHygieneRule(),
        NoTopologyPicklingRule(),
        OracleSeamRule(),
        BatchedQueriesRule(),
        SoaHygieneRule(),
    ]


def rules_by_code() -> Dict[str, Rule]:
    """Map ``REP00x`` codes to fresh rule instances."""
    return {rule.code: rule for rule in default_rules()}
