"""The replint rule families.

========  ======================  =====================================================
Code      Name                    Invariant
========  ======================  =====================================================
REP001    determinism             randomness is seeded and threaded, never ambient
REP002    cache-coherence         delay/cost caches are touched only by their owners
REP003    layering                topology/sim never import experiment-layer modules
REP004    perf-hygiene            no per-element delay/cost lookups inside loops
REP005    no-topology-pickling    built topologies reach workers via shared memory,
                                  never pickled into pool submissions
REP006    oracle-seam             core/search query delays through a DelayOracle,
                                  never PhysicalTopology.delay/delays_from* directly
REP007    batched-queries         experiments batch query propagation through
                                  repro.search.batch, never loop the scalar engine
REP008    soa-hygiene             engine hot paths never scan peers one Python
                                  object at a time; bulk/array APIs instead
REP009    rng-streams             SeedSequence.spawn() children are consumed in
                                  order, once, in range, by their allocator
REP010    shm-lifecycle           exported shared segments reach unlink() on all
                                  paths; attachers never unlink
REP011    version-bump            structural mutation bumps _epoch/_state_version
                                  on every return path
REP012    float-order             no order-dependent float reductions over sets in
                                  simulation decision logic
REP013    suppression-hygiene     every disable pragma carries a justification
REP014    ace-kernel              step/churn drivers never refresh ACE state one
                                  peer at a time; the batched kernel instead
REP015    net-boundary            wall clocks, sockets and sleeps live only in
                                  repro.net; repro.net never imports experiments
========  ======================  =====================================================

``REP000`` is reserved for parse errors (emitted by the engine, not a rule).
REP009–REP011 are :class:`~tools.replint.engine.ProgramRule` subclasses and
run over the whole-program index; the rest are per-file.  Each invariant is
documented in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..engine import ProgramRule, Rule
from .ace_kernel import AceKernelRule
from .batched_queries import BatchedQueriesRule
from .cache_coherence import CacheCoherenceRule
from .determinism import DeterminismRule
from .float_order import FloatOrderRule
from .layering import LayeringRule
from .net_boundary import NetBoundaryRule
from .no_topology_pickling import NoTopologyPicklingRule
from .oracle_seam import OracleSeamRule
from .perf_hygiene import PerfHygieneRule
from .rng_streams import RngStreamsRule
from .shm_lifecycle import ShmLifecycleRule
from .soa_hygiene import SoaHygieneRule
from .suppression_hygiene import SuppressionHygieneRule
from .version_bump import VersionBumpRule

__all__ = [
    "DeterminismRule",
    "CacheCoherenceRule",
    "LayeringRule",
    "PerfHygieneRule",
    "NoTopologyPicklingRule",
    "OracleSeamRule",
    "BatchedQueriesRule",
    "SoaHygieneRule",
    "RngStreamsRule",
    "ShmLifecycleRule",
    "VersionBumpRule",
    "FloatOrderRule",
    "SuppressionHygieneRule",
    "AceKernelRule",
    "NetBoundaryRule",
    "default_rules",
    "rules_by_code",
]

AnyRule = Union[Rule, ProgramRule]


def default_rules() -> List[AnyRule]:
    """One instance of every shipped rule, in code order."""
    return [
        DeterminismRule(),
        CacheCoherenceRule(),
        LayeringRule(),
        PerfHygieneRule(),
        NoTopologyPicklingRule(),
        OracleSeamRule(),
        BatchedQueriesRule(),
        SoaHygieneRule(),
        RngStreamsRule(),
        ShmLifecycleRule(),
        VersionBumpRule(),
        FloatOrderRule(),
        SuppressionHygieneRule(),
        AceKernelRule(),
        NetBoundaryRule(),
    ]


def rules_by_code() -> Dict[str, AnyRule]:
    """Map ``REP00x`` codes to fresh rule instances."""
    return {rule.code: rule for rule in default_rules()}
