"""REP006 — core and search stay behind the delay-oracle seam.

PR 4 introduced :class:`repro.oracle.base.DelayOracle` as the single seam
through which the upper layers obtain underlay delays, so the backend —
exact batched Dijkstra or a landmark embedding — is a scenario choice
rather than a code path.  The seam only holds if nothing above it reaches
around: a ``repro.core`` policy calling
``PhysicalTopology.delay()`` directly would silently pin that policy to
the exact engine, and a landmark-configured experiment would report costs
from two different backends at once.

This rule audits ``repro.core`` and ``repro.search`` for direct calls to
the underlay query surface (``delay`` / ``delays_from`` /
``delays_from_many``) on anything that is recognizably a
``PhysicalTopology``:

* an attribute spelled ``.physical`` / ``._physical`` (the conventional
  handles on overlays and oracles), or
* a local name bound from ``PhysicalTopology(...)``,
  ``PhysicalTopology.attach_shared(...)`` or ``build_underlay(...)``, or
  annotated as ``PhysicalTopology``.

Route the lookup through the overlay (``cost``/``costs_from``) or an
oracle (``overlay.oracle``) instead.  Deliberate exceptions — e.g. a
diagnostic that must compare backends — carry a line suppression with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import FileContext, Rule, Violation

#: Underlay query methods the seam exists to intercept.
_QUERY_METHODS = frozenset({"delay", "delays_from", "delays_from_many"})

#: Attribute names conventionally holding a ``PhysicalTopology``.
_PHYSICAL_ATTRS = frozenset({"physical", "_physical"})

#: Calls whose result is a ``PhysicalTopology``.
_PHYSICAL_FACTORIES = frozenset({"PhysicalTopology", "build_underlay"})

#: Module prefixes the rule audits.
_SCOPED_PREFIXES = ("repro.core", "repro.search")


class OracleSeamRule(Rule):
    """Forbid direct underlay delay queries above the oracle seam."""

    code = "REP006"
    name = "oracle-seam"
    description = (
        "repro.core/repro.search must not call PhysicalTopology.delay/"
        "delays_from* directly; route through a DelayOracle or the "
        "overlay's cost API"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in _SCOPED_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        physical_names = _collect_physical_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _QUERY_METHODS
            ):
                continue
            receiver = node.func.value
            if _is_physical_receiver(receiver, physical_names):
                yield ctx.violation(
                    node,
                    self.code,
                    f"direct underlay query .{node.func.attr}() bypasses the "
                    "delay-oracle seam; use Overlay.cost/costs_from or a "
                    "DelayOracle so the backend stays swappable",
                )


def _collect_physical_names(tree: ast.Module) -> Set[str]:
    """Local names that (statically) hold a ``PhysicalTopology``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_physical_producer(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign):
            if _is_physical_annotation(node.annotation) or _is_physical_producer(
                node.value
            ):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        elif isinstance(node, ast.arg):
            if node.annotation is not None and _is_physical_annotation(
                node.annotation
            ):
                names.add(node.arg)
    return names


def _is_physical_producer(value: object) -> bool:
    """Whether an expression evaluates to a ``PhysicalTopology``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _PHYSICAL_FACTORIES
    if isinstance(func, ast.Attribute):
        # PhysicalTopology.attach_shared(...) or topology.build_underlay(...)
        if func.attr in _PHYSICAL_FACTORIES:
            return True
        return func.attr == "attach_shared" and _mentions_physical(func.value)
    return False


def _is_physical_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id == "PhysicalTopology"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "PhysicalTopology"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip('"') == "PhysicalTopology"
    return False


def _mentions_physical(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "PhysicalTopology"
    if isinstance(node, ast.Attribute):
        return node.attr == "PhysicalTopology"
    return False


def _is_physical_receiver(receiver: ast.expr, physical_names: Set[str]) -> bool:
    """Whether a call receiver is recognizably a ``PhysicalTopology``."""
    if isinstance(receiver, ast.Attribute) and receiver.attr in _PHYSICAL_ATTRS:
        return True
    if isinstance(receiver, ast.Name) and receiver.id in physical_names:
        return True
    return False
