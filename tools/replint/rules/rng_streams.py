"""REP009 — SeedSequence spawn-stream discipline.

Every stream in a run is pinned to a position in the seed tree:
``SeedSequence(seed).spawn(n)[i]`` is child *i*, and the repo's
byte-identity guarantees rest on every consumer drawing from its own
child, allocated once, in order (``spawn(5)[:4] == spawn(4)``, so
*appending* streams is safe; *reordering* or *re-spawning* is not).  This
rule taints ``SeedSequence`` values and the child lists ``.spawn()``
returns, then flags the consumption patterns that silently perturb the
pinned draw order:

* ``REP009/out-of-range`` — ``ss.spawn(n)[i]`` with a literal ``i >= n``
  (an ``IndexError`` at best, a miscounted stream budget at worst),
* ``REP009/re-spawn`` — calling ``.spawn()`` twice on the same
  ``SeedSequence`` value: spawning is **stateful** (``spawn_key``
  advances), so the second call hands out different children than the
  same expression would in a fresh process,
* ``REP009/out-of-order`` — first uses of ``children[i]`` with literal
  indices that decrease (consuming child 3 before child 1 reorders the
  generators relative to the allocation plan, the exact hazard the
  in-order ``spawn(4)`` idiom in ``repro.experiments.setup`` exists to
  prevent),
* ``REP009/double-use`` — consuming the same literal child twice (two
  generators over one stream means correlated draws),
* ``REP009/cross-function`` — ``.spawn()`` on a function **parameter**:
  stream allocation belongs to the function that owns the seed tree;
  spawning a sequence someone passed in splits the allocation across
  call sites where the order can no longer be checked (pass the spawned
  children, or a derived ``Generator``, instead).

Scoped to ``repro`` source modules; runs on the program index so the
taint can use the call graph's view of locally-constructed values.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import ProgramRule, Violation
from ..program import FunctionInfo, ProgramIndex
from ..program.dataflow import collect_bindings, walk_no_nested


def _is_seedseq_ctor(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and (
            (isinstance(node.func, ast.Name) and node.func.id == "SeedSequence")
            or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "SeedSequence"
            )
        )
    )


def _literal_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _spawn_call(node: ast.expr) -> Optional[ast.Call]:
    """The ``<x>.spawn(...)`` call node, if *node* is one."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "spawn"
    ):
        return node
    return None


class RngStreamsRule(ProgramRule):
    """Flag seed-stream consumption that perturbs the pinned draw order."""

    code = "REP009"
    name = "rng-streams"
    description = (
        "SeedSequence.spawn() children must be consumed in spawn order, "
        "exactly once, within range, by the function that allocated them; "
        "re-spawning or cross-function spawning reorders pinned streams"
    )

    def check_program(self, program: ProgramIndex) -> Iterable[Violation]:
        for info in program.iter_functions("repro"):
            ctx = program.context_for(info)
            for violation in self._check_function(info):
                yield Violation(
                    path=str(ctx.path),
                    line=violation[0].lineno,
                    col=violation[0].col_offset + 1,
                    code=self.code,
                    message=violation[1],
                )

    # -- per-function analysis ----------------------------------------------

    def _check_function(
        self, info: FunctionInfo
    ) -> Iterable[Tuple[ast.expr, str]]:
        node = info.node
        body = getattr(node, "body", [])
        bindings = collect_bindings(body)

        # Names bound to SeedSequence values (constructed locally).
        seedseq_names: Set[str] = set()
        # Names bound to a spawn() result, with the literal child count
        # (None when the count is not a literal).
        child_lists: Dict[str, Optional[int]] = {}
        for name, binds in bindings.items():
            for binding in binds:
                if binding.via not in ("assign", "ann", "with"):
                    continue
                if _is_seedseq_ctor(binding.value):
                    seedseq_names.add(name)
                spawn = _spawn_call(binding.value)
                if spawn is not None:
                    count = (
                        _literal_int(spawn.args[0]) if spawn.args else None
                    )
                    child_lists[name] = count

        params = {
            arg.arg
            for args in [getattr(node, "args", None)]
            if args is not None
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }

        spawned_names: Set[str] = set()
        #: first-use literal index per child-list name, in source order.
        uses: Dict[str, List[Tuple[int, ast.expr]]] = {}

        ordered_nodes = sorted(
            (
                n
                for n in walk_no_nested(node)
                if hasattr(n, "lineno")
            ),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for sub in ordered_nodes:
            spawn = _spawn_call(sub) if isinstance(sub, ast.expr) else None
            if spawn is not None:
                receiver = spawn.func.value  # type: ignore[union-attr]
                # Direct subscript on a fresh spawn: range check.
                if isinstance(receiver, ast.Name):
                    rname = receiver.id
                    if rname in params:
                        yield (
                            spawn,
                            f"spawn() on parameter '{rname}' splits seed-"
                            f"stream allocation across functions; allocate "
                            f"children where the SeedSequence is built and "
                            f"pass them (or derived Generators) down",
                        )
                    elif rname in seedseq_names:
                        if rname in spawned_names:
                            yield (
                                spawn,
                                f"second spawn() on SeedSequence '{rname}': "
                                f"spawning is stateful, so repeated calls "
                                f"hand out different children than a single "
                                f"spawn(n) would; widen the first spawn "
                                f"instead",
                            )
                        spawned_names.add(rname)
            if isinstance(sub, ast.Subscript):
                base = sub.value
                index = _literal_int(sub.slice)  # 3.9+: slice is a plain expr
                if index is None:
                    continue
                # spawn(n)[i] inline.
                spawn = _spawn_call(base)
                if spawn is not None and spawn.args:
                    count = _literal_int(spawn.args[0])
                    if count is not None and index >= count:
                        yield (
                            sub,
                            f"child index {index} out of range for "
                            f"spawn({count}); streams are pinned 0..{count - 1}",
                        )
                    continue
                if isinstance(base, ast.Name) and base.id in child_lists:
                    count = child_lists[base.id]
                    if count is not None and index >= count:
                        yield (
                            sub,
                            f"child index {index} out of range for "
                            f"'{base.id}' = spawn({count}); streams are "
                            f"pinned 0..{count - 1}",
                        )
                        continue
                    uses.setdefault(base.id, []).append((index, sub))

        for name, indexed in uses.items():
            seen: Set[int] = set()
            highest = -1
            for index, sub in indexed:
                if index in seen:
                    yield (
                        sub,
                        f"seed child '{name}[{index}]' consumed twice; two "
                        f"generators over one stream draw correlated values",
                    )
                    continue
                seen.add(index)
                if index < highest:
                    yield (
                        sub,
                        f"seed child '{name}[{index}]' consumed after "
                        f"'{name}[{highest}]'; children must be consumed in "
                        f"spawn order so stream positions stay pinned",
                    )
                highest = max(highest, index)
