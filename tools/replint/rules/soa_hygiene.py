"""REP008 — no per-peer Python scan loops in engine hot paths.

The struct-of-arrays overlay engine (PR 6) exists so that whole-overlay
state — adjacency, per-edge costs, ACE membership sets — moves through
numpy arrays instead of per-peer Python iteration.  A loop of the shape

.. code-block:: python

    for p in overlay.peers():
        ... overlay.neighbors(p) ...      # or .cost(...) / .state_of(...)

re-materializes one Python object per peer per iteration and is exactly the
O(peers) interpreter-bound scan that capped experiments at a few thousand
peers.  Inside ``repro.core`` and ``repro.topology`` — the engine hot paths
— such scans must either use the bulk APIs (``warm_edge_costs()``,
``costs_from()``, ``flooding_csr()``, the flat ACE store) or carry a line
suppression explaining why a per-peer walk is genuinely required (one-time
conversions, cold paths).

The rule flags ``for``/``async for`` statements that iterate directly over
a ``.peers()`` call and invoke ``.neighbors()`` / ``.cost()`` /
``.state_of()`` anywhere in the loop body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, Violation

_PER_PEER_CALLS = {"neighbors", "cost", "state_of"}

_HOT_PACKAGES = ("repro.core", "repro.topology")


def _body_calls(node: ast.AST) -> Iterator[str]:
    """Names of flagged per-peer accessor calls anywhere under *node*."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            if child.func.attr in _PER_PEER_CALLS:
                yield child.func.attr


class SoaHygieneRule(Rule):
    """Flag per-peer accessor scans over ``.peers()`` in hot packages."""

    code = "REP008"
    name = "soa-hygiene"
    description = (
        "per-peer Python loops over overlay.peers() calling .neighbors()/"
        ".cost()/.state_of() scan the engine one object at a time; use the "
        "bulk array APIs (warm_edge_costs/costs_from/flooding_csr/flat "
        "state store)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in _HOT_PACKAGES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            if not (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr == "peers"
            ):
                continue
            accessors = sorted(
                {name for part in node.body for name in _body_calls(part)}
            )
            if not accessors:
                continue
            calls = ", ".join(f".{name}()" for name in accessors)
            yield ctx.violation(
                node,
                self.code,
                f"per-peer loop over .peers() calls {calls} each iteration; "
                "hot paths must use the bulk/array APIs "
                "(warm_edge_costs/costs_from/flooding_csr/FlatAceStore) or "
                "justify the scan with a suppression",
            )
