"""REP012 — no order-dependent float reductions over unordered collections.

Float addition is not associative: ``sum()`` over a ``set`` produces
different ulps depending on iteration order, and iteration order differs
between the object and array engines even when the *contents* agree.
PR 5's tie-break bug was exactly this class — an edge-cost computed in a
different order flipped a ``min``-by-cost decision in dynamic runs.  In
``repro.core`` and ``repro.search`` (the simulation decision logic, where
every ulp can flip a branch) reductions must therefore run over a
canonical order::

    bad:   total = sum(costs[h] for h in pool)          # pool is a set
    good:  total = sum(costs[h] for h in sorted(pool))

The rule tracks set-valued expressions per function — literals,
``set()``/``frozenset()`` calls, the overlay's set-returning accessors
(``neighbors()`` and friends), set operators over them, and local names
bound to any of those — and flags:

* ``sum``/``math.fsum``/``np.sum``/``np.mean``/``np.prod`` whose operand
  (or comprehension source) is set-valued,
* ``min``/``max``/``sorted`` **with a ``key=``** over a set-valued
  operand (ties are then broken by iteration order),
* ``np.array``/``np.asarray``/``np.fromiter`` fed a set (or
  ``list(set)``) — a non-canonical array order that poisons every
  reduction downstream.

``sorted(S)`` without a key imposes a total order and is the canonical
fix, so it is never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..engine import FileContext, Rule, Violation
from ..program.dataflow import Binding, collect_bindings, walk_no_nested

_SCOPED_PREFIXES = ("repro.core", "repro.search")

#: Overlay/protocol accessors documented to return sets.
_SET_RETURNING_METHODS = {
    "neighbors",
    "flooding_neighbors",
    "non_flooding_neighbors",
    "component_of",
}

_SET_CONSTRUCTORS = {"set", "frozenset"}

_FLOAT_REDUCERS = {"sum", "fsum", "mean", "prod", "cumsum", "nansum"}

_ARRAY_BUILDERS = {"array", "asarray", "fromiter"}

_SET_OPERATORS = (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


class _SetTaint:
    """Flow-insensitive 'is this expression set-valued?' oracle."""

    def __init__(self, bindings: Dict[str, List[Binding]]) -> None:
        self._bindings = bindings
        self._names: Set[str] = set()
        # Fixpoint over name bindings: a name is set-valued if any binding
        # that reaches it is (erring toward more taint is the safe side).
        changed = True
        while changed:
            changed = False
            for name, binds in bindings.items():
                if name in self._names:
                    continue
                for binding in binds:
                    if binding.via in ("assign", "ann") and self.is_set(
                        binding.value
                    ):
                        self._names.add(name)
                        changed = True
                        break

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._names
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _SET_CONSTRUCTORS or name in _SET_RETURNING_METHODS:
                return True
            # set.union / set.intersection / ... on a tainted receiver
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            }:
                return self.is_set(node.func.value)
        return False

    def comprehension_over_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return any(self.is_set(gen.iter) for gen in node.generators)
        return False

    def operand_is_unordered(self, node: ast.expr) -> bool:
        return self.is_set(node) or self.comprehension_over_set(node)


class FloatOrderRule(Rule):
    """Flag order-dependent reductions over unordered collections."""

    code = "REP012"
    name = "float-order"
    description = (
        "order-dependent float reductions (sum/fsum/np.sum, keyed min/max/"
        "sorted, np.array-from-set) over sets in repro.core/repro.search "
        "produce engine-dependent ulps; reduce over sorted(...) instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in _SCOPED_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            taint = _SetTaint(collect_bindings(scope.body))
            for node in walk_no_nested(scope):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                name = _call_name(node)
                first = node.args[0]
                if name in _FLOAT_REDUCERS and taint.operand_is_unordered(first):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"{name}() over a set-valued operand is float-order "
                        f"dependent; reduce over sorted(...) for a canonical "
                        f"order",
                    )
                elif name in {"min", "max", "sorted"} and any(
                    kw.arg == "key" for kw in node.keywords
                ):
                    if taint.operand_is_unordered(first):
                        yield ctx.violation(
                            node,
                            self.code,
                            f"{name}(..., key=...) over a set-valued operand "
                            f"breaks ties by set iteration order; iterate "
                            f"sorted(...) so ties resolve deterministically",
                        )
                elif name in _ARRAY_BUILDERS:
                    inner = first
                    if (
                        isinstance(inner, ast.Call)
                        and _call_name(inner) in {"list", "tuple"}
                        and inner.args
                    ):
                        inner = inner.args[0]
                    if taint.operand_is_unordered(inner):
                        yield ctx.violation(
                            node,
                            self.code,
                            f"np.{name}() materializes a set in iteration "
                            f"order, poisoning every downstream reduction; "
                            f"build from sorted(...) instead",
                        )
