"""REP002 — the delay/cost caches are touched only by code that keeps them
coherent.

PR 1 introduced two cache layers whose correctness rests on hand-maintained
invariants (``docs/PERFORMANCE.md``):

* ``Overlay._edge_costs`` must always mirror the *live* logical edge set —
  every adjacency mutation has to drop or refresh the affected entries,
  otherwise ACE/LTM/churn rewiring serves stale costs.
* ``PhysicalTopology._dist_cache`` / ``_pred_cache`` must only shrink
  through ``_evict()``, the single place that keeps the two LRUs in sync.

This rule machine-checks both sides of the contract:

1. **ownership** — no code outside the defining class may read or write
   ``_edge_costs``, ``_dist_cache`` or ``_pred_cache`` (tests that
   deliberately poke internals carry a suppression, which keeps the
   exceptions enumerable).
2. **mutate-implies-invalidate** — any ``Overlay`` method that mutates the
   logical adjacency (``self._adjacency``) must also touch ``_edge_costs``
   or call a sanctioned invalidator in the same method body.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from ..engine import FileContext, Rule, Violation

#: protected attribute -> the only class allowed to touch it.
_PROTECTED_ATTRS: Dict[str, str] = {
    "_edge_costs": "Overlay",
    "_dist_cache": "PhysicalTopology",
    "_pred_cache": "PhysicalTopology",
}

#: Methods that may mutate ``self._adjacency[...]`` / ``self._adjacency``.
_SET_MUTATORS = {
    "add",
    "discard",
    "remove",
    "clear",
    "pop",
    "popitem",
    "update",
    "setdefault",
}

#: Calling any of these (on self) counts as restoring edge-cost coherence.
_INVALIDATORS = {"invalidate_edge_costs", "warm_edge_costs"}

#: The adjacency attribute whose mutation must be paired with invalidation.
_ADJACENCY_ATTR = "_adjacency"
_CACHE_ATTR = "_edge_costs"


class CacheCoherenceRule(Rule):
    """Enforce cache ownership and the mutate-implies-invalidate contract."""

    code = "REP002"
    name = "cache-coherence"
    description = (
        "Overlay._edge_costs and PhysicalTopology._dist_cache/_pred_cache "
        "may only be touched by their defining class, and adjacency "
        "mutations must invalidate the edge-cost cache"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_ownership(ctx)
        yield from self._check_mutators(ctx)

    # ------------------------------------------------------------------
    # Part 1: ownership
    # ------------------------------------------------------------------

    def _check_ownership(self, ctx: FileContext) -> Iterator[Violation]:
        for node, class_stack in _walk_with_class_stack(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            owner = _PROTECTED_ATTRS.get(node.attr)
            if owner is None or owner in class_stack:
                continue
            yield ctx.violation(
                node,
                self.code,
                f"access to {owner}.{node.attr} outside {owner} bypasses the "
                "cache-coherence contract; use the public API "
                "(invalidate_edge_costs/warm_edge_costs, warm/delays_from*)",
            )

    # ------------------------------------------------------------------
    # Part 2: mutate-implies-invalidate inside Overlay
    # ------------------------------------------------------------------

    def _check_mutators(self, ctx: FileContext) -> Iterator[Violation]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not _is_overlay_class(cls):
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    # Construction builds both structures from scratch; there
                    # is no pre-existing cache to invalidate.
                    continue
                mutation = _first_adjacency_mutation(item)
                if mutation is None:
                    continue
                if _touches_cache_or_invalidator(item):
                    continue
                yield ctx.violation(
                    mutation,
                    self.code,
                    f"method {cls.name}.{item.name} mutates self."
                    f"{_ADJACENCY_ATTR} without touching {_CACHE_ATTR} or "
                    "calling invalidate_edge_costs()/warm_edge_costs(); "
                    "stale edge costs would survive the rewiring",
                )


def _walk_with_class_stack(tree: ast.Module):
    """Yield ``(node, [enclosing class names])`` for every node."""

    def visit(node: ast.AST, stack: List[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield child, stack
                yield from visit(child, stack + [child.name])
            else:
                yield child, stack
                yield from visit(child, stack)

    yield from visit(tree, [])


def _is_overlay_class(cls: ast.ClassDef) -> bool:
    if cls.name == "Overlay":
        return True
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id == "Overlay":
            return True
        if isinstance(base, ast.Attribute) and base.attr == "Overlay":
            return True
    return False


def _is_self_adjacency(node: ast.expr) -> bool:
    """Whether *node* is ``self._adjacency``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == _ADJACENCY_ATTR
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_empty_set_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
        and not node.args
        and not node.keywords
    )


def _first_adjacency_mutation(func: ast.AST) -> Optional[ast.AST]:
    """The first node in *func* that mutates ``self._adjacency``, if any.

    Counted as mutations:

    * ``self._adjacency[x].add/discard/...(...)`` (edge-set mutation)
    * ``self._adjacency.pop/clear/update/...(...)`` (peer-map mutation)
    * ``del self._adjacency[x]``
    * ``self._adjacency[x] = <expr>`` — unless the expression is a literal
      empty ``set()``, the ``add_peer`` idiom that creates no edges.
    * rebinding ``self._adjacency`` itself.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_MUTATORS:
                target = node.func.value
                if _is_self_adjacency(target):
                    return node
                if isinstance(target, ast.Subscript) and _is_self_adjacency(
                    target.value
                ):
                    return node
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript) and _is_self_adjacency(tgt.value):
                    return node
                if _is_self_adjacency(tgt):
                    return node
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) and _is_self_adjacency(tgt.value):
                    if value is not None and _is_empty_set_call(value):
                        continue
                    return node
                if _is_self_adjacency(tgt):
                    return node
    return None


def _touches_cache_or_invalidator(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            if node.attr == _CACHE_ATTR:
                return True
            if node.attr in _INVALIDATORS:
                return True
    return False
