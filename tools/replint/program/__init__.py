"""Whole-program analysis layer for replint.

Per-file rules (REP001–REP008) see one AST at a time; the invariants that
actually protect byte-identical reproduction — seed-stream consumption
order, ``export_shared``/``unlink`` pairing, mutate-implies-version-bump —
cross function and module boundaries.  This package supplies the shared
infrastructure for rules that need the bigger picture:

* :mod:`tools.replint.program.index` — :class:`ProgramIndex`, a symbol
  table plus call graph built once over every parsed file in the run.
* :mod:`tools.replint.program.dataflow` — an intraprocedural "all paths"
  obligation checker (trigger ⇒ release before any return) and
  flow-insensitive binding helpers, both tolerant of ``try``/``finally``,
  ``with``, loops and the repo's *bump-iff-changed* idiom.

Everything stays stdlib-only (``ast`` + ``tokenize``), like the rest of
replint.
"""

from .dataflow import (
    Binding,
    ObligationFailure,
    check_obligation,
    collect_bindings,
    walk_no_nested,
)
from .index import CallSite, ClassInfo, FunctionInfo, ProgramIndex

__all__ = [
    "Binding",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ObligationFailure",
    "ProgramIndex",
    "check_obligation",
    "collect_bindings",
    "walk_no_nested",
]
