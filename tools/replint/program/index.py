"""Project symbol index and call graph for replint program rules.

A :class:`ProgramIndex` is built **once** per ``check_paths`` run from the
already-parsed :class:`~tools.replint.engine.FileContext` objects (the
per-file AST cache means no file is read or parsed twice).  It records:

* every module, class and function/method with a stable *qualname*
  (``repro.topology.soa:ArrayOverlay.connect`` — module, colon, dotted
  in-module path; files outside a ``src/`` root use their posix path as
  the prefix),
* textual base-class names, so rules can walk subclass closures without
  importing anything,
* a call graph: for each function, the calls it makes, resolved to
  qualnames where the receiver type is statically evident (``self.``/
  ``cls.`` methods, same-module and ``from``-imported functions,
  locally-constructed instances like ``out = cls(...)`` or
  ``h = SharedUnderlay(...)``, annotated parameters).

Resolution is best-effort by design: an unresolved call keeps its textual
name so rules can still pattern-match on it, and never aborts the build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine import FileContext

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "ProgramIndex"]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    module: Optional[str]
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    decorators: Set[str] = field(default_factory=set)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")


@dataclass
class ClassInfo:
    """One class definition with its directly-defined methods."""

    qualname: str
    name: str
    module: Optional[str]
    path: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function."""

    caller: str  # qualname of the enclosing function
    node: ast.Call
    name: str  # textual callee name (last dotted component)
    callee: Optional[str] = None  # resolved qualname, when known
    receiver_class: Optional[str] = None  # class name for method calls


def _decorator_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] style bases
        return _base_name(expr.value)
    return None


def _annotation_name(expr: Optional[ast.expr]) -> Optional[str]:
    """Class name from a parameter annotation, unwrapping Optional/quotes."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        # String annotation: take the last identifier-ish token.
        text = expr.value.strip().strip("'\"")
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        base = _annotation_name(expr.value)
        if base in {"Optional", "Union"}:
            inner = expr.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return _annotation_name(inner.elts[0])
            return _annotation_name(inner)  # type: ignore[arg-type]
        return base
    return None


class ProgramIndex:
    """Symbol table + call graph over a set of parsed files."""

    def __init__(self) -> None:
        self.files: Dict[str, "FileContext"] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.calls: List[CallSite] = []
        self.calls_by_caller: Dict[str, List[CallSite]] = {}
        self.callers_of: Dict[str, List[CallSite]] = {}
        #: module name -> {top-level function name -> qualname}
        self._module_functions: Dict[str, Dict[str, str]] = {}
        #: per-file ``from``-import map: prefix -> {local name -> (module, symbol)}
        self._imports: Dict[str, Dict[str, str]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence["FileContext"]) -> "ProgramIndex":
        index = cls()
        for ctx in contexts:
            index._index_file(ctx)
        for ctx in contexts:
            index._extract_calls(ctx)
        for site in index.calls:
            index.calls_by_caller.setdefault(site.caller, []).append(site)
            if site.callee is not None:
                index.callers_of.setdefault(site.callee, []).append(site)
        return index

    def _prefix(self, ctx: "FileContext") -> str:
        return ctx.module if ctx.module is not None else ctx.path.as_posix()

    def _index_file(self, ctx: "FileContext") -> None:
        prefix = self._prefix(ctx)
        self.files[str(ctx.path)] = ctx
        imports: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = node.module
                if node.level and ctx.module:
                    parts = ctx.module.split(".")
                    # ``from .x import y`` inside package p.q -> p.x
                    anchor = parts[: len(parts) - node.level]
                    module = ".".join(anchor + [node.module])
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{module}:{alias.name}"
        self._imports[prefix] = imports

        def register_function(
            node: ast.AST, scope: List[str], class_name: Optional[str]
        ) -> FunctionInfo:
            dotted = ".".join(scope + [node.name])  # type: ignore[attr-defined]
            info = FunctionInfo(
                qualname=f"{prefix}:{dotted}",
                name=node.name,  # type: ignore[attr-defined]
                module=ctx.module,
                path=str(ctx.path),
                node=node,
                class_name=class_name,
                decorators=_decorator_names(node),
            )
            self.functions[info.qualname] = info
            return info

        def visit(body: Sequence[ast.stmt], scope: List[str], class_name: Optional[str]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = register_function(stmt, scope, class_name)
                    if class_name is None and not scope:
                        self._module_functions.setdefault(prefix, {})[
                            stmt.name
                        ] = info.qualname
                    if class_name is not None and len(scope) == 1:
                        self.classes[f"{prefix}:{class_name}"].methods[
                            stmt.name
                        ] = info
                    visit(stmt.body, scope + [stmt.name], None)
                elif isinstance(stmt, ast.ClassDef):
                    cinfo = ClassInfo(
                        qualname=f"{prefix}:{'.'.join(scope + [stmt.name])}",
                        name=stmt.name,
                        module=ctx.module,
                        path=str(ctx.path),
                        node=stmt,
                        bases=[
                            b for b in (_base_name(e) for e in stmt.bases) if b
                        ],
                    )
                    self.classes[cinfo.qualname] = cinfo
                    self.classes_by_name.setdefault(stmt.name, []).append(cinfo)
                    visit(stmt.body, scope + [stmt.name], stmt.name)

        visit(ctx.tree.body, [], None)

    # -- call extraction ----------------------------------------------------

    def _extract_calls(self, ctx: "FileContext") -> None:
        from .dataflow import walk_no_nested

        for info in list(self.functions.values()):
            if info.path != str(ctx.path):
                continue
            env = self._type_env(info)
            # Nested defs are indexed as their own functions and extract
            # their own calls, so fence them off here.
            for node in walk_no_nested(info.node):
                if not isinstance(node, ast.Call):
                    continue
                site = self._resolve_call(ctx, info, env, node)
                if site is not None:
                    self.calls.append(site)

    def _type_env(self, info: FunctionInfo) -> Dict[str, str]:
        """Local variable -> class-name map from annotations and constructor
        assignments (flow-insensitive; last writer wins is fine here)."""
        env: Dict[str, str] = {}
        node = info.node
        args = getattr(node, "args", None)
        if info.class_name is not None:
            env["self"] = info.class_name
            env["cls"] = info.class_name
        if args is not None:
            all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in all_args:
                name = _annotation_name(arg.annotation)
                if name and name in self.classes_by_name:
                    env[arg.arg] = name
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            func = sub.value.func
            target_class: Optional[str] = None
            if isinstance(func, ast.Name):
                if func.id in self.classes_by_name:
                    target_class = func.id
                elif func.id == "cls" and info.class_name is not None:
                    target_class = info.class_name
            elif isinstance(func, ast.Attribute) and func.attr in self.classes_by_name:
                target_class = func.attr
            if target_class is None:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = target_class
        return env

    def _resolve_call(
        self,
        ctx: "FileContext",
        info: FunctionInfo,
        env: Dict[str, str],
        node: ast.Call,
    ) -> Optional[CallSite]:
        prefix = self._prefix(ctx)
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            callee = self._module_functions.get(prefix, {}).get(name)
            if callee is None:
                imported = self._imports.get(prefix, {}).get(name)
                if imported and ":" in imported:
                    mod, symbol = imported.split(":", 1)
                    callee = self._module_functions.get(mod, {}).get(symbol)
                    if callee is None and f"{mod}:{symbol}" in self.classes:
                        callee = f"{mod}:{symbol}"
            if callee is None and name in self.classes_by_name:
                candidates = self.classes_by_name[name]
                same = [c for c in candidates if c.path == str(ctx.path)]
                callee = (same[0] if same else candidates[0]).qualname
            return CallSite(info.qualname, node, name, callee)
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name):
                rname = receiver.id
                if rname in env:
                    cls_name = env[rname]
                    method = self.resolve_method(cls_name, name, near=str(ctx.path))
                    return CallSite(
                        info.qualname,
                        node,
                        name,
                        method.qualname if method else None,
                        receiver_class=cls_name,
                    )
                imported = self._imports.get(prefix, {}).get(rname)
                if imported and ":" not in imported:
                    callee = self._module_functions.get(imported, {}).get(name)
                    return CallSite(info.qualname, node, name, callee)
            return CallSite(info.qualname, node, name)
        return CallSite(info.qualname, node, "<dynamic>")

    # -- queries ------------------------------------------------------------

    def resolve_method(
        self, class_name: str, method: str, near: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        """Find *method* on *class_name* or its textual-base ancestors."""
        seen: Set[str] = set()

        def lookup(name: str) -> Optional[FunctionInfo]:
            if name in seen:
                return None
            seen.add(name)
            candidates = self.classes_by_name.get(name, [])
            if near is not None:
                candidates = sorted(
                    candidates, key=lambda c: 0 if c.path == near else 1
                )
            for cinfo in candidates:
                if method in cinfo.methods:
                    return cinfo.methods[method]
            for cinfo in candidates:
                for base in cinfo.bases:
                    found = lookup(base)
                    if found is not None:
                        return found
            return None

        return lookup(class_name)

    def subclasses_of(self, *names: str) -> List[ClassInfo]:
        """Classes whose textual base chain reaches any of *names*
        (the named classes themselves included when indexed)."""
        wanted = set(names)
        out: List[ClassInfo] = []
        for cinfo in self.classes.values():
            if cinfo.name in wanted or self._inherits(cinfo, wanted, set()):
                out.append(cinfo)
        return sorted(out, key=lambda c: c.qualname)

    def _inherits(self, cinfo: ClassInfo, wanted: Set[str], seen: Set[str]) -> bool:
        for base in cinfo.bases:
            if base in wanted:
                return True
            if base in seen:
                continue
            seen.add(base)
            for parent in self.classes_by_name.get(base, []):
                if self._inherits(parent, wanted, seen):
                    return True
        return False

    def iter_functions(self, module_prefix: Optional[str] = None) -> Iterator[FunctionInfo]:
        """All indexed functions, optionally restricted to modules whose
        dotted name starts with *module_prefix*."""
        for info in sorted(self.functions.values(), key=lambda f: f.qualname):
            if module_prefix is not None:
                if info.module is None or not (
                    info.module == module_prefix
                    or info.module.startswith(module_prefix + ".")
                ):
                    continue
            yield info

    def context_for(self, info: FunctionInfo) -> "FileContext":
        return self.files[info.path]
