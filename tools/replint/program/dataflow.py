"""Intraprocedural dataflow helpers for program rules.

The workhorse is :func:`check_obligation`, an abstract interpreter over a
function body that enforces contracts of the shape *"once a trigger has
executed, a release must execute before every normal exit"*.  REP010 uses
it with trigger = "shared segment created" / release = "``.unlink()``
reachable on this path"; REP011 with trigger = "tracked attribute mutated"
/ release = "version counter bumped".

The interpreter is deliberately conservative in the directions that keep
rules quiet on correct code:

* ``try``/``finally`` — a ``finally`` block whose straight-line execution
  releases the obligation rescues **every** exit inside the ``try`` (that
  is exactly what ``finally`` guarantees at runtime).
* ``with`` — scanned like a plain block; rules that treat a context
  manager itself as the release simply exempt creation nodes that appear
  in a ``withitem``.
* loops — bodies are scanned once; a loop can run zero times, so the
  pre-loop state survives, and ``break``/``continue`` states merge into
  the post-loop state.
* the *bump-iff-changed* idiom — when the trigger sits in an ``if`` test
  (``if self._flat.drop(peer): self._state_version += 1``) only the true
  branch is armed: the guard returning falsy means no mutation happened.
* ``raise`` — an exceptional exit owes nothing (the contract is about
  return paths; exception safety is what the ``finally`` handling checks).

States: ``OK`` (no pending obligation), ``ARMED`` (trigger seen, release
still owed), ``DEAD`` (control cannot reach here).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "OK",
    "ARMED",
    "DEAD",
    "Binding",
    "ObligationFailure",
    "check_obligation",
    "collect_bindings",
    "walk_no_nested",
]

OK = 0
ARMED = 1
DEAD = 2

#: Node types whose bodies belong to a different scope and must not leak
#: triggers/releases into the enclosing function's analysis.
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """Yield *node* and its subtree, without descending into nested scopes.

    The root itself is yielded even when it is a function or class
    definition; only *child* scopes are fenced off.
    """
    stack: List[ast.AST] = [node]
    first = True
    while stack:
        current = stack.pop()
        if not first and isinstance(current, _NESTED_SCOPES):
            continue
        first = False
        yield current
        stack.extend(ast.iter_child_nodes(current))


Predicate = Callable[[ast.AST], bool]


@dataclass(frozen=True)
class ObligationFailure:
    """One exit path on which the obligation was still pending."""

    #: The statement where the armed path leaves the function: a ``return``
    #: node, or the trigger itself when the function falls off the end.
    exit_node: ast.AST
    #: The most recent trigger on the failing path (best anchor for the
    #: human-facing message).
    trigger: Optional[ast.AST]
    #: ``"return"`` or ``"fall-through"``.
    kind: str


class _LoopFrame:
    __slots__ = ("exit_states",)

    def __init__(self) -> None:
        # States flowing out of the loop via ``break`` or back to the head
        # via ``continue`` (the next test may be the last, so a continue
        # state can also reach the loop exit).
        self.exit_states: List[int] = []


def _merge(states: Sequence[int]) -> int:
    live = [s for s in states if s != DEAD]
    if not live:
        return DEAD
    return ARMED if any(s == ARMED for s in live) else OK


class _Scanner:
    def __init__(
        self,
        is_trigger: Predicate,
        is_release: Predicate,
        exit_ok: Optional[Callable[[ast.Return], bool]] = None,
    ) -> None:
        self.is_trigger = is_trigger
        self.is_release = is_release
        self.exit_ok = exit_ok
        self.failures: List[ObligationFailure] = []
        self.last_trigger: Optional[ast.AST] = None
        self.loops: List[_LoopFrame] = []

    # -- node-level effects -------------------------------------------------

    def _contains(self, node: Optional[ast.AST], pred: Predicate) -> bool:
        if node is None:
            return False
        return any(pred(n) for n in walk_no_nested(node))

    def _effect(self, node: Optional[ast.AST], state: int) -> int:
        """State after executing *node* as a straight-line unit."""
        if node is None:
            return state
        triggers = False
        releases = False
        for sub in walk_no_nested(node):
            if self.is_trigger(sub):
                triggers = True
                self.last_trigger = sub
            if self.is_release(sub):
                releases = True
        if triggers and releases:
            # Same-statement pairs (``self._states[p] = s; bump`` folded into
            # one line, or a release guarded by its own trigger) — assume the
            # release ran after the trigger.
            return OK
        if triggers:
            return ARMED
        if releases:
            return OK
        return state

    # -- statement dispatch -------------------------------------------------

    def scan(self, stmts: Sequence[ast.stmt], state: int) -> int:
        for stmt in stmts:
            if state == DEAD:
                return DEAD
            state = self._scan_stmt(stmt, state)
        return state

    def _scan_stmt(self, stmt: ast.stmt, state: int) -> int:
        if isinstance(stmt, ast.Return):
            state = self._effect(stmt.value, state)
            if state == ARMED and not (self.exit_ok and self.exit_ok(stmt)):
                self.failures.append(
                    ObligationFailure(stmt, self.last_trigger, "return")
                )
            return DEAD
        if isinstance(stmt, ast.Raise):
            return DEAD
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loops:
                self.loops[-1].exit_states.append(state)
            return DEAD
        if isinstance(stmt, ast.If):
            return self._scan_if(stmt, state)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._scan_loop(stmt, state)
        if isinstance(stmt, ast.Try):
            return self._scan_try(stmt, state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                state = self._effect(item.context_expr, state)
            return self.scan(stmt.body, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state
        # Simple statements (Assign, AugAssign, Expr, Delete, Assert, ...).
        return self._effect(stmt, state)

    def _scan_if(self, stmt: ast.If, state: int) -> int:
        test_arms = self._contains(stmt.test, self.is_trigger)
        test_releases = self._contains(stmt.test, self.is_release)
        after_test = self._effect(stmt.test, state)
        if test_arms and not test_releases:
            # bump-iff-changed: the guard *is* the mutation; its falsy
            # branch means nothing changed, so only the true branch owes.
            body_in, else_in = ARMED, state
        else:
            body_in = else_in = after_test
        body_out = self.scan(stmt.body, body_in)
        else_out = self.scan(stmt.orelse, else_in) if stmt.orelse else else_in
        return _merge([body_out, else_out])

    def _scan_loop(self, stmt: ast.stmt, state: int) -> int:
        if self.is_release(stmt):
            # A rule may recognize the whole loop as one release unit —
            # REP010's cleanup loop ``for seg in owned.values():
            # seg.unlink()`` is vacuously satisfied when the container is
            # empty, so the usual zero-iteration conservatism would be a
            # false positive here.
            return self._effect(stmt, state)
        head = stmt.test if isinstance(stmt, ast.While) else stmt.iter  # type: ignore[attr-defined]
        in_state = self._effect(head, state)
        frame = _LoopFrame()
        self.loops.append(frame)
        body_out = self.scan(stmt.body, in_state)  # type: ignore[attr-defined]
        self.loops.pop()
        # Zero iterations keep ``in_state``; one-or-more keep ``body_out``;
        # break/continue states can also reach the loop exit.
        after = _merge([in_state, body_out] + frame.exit_states)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            after = self.scan(orelse, after)
        return after

    def _probe(self, stmts: Sequence[ast.stmt], state: int) -> "_Scanner":
        sub = _Scanner(self.is_trigger, self.is_release, self.exit_ok)
        sub.last_trigger = self.last_trigger
        sub.end_state = sub.scan(stmts, state)  # type: ignore[attr-defined]
        return sub

    def _scan_try(self, stmt: ast.Try, state: int) -> int:
        body = self._probe(stmt.body, state)
        body_end: int = body.end_state  # type: ignore[attr-defined]
        # Any statement in the body may raise after the trigger executed.
        handler_in = ARMED if any(
            self.is_trigger(n) for s in stmt.body for n in walk_no_nested(s)
        ) else state
        branches: List[_Scanner] = [body]
        ends: List[int] = []
        for handler in stmt.handlers:
            sub = self._probe(handler.body, handler_in)
            branches.append(sub)
            ends.append(sub.end_state)  # type: ignore[attr-defined]
        if stmt.orelse:
            sub = self._probe(stmt.orelse, body_end)
            branches.append(sub)
            ends.append(sub.end_state)  # type: ignore[attr-defined]
        else:
            ends.append(body_end)
        merged = _merge(ends)
        collected = [f for b in branches for f in b.failures]
        if stmt.finalbody:
            # Does straight-line execution of the finally release the
            # obligation no matter what state flows in?
            fin = self._probe(stmt.finalbody, ARMED)
            fin_end: int = fin.end_state  # type: ignore[attr-defined]
            finally_releases = fin_end == OK and not fin.failures
            if finally_releases:
                collected = []  # every exit inside the try passed the release
                merged = OK if merged != DEAD else DEAD
            else:
                real = self._probe(stmt.finalbody, merged)
                collected.extend(real.failures)
                merged = real.end_state  # type: ignore[attr-defined]
        self.failures.extend(collected)
        for branch in branches:
            if branch.last_trigger is not None:
                self.last_trigger = branch.last_trigger
        return merged


def check_obligation(
    body: Sequence[ast.stmt],
    is_trigger: Predicate,
    is_release: Predicate,
    exit_ok: Optional[Callable[[ast.Return], bool]] = None,
) -> List[ObligationFailure]:
    """Check *trigger ⇒ release before every normal exit* over *body*.

    Returns the failing exits (empty list = contract holds).  *exit_ok*
    lets a rule bless specific ``return`` statements — REP010 uses it for
    returns that transfer ownership of the created segment to the caller.
    """
    scanner = _Scanner(is_trigger, is_release, exit_ok)
    end = scanner.scan(body, OK)
    if end == ARMED:
        anchor = scanner.last_trigger if scanner.last_trigger is not None else body[-1]
        scanner.failures.append(
            ObligationFailure(anchor, scanner.last_trigger, "fall-through")
        )
    return scanner.failures


# -- flow-insensitive bindings ---------------------------------------------


@dataclass(frozen=True)
class Binding:
    """One assignment reaching a local name (flow-insensitive)."""

    #: The right-hand side (for ``for``/``with`` forms, the iterable or
    #: context expression).
    value: ast.expr
    #: How the name was bound: ``assign`` | ``unpack`` | ``aug`` | ``ann``
    #: | ``for`` | ``with``.
    via: str
    #: Position within a tuple-unpacking target, else ``None``.
    elt_index: Optional[int] = None


def collect_bindings(body: Sequence[ast.stmt]) -> Dict[str, List[Binding]]:
    """Map every locally-bound name to the expressions that bind it.

    This is the "reaching definitions" substrate the program rules share:
    deliberately flow-insensitive (any def may reach any use), which errs
    toward *more* taint — the right direction for hazard rules.
    """
    table: Dict[str, List[Binding]] = {}

    def bind(name: str, binding: Binding) -> None:
        table.setdefault(name, []).append(binding)

    def bind_target(target: ast.expr, value: ast.expr, via: str) -> None:
        if isinstance(target, ast.Name):
            bind(target.id, Binding(value, via))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Name):
                    bind(elt.id, Binding(value, "unpack", elt_index=i))
                elif isinstance(elt, ast.Starred) and isinstance(
                    elt.value, ast.Name
                ):
                    bind(elt.value.id, Binding(value, "unpack", elt_index=i))

    for root in body:
        for node in walk_no_nested(root):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bind_target(target, node.value, "assign")
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind_target(node.target, node.value, "ann")
            elif isinstance(node, ast.AugAssign):
                bind_target(node.target, node.value, "aug")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind_target(node.target, node.iter, "for")
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars, item.context_expr, "with")
            elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                bind(node.target.id, Binding(node.value, "assign"))
    return table
