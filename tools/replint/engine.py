"""Core machinery of replint: file discovery, suppressions, rule dispatch.

replint is a *repository-specific* static analyzer: its rules encode
invariants of **this** codebase (determinism of the ACE reproduction, the
overlay/underlay cache-coherence contracts from ``docs/PERFORMANCE.md``, the
layering of ``repro``'s subpackages) rather than generic style.  Everything
here is stdlib-only (``ast`` + ``tokenize``) so the checker runs anywhere the
test suite runs, with no third-party dependency.

The pieces:

* :class:`Violation` — one finding, formatted ``path:line:col: CODE message``.
* :class:`FileContext` — a parsed file plus derived metadata (dotted module
  name when the file sits under a ``src/`` root, suppression table).
  :func:`load_context` serves contexts from an mtime-keyed cache so each
  file is read and parsed **once** per process, no matter how many rules
  (or the program index) need it.
* :class:`Rule` — per-file base class; concrete rules live in
  :mod:`tools.replint.rules`.
* :class:`ProgramRule` — whole-program base class; receives a
  :class:`~tools.replint.program.ProgramIndex` (symbol table + call graph)
  built once over every file in the run.
* :func:`check_paths` — walk files/directories, run every rule of both
  kinds, return the sorted findings.  This is what both the CLI
  (``python -m tools.replint``) and the pytest bridge call.

Suppressions
------------
A violation is suppressed by a ``# replint: disable=CODE[,CODE...]`` comment
either on the reported line itself or alone on the line directly above it
(for statements too long to share a line with a comment).  A bare
``# replint: disable`` suppresses every rule on that line.  Whole files can
opt out of specific rules with ``# replint: disable-file=CODE[,CODE...]``
anywhere in the file.  Suppressions are deliberately *narrow*: there is no
``enable`` pragma and no block scope, so every exception stays visible at the
line that needs it.  Every pragma must carry a justification after the code
list (``# replint: disable=REP004 — served from cache``); REP013 flags bare
ones, and ``--show-suppressions`` audits the inventory.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from .program import ProgramIndex

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "ProgramRule",
    "SuppressionRecord",
    "parse_suppressions",
    "module_name_for",
    "iter_python_files",
    "load_context",
    "check_file",
    "check_paths",
]

#: Sentinel meaning "all rule codes" in a suppression set.
ALL_CODES = "*"

#: Directory names never descended into.  ``fixtures`` is excluded because
#: the replint test suite keeps deliberately-violating example files there.
DEFAULT_EXCLUDED_DIRS: FrozenSet[str] = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", "fixtures"}
)

#: Code used for files that cannot be parsed at all.
PARSE_ERROR_CODE = "REP000"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, ordered for stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class SuppressionRecord:
    """One parsed pragma, kept for auditing (``--show-suppressions``, REP013)."""

    #: Line the pragma comment sits on.
    pragma_line: int
    #: Line the suppression applies to (``0`` for whole-file pragmas).
    target_line: int
    #: ``"line"`` or ``"file"``.
    kind: str
    codes: FrozenSet[str] = frozenset()
    #: Free text after the code list; empty string when the author gave none.
    justification: str = ""


@dataclass
class Suppressions:
    """Per-file suppression table derived from magic comments."""

    #: line number -> set of codes disabled on that line (or ``{"*"}``).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: codes disabled for the whole file (or ``{"*"}``).
    whole_file: Set[str] = field(default_factory=set)
    #: every pragma in source order, for auditing.
    records: List[SuppressionRecord] = field(default_factory=list)

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether *code* is silenced at *line*."""
        if ALL_CODES in self.whole_file or code in self.whole_file:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code in codes


_CODE_LIST_RE = re.compile(r"\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Separator punctuation allowed between the code list and the justification
#: text (em/en dash, hyphen, colon).
_JUSTIFICATION_STRIP = " \t—–:-"


def _parse_pragma(comment: str) -> Optional[Tuple[str, Set[str], str]]:
    """Parse one ``# replint: ...`` comment into ``(kind, codes, why)``.

    Returns ``None`` for comments that are not replint pragmas.  *kind* is
    ``"line"`` or ``"file"``; *codes* is the set of rule codes (or
    ``{"*"}`` for a bare ``disable``); *why* is the justification text
    after the code list (``# replint: disable=REP004 — served from
    cache``).  An empty *why* is a REP013 finding — suppressions must say
    what they are for.
    """
    text = comment.lstrip("#").strip()
    if not text.startswith("replint:"):
        return None
    directive = text[len("replint:"):].strip()
    if directive.startswith("disable-file"):
        kind, rest = "file", directive[len("disable-file"):]
    elif directive.startswith("disable"):
        kind, rest = "line", directive[len("disable"):]
    else:
        return None
    rest = rest.strip()
    if not rest or not rest.startswith("="):
        return kind, {ALL_CODES}, rest.strip(_JUSTIFICATION_STRIP)
    match = _CODE_LIST_RE.match(rest[1:])
    if match is None:
        return None
    codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
    if not codes:
        return None
    justification = rest[1:][match.end():].strip(_JUSTIFICATION_STRIP)
    return kind, codes, justification


def parse_suppressions(source: str) -> Suppressions:
    """Build the suppression table for a file's source text.

    A pragma on a line that holds code applies to that line; a pragma on a
    comment-only line applies to the **next** line (so long statements can
    carry a suppression immediately above them).
    """
    table = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(iter(source.splitlines(True)).__next__))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    code_lines: Set[int] = set()
    comment_lines: Set[int] = set()
    comments: List[Tuple[int, str]] = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_lines.add(tok.start[0])
            comments.append((tok.start[0], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            for ln in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(ln)
    for line, comment in comments:
        parsed = _parse_pragma(comment)
        if parsed is None:
            continue
        kind, codes, justification = parsed
        if kind == "file":
            table.whole_file |= codes
            table.records.append(
                SuppressionRecord(line, 0, kind, frozenset(codes), justification)
            )
            continue
        if line in code_lines:
            target = line
        else:
            # Comment-only pragma: it governs the first code line after the
            # comment block it opens (so a multi-line justification between
            # the pragma and the code still attaches correctly).
            target = line + 1
            while target in comment_lines and target not in code_lines:
                target += 1
        table.by_line.setdefault(target, set()).update(codes)
        table.records.append(
            SuppressionRecord(line, target, kind, frozenset(codes), justification)
        )
    return table


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``src/`` root, else ``None``.

    ``src/repro/topology/overlay.py`` -> ``repro.topology.overlay`` and
    ``src/repro/__init__.py`` -> ``repro``.  The *last* ``src`` path
    component wins, so fixture trees like
    ``tests/replint/fixtures/src/repro/...`` resolve the same way the real
    source tree does.
    """
    parts = path.parts
    src_idx = None
    for i, part in enumerate(parts):
        if part == "src":
            src_idx = i
    if src_idx is None or src_idx + 1 >= len(parts):
        return None
    rel = list(parts[src_idx + 1:])
    if not rel[-1].endswith(".py"):
        return None
    rel[-1] = rel[-1][: -len(".py")]
    if rel[-1] == "__init__":
        rel.pop()
    return ".".join(rel) if rel else None


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: Path
    source: str
    tree: ast.Module
    module: Optional[str]
    suppressions: Suppressions

    @classmethod
    def load(cls, path: Path) -> "FileContext":
        """Read and parse *path* (raises ``SyntaxError`` on unparsable code)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module_name_for(path),
            suppressions=parse_suppressions(source),
        )

    @property
    def in_repro_src(self) -> bool:
        """Whether this file is an importable ``repro`` source module."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        """Construct a violation anchored at *node*."""
        return Violation(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


#: Process-wide context cache keyed by resolved path; entries carry the
#: ``(mtime_ns, size)`` stamp they were parsed under and are replaced when
#: the file changes.  With eight-plus rules sharing every AST, this is what
#: keeps the tier-1 self-check's wall clock flat as the rule count grows.
_CONTEXT_CACHE: Dict[str, Tuple[Tuple[int, int], FileContext]] = {}


def load_context(path: Path) -> FileContext:
    """Cached :meth:`FileContext.load` (raises ``SyntaxError`` like it).

    The cache key is the file's ``(st_mtime_ns, st_size)`` stamp, so edits
    between runs in one process (tests do this constantly) invalidate
    naturally while repeated checks of an unchanged tree parse nothing.
    """
    key = str(path)
    try:
        stat = path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return FileContext.load(path)
    cached = _CONTEXT_CACHE.get(key)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    ctx = FileContext.load(path)
    _CONTEXT_CACHE[key] = (stamp, ctx)
    return ctx


class Rule:
    """Base class for per-file replint rules.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description` and
    implement :meth:`check`.  :meth:`applies_to` lets a rule scope itself to
    part of the tree (e.g. REP004 only audits importable ``src/`` modules).
    """

    code: str = "REP999"
    name: str = "unnamed"
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule should run on *ctx* at all."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield violations found in the file."""
        raise NotImplementedError

    def run(self, ctx: FileContext) -> List[Violation]:
        """Run the rule and drop suppressed findings."""
        if not self.applies_to(ctx):
            return []
        return [
            v
            for v in self.check(ctx)
            if not ctx.suppressions.is_suppressed(v.line, v.code)
        ]


class ProgramRule:
    """Base class for whole-program replint rules.

    Unlike :class:`Rule`, a program rule runs **once** per check over a
    :class:`~tools.replint.program.ProgramIndex` covering every parsed
    file, so it can follow calls across functions and modules (REP009's
    stream taint, REP010's ownership transfer, REP011's caller-bump
    exemption all need that).  Line suppressions work exactly as for file
    rules: findings are filtered against the suppression table of the file
    they land in.
    """

    code: str = "REP999"
    name: str = "unnamed"
    description: str = ""

    def check_program(self, program: "ProgramIndex") -> Iterable[Violation]:
        """Yield violations found anywhere in the program."""
        raise NotImplementedError

    def run_program(self, program: "ProgramIndex") -> List[Violation]:
        """Run the rule and drop suppressed findings."""
        out: List[Violation] = []
        for v in self.check_program(program):
            ctx = program.files.get(v.path)
            if ctx is not None and ctx.suppressions.is_suppressed(v.line, v.code):
                continue
            out.append(v)
        return out


def _split_rules(
    rules: Sequence[object],
) -> Tuple[List[Rule], List[ProgramRule]]:
    file_rules = [r for r in rules if isinstance(r, Rule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    return file_rules, program_rules


def iter_python_files(
    paths: Sequence[Path],
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield ``.py`` files under *paths*, skipping excluded directories."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for sub in sorted(path.rglob("*.py")):
            if any(part in excluded_dirs for part in sub.parts):
                continue
            if sub not in seen:
                seen.add(sub)
                yield sub


def _parse_error_violation(path: Path, exc: SyntaxError) -> Violation:
    return Violation(
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        code=PARSE_ERROR_CODE,
        message=f"file could not be parsed: {exc.msg}",
    )


def check_file(path: Path, rules: Sequence[object]) -> List[Violation]:
    """Run *rules* over one file (a parse failure is itself a violation).

    Program rules are supported by building a single-file program index —
    handy for fixtures and focused tests; real runs get the shared index
    from :func:`check_paths`.
    """
    try:
        ctx = load_context(path)
    except SyntaxError as exc:
        return [_parse_error_violation(path, exc)]
    file_rules, program_rules = _split_rules(rules)
    out: List[Violation] = []
    for rule in file_rules:
        out.extend(rule.run(ctx))
    if program_rules:
        from .program import ProgramIndex

        program = ProgramIndex.build([ctx])
        for prule in program_rules:
            out.extend(prule.run_program(program))
    out.sort()
    return out


def check_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[object]] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Violation]:
    """Check every python file under *paths* with *rules* (default: all).

    Every file is parsed once (through the context cache), per-file rules
    run over each context, and the program rules run once over a
    :class:`~tools.replint.program.ProgramIndex` built from all parsed
    files.  Unparsable files become REP000 findings and simply stay out of
    the index — a broken file must never take the whole analysis down.
    Returns the findings sorted by location for stable, diffable output.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    file_rules, program_rules = _split_rules(rules)
    out: List[Violation] = []
    contexts: List[FileContext] = []
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        try:
            ctx = load_context(path)
        except SyntaxError as exc:
            out.append(_parse_error_violation(path, exc))
            continue
        contexts.append(ctx)
        for rule in file_rules:
            out.extend(rule.run(ctx))
    if program_rules:
        from .program import ProgramIndex

        program = ProgramIndex.build(contexts)
        for prule in program_rules:
            out.extend(prule.run_program(program))
    out.sort()
    return out


def iter_contexts(
    paths: Sequence[Path],
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[FileContext]:
    """Parsed contexts for every checkable file (skipping unparsable ones).

    Used by ``--show-suppressions`` to audit pragmas without running rules.
    """
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        try:
            yield load_context(path)
        except SyntaxError:
            continue
