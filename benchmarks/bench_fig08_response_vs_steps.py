"""Figure 8: average response time vs. ACE optimization steps (static).

Paper: "ACE can shorten the query response time by about 35% after 10
steps."  Shares the static convergence runs with Figure 7.
"""

from conftest import DEGREES, report, static_series

from repro.experiments.reporting import format_series


def test_fig08_response_vs_steps(benchmark, capsys):
    series = benchmark.pedantic(static_series, rounds=1, iterations=1)
    steps = series[DEGREES[0]].steps
    table = format_series(
        "step",
        steps,
        {
            f"C={c} response": [round(t) for t in series[c].response_time]
            for c in DEGREES
        },
        title="Figure 8: avg response time per query vs ACE steps",
    )
    report(capsys, table)
    summary = format_series(
        "C",
        list(DEGREES),
        {
            "response reduction %": [
                round(series[c].response_reduction_percent, 1) for c in DEGREES
            ]
        },
        title="Figure 8 summary (paper: ~35% reduction after 10 steps)",
    )
    report(capsys, summary)

    for c in DEGREES:
        s = series[c]
        assert s.response_time[-1] < s.response_time[0]
