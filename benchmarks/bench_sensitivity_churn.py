"""Sensitivity: ACE's dynamic advantage vs. churn intensity.

The paper fixes the mean lifetime at 10 minutes; this bench sweeps it to
show *why* that number matters: the shorter peers live, the more of each
optimization is wasted on connections that vanish — ACE's advantage
(overhead included) shrinks as churn intensifies, and grows toward the
static result as the population stabilizes.
"""

from conftest import DYNAMIC_BASE, report

from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.sim.churn import ChurnConfig

#: Mean lifetimes swept, in seconds (the paper's value is 600).
LIFETIMES = (150.0, 600.0, 2400.0)


def test_sensitivity_churn(benchmark, capsys):
    def run():
        out = {}
        window = max(120, DYNAMIC_BASE.peers)
        total = 5 * window
        for lifetime in LIFETIMES:
            arms = {}
            for name, enable in (("gnutella", False), ("ace", True)):
                scenario = build_scenario(DYNAMIC_BASE)
                arms[name] = run_dynamic_experiment(
                    scenario,
                    DynamicConfig(
                        total_queries=total,
                        window=window,
                        enable_ace=enable,
                        churn=ChurnConfig(
                            mean_lifetime=lifetime,
                            std_lifetime=lifetime / 2.0,
                        ),
                    ),
                )
            tail = slice(2, None)
            g = arms["gnutella"].traffic_points[tail]
            a = arms["ace"].traffic_points[tail]
            reduction = 100.0 * (sum(g) - sum(a)) / sum(g)
            out[lifetime] = (
                reduction,
                arms["ace"].departures,
                arms["gnutella"].departures,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{lifetime / 60:.1f} min", departures,
         round(reduction, 1)]
        for lifetime, (reduction, departures, _g) in sorted(results.items())
    ]
    report(
        capsys,
        format_table(
            ["mean lifetime", "departures (ACE arm)", "ACE traffic reduction %"],
            rows,
            title=(
                "Churn sensitivity: steady-state ACE reduction vs mean "
                "lifetime (paper's setting: 10 min)"
            ),
        ),
    )

    reductions = {lt: r for lt, (r, _d, _g) in results.items()}
    # ACE wins at the paper's churn level and beyond.
    assert reductions[600.0] > 0
    assert reductions[2400.0] > 0
    # A stabler population gives ACE at least as much room as heavy churn.
    assert reductions[2400.0] >= reductions[150.0]
