"""Section 1 motivation: Gnutella traffic needlessly crosses AS borders.

Paper: "only 2 to 5 percent of Gnutella connections link peers within a
single autonomous system ...  most Gnutella-generated traffic crosses AS
borders so as to increase topology mismatching costs."

This bench builds a transit-stub underlay with labelled stub domains,
places a random Gnutella-like overlay on it, verifies the measured
intra-AS connection share matches the paper's 2-5% order of magnitude, and
shows ACE multiplying the AS locality while cutting query traffic.
"""

import numpy as np
from conftest import report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.autonomous_systems import as_traffic_report, transit_stub
from repro.topology.overlay import small_world_overlay

PEERS = 144
STEPS = 8


def test_motivation_as_locality(benchmark, capsys):
    def run():
        rng = np.random.default_rng(13)
        topo, labels = transit_stub(
            transit_nodes=14, stubs_per_transit=3, stub_size=12, rng=rng
        )
        overlay = small_world_overlay(topo, PEERS, avg_degree=8, rng=rng)
        sources = overlay.peers()[:8]

        def snapshot(strategy):
            link_report = as_traffic_report(labels, overlay)
            traffic = 0.0
            inter_frac = 0.0
            for s in sources:
                prop = propagate(overlay, s, strategy, ttl=None)
                traffic += prop.traffic_cost
                inter_frac += as_traffic_report(
                    labels, overlay, prop
                ).inter_traffic_fraction
            return (
                link_report.intra_link_fraction,
                traffic / len(sources),
                inter_frac / len(sources),
            )

        before = snapshot(blind_flooding_strategy(overlay))
        protocol = AceProtocol(overlay, rng=rng)
        protocol.run(STEPS)
        after = snapshot(ace_strategy(protocol))
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["random Gnutella-like", round(100 * before[0], 1), round(before[1]),
         round(100 * before[2], 1)],
        [f"after {STEPS} ACE steps", round(100 * after[0], 1), round(after[1]),
         round(100 * after[2], 1)],
    ]
    report(
        capsys,
        format_table(
            ["overlay", "intra-AS links %", "traffic/query", "inter-AS traffic %"],
            rows,
            title=(
                "Section 1 motivation: AS locality of connections/traffic "
                "(paper: 2-5% of Gnutella links stay inside one AS)"
            ),
        ),
    )

    # The mismatched overlay reproduces the measured 2-5%-ish AS locality.
    assert before[0] < 0.15
    # ACE multiplies locality and cuts traffic.
    assert after[0] > 2 * before[0]
    assert after[1] < before[1]
