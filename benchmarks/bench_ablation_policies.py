"""Ablation: Phase-3 candidate policies (paper Section 6 future work).

The paper evaluates only the *random* policy and sketches two alternatives:
*naive* (cut the most expensive neighbor, probe random peers anywhere) and
*closest* (probe the whole neighbor list, pick the best).  This bench runs
all three, reporting converged traffic and total probe overhead — closest
should win on traffic but pay the most probes.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceConfig, AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

POLICIES = ("random", "closest", "naive")
STEPS = 8


def test_ablation_policies(benchmark, capsys):
    def run_all():
        scenario = build_scenario(BASE)
        peers = scenario.overlay.peers()
        src_rng = np.random.default_rng(1)
        sources = [peers[int(i)] for i in src_rng.integers(0, len(peers), 16)]

        def measure(ov, strategy):
            return sum(
                propagate(ov, s, strategy, ttl=None).traffic_cost
                for s in sources
            ) / len(sources)

        baseline = measure(
            scenario.overlay, blind_flooding_strategy(scenario.overlay)
        )
        out = {}
        for policy in POLICIES:
            ov = scenario.fresh_overlay()
            protocol = AceProtocol(
                ov, AceConfig(policy=policy), rng=np.random.default_rng(3)
            )
            reports = protocol.run(STEPS)
            out[policy] = (
                measure(ov, ace_strategy(protocol)),
                sum(r.replacement_probe_overhead for r in reports),
                sum(r.probes for r in reports),
            )
        return baseline, out

    baseline, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            policy,
            round(traffic),
            round(100 * (baseline - traffic) / baseline, 1),
            round(probe_cost),
            probes,
        ]
        for policy, (traffic, probe_cost, probes) in results.items()
    ]
    report(
        capsys,
        format_table(
            ["policy", "traffic/query", "reduction %", "probe overhead", "probes"],
            rows,
            title=(
                f"Ablation: Phase-3 candidate policies after {STEPS} rounds "
                f"(blind flooding baseline {baseline:.0f})"
            ),
        ),
    )

    for traffic, _cost, _probes in results.values():
        assert traffic < baseline
    # Closest probes the whole pool: strictly more probes than random.
    assert results["closest"][2] > results["random"][2]
    # The extra information buys traffic at least as good as random's.
    assert results["closest"][0] <= results["random"][0] * 1.1
