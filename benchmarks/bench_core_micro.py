"""Micro-benchmarks of the hot code paths.

These use pytest-benchmark's normal repeated timing (unlike the figure
benches, which run heavy simulations once): Prim over a closure, closure
construction, one flooding propagation, and one ACE peer optimization.
"""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol, StepReport
from repro.core.closure import neighbor_closure
from repro.core.spanning_tree import prim_mst, prim_mst_heap
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy


@pytest.fixture(scope="module")
def world():
    scenario = build_scenario(
        ScenarioConfig(physical_nodes=800, peers=128, avg_degree=8, seed=9)
    )
    protocol = AceProtocol(
        scenario.overlay, AceConfig(depth=2), rng=np.random.default_rng(9)
    )
    protocol.step()
    return scenario, protocol


def test_micro_neighbor_closure(benchmark, world):
    scenario, _protocol = world
    source = scenario.overlay.peers()[0]
    closure = benchmark(neighbor_closure, scenario.overlay, source, 2)
    assert closure.size > 1


def test_micro_prim_heap(benchmark, world):
    scenario, _protocol = world
    source = scenario.overlay.peers()[0]
    closure = neighbor_closure(scenario.overlay, source, 2)
    tree = benchmark(prim_mst_heap, closure.edges, source)
    assert tree.nodes() == set(closure.members)


def test_micro_prim_array(benchmark, world):
    scenario, _protocol = world
    source = scenario.overlay.peers()[0]
    closure = neighbor_closure(scenario.overlay, source, 1)
    tree = benchmark(prim_mst, closure.edges, source)
    assert tree.root == source


def test_micro_blind_flood(benchmark, world):
    scenario, _protocol = world
    overlay = scenario.overlay
    source = overlay.peers()[0]
    strategy = blind_flooding_strategy(overlay)
    prop = benchmark(propagate, overlay, source, strategy, None)
    assert prop.search_scope == overlay.num_peers


def test_micro_ace_routing(benchmark, world):
    scenario, protocol = world
    overlay = scenario.overlay
    source = overlay.peers()[0]
    strategy = ace_strategy(protocol)
    prop = benchmark(propagate, overlay, source, strategy, None)
    assert prop.search_scope == overlay.num_peers


def test_micro_optimize_one_peer(benchmark, world):
    scenario, protocol = world
    peer = scenario.overlay.peers()[0]

    def optimize():
        return protocol.optimize_peer(peer, StepReport(step_index=0))

    benchmark(optimize)
