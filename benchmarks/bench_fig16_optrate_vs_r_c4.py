"""Figure 16: optimization rate vs. frequency ratio R at C = 4.

Paper: "Comparing Figure 15 with Figure 16, for the same value of R, the
minimal value of h is small for a large value of C ...  ACE is more
effective in a topology with high connectivity density."
"""

from conftest import DEPTHS, depth_sweep, report

from repro.experiments.opt_rate import REPRO_R_VALUES, rate_vs_frequency_ratio
from repro.experiments.reporting import format_series

DEGREE = 4


def test_fig16_optrate_vs_r_c4(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    series = rate_vs_frequency_ratio(sweep, DEGREE, REPRO_R_VALUES, depths=DEPTHS)
    table = format_series(
        "R",
        [f"{r:g}" for r in REPRO_R_VALUES],
        {f"h={h}": [round(rate, 3) for _r, rate in series[h]] for h in DEPTHS},
        title=f"Figure 16: optimization rate vs frequency ratio R (C={DEGREE})",
    )
    report(capsys, table)

    for h in DEPTHS:
        rates = [rate for _r, rate in series[h]]
        assert all(b > a for a, b in zip(rates, rates[1:]))
        assert rates[0] < 1.0

    # The paper's cross-density claim ("for the same value of R, the
    # minimal value of h is small for a large value of C"): whenever both
    # densities achieve gain at some R, the denser overlay's minimal depth
    # is not larger.  (Peak *rates* can favor the sparse overlay at laptop
    # scale, where C=10 closures engulf the whole network by h=2.)
    from repro.experiments.opt_rate import minimal_depths_table

    minima = minimal_depths_table(sweep, REPRO_R_VALUES)
    compared = 0
    for r in REPRO_R_VALUES:
        dense_h = minima[10][r]
        sparse_h = minima[4][r]
        if dense_h is not None and sparse_h is not None:
            assert dense_h <= sparse_h
            compared += 1
    assert compared > 0  # the sweep must exercise the comparison
