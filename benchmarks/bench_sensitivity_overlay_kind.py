"""Sensitivity: ACE vs. overlay family (clustering is load-bearing).

DESIGN.md documents that ACE's Phase 2/3 feed on neighbor-neighbor links:
on a uniformly random overlay, 1-hop closures are near-stars, so there is
little to prune or replace.  This bench quantifies that across the three
overlay generators — uniform random, plain preferential attachment and the
default Holme-Kim small-world — reporting initial clustering and converged
ACE reduction side by side.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.properties import clustering_coefficient

KINDS = ("random", "power_law", "small_world")
STEPS = 8


def test_sensitivity_overlay_kind(benchmark, capsys):
    def run():
        out = {}
        for kind in KINDS:
            config = ScenarioConfig(
                physical_nodes=BASE.physical_nodes,
                peers=BASE.peers,
                avg_degree=8.0,
                overlay_kind=kind,
                seed=BASE.seed,
            )
            scenario = build_scenario(config)
            overlay = scenario.overlay
            sources = overlay.peers()[:10]

            def traffic(strategy):
                return sum(
                    propagate(overlay, s, strategy, ttl=None).traffic_cost
                    for s in sources
                ) / len(sources)

            clustering = clustering_coefficient(overlay)
            baseline = traffic(blind_flooding_strategy(overlay))
            protocol = AceProtocol(overlay, rng=np.random.default_rng(7))
            protocol.run(STEPS)
            optimized = traffic(ace_strategy(protocol))
            out[kind] = (
                clustering,
                100.0 * (baseline - optimized) / baseline,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [kind, round(results[kind][0], 3), round(results[kind][1], 1)]
        for kind in KINDS
    ]
    report(
        capsys,
        format_table(
            ["overlay family", "clustering", "ACE traffic reduction %"],
            rows,
            title=(
                "Overlay-family sensitivity: ACE needs the clustering real "
                "Gnutella snapshots have"
            ),
        ),
    )

    # Every family improves, but the clustered (Gnutella-shaped) overlay
    # improves the most — the Section 4.1 topology requirements matter.
    for kind in KINDS:
        assert results[kind][1] > 0
    assert results["small_world"][1] > results["random"][1]
    assert results["small_world"][0] > results["random"][0]
