"""Figure 11: query-traffic reduction rate vs. depth of neighbor closure.

Paper: "For a given depth of neighbor closure, the reduction rate increases
with increased average number of neighbors.  For a given average number of
neighbors, the reduction rate also increases as the depths of neighbor
closure increases.  There is a threshold of depth for each C, from which the
query traffic is hard to be further reduced."
"""

from conftest import DEGREES, DEPTHS, depth_sweep, report

from repro.experiments.reporting import format_series


def test_fig11_reduction_vs_depth(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    table = format_series(
        "h",
        list(DEPTHS),
        {
            f"C={c} reduction %": [
                round(t.reduction_percent, 1) for t in sweep.for_degree(c)
            ]
            for c in DEGREES
        },
        title="Figure 11: query traffic reduction rate (%) vs closure depth h",
    )
    report(capsys, table)

    for c in DEGREES:
        tradeoffs = sweep.for_degree(c)
        # Reduction is positive everywhere and saturates: the deepest value
        # is (near-)maximal.
        assert all(t.reduction_percent > 0 for t in tradeoffs)
        best = max(t.reduction_percent for t in tradeoffs)
        assert tradeoffs[-1].reduction_percent > best - 10.0
    # Denser overlays reduce more at every depth.
    for h_idx in range(len(DEPTHS)):
        low = sweep.for_degree(DEGREES[0])[h_idx].reduction_percent
        high = sweep.for_degree(DEGREES[-1])[h_idx].reduction_percent
        assert high > low
