"""Paper-scale smoke: trimmed Figure 7/9 arms on the full 20,000-node underlay.

Opt-in (CI runs it only when asked): the module is skipped unless
``REPRO_SCALE`` is set.  The point is not figure fidelity — the overlay and
query budgets are trimmed hard — but exercising the *transport* at the
paper's underlay size: one 20,000-node graph built in the parent, exported
to shared memory, attached zero-copy by every ``REPRO_WORKERS`` worker, and
the workers' perf counters merged back.  Typical invocation::

    REPRO_SCALE=1 REPRO_WORKERS=4 python -m pytest \
        benchmarks/bench_paper_scale.py -q

The reported wall-clock and merged counters are recorded in
``EXPERIMENTS.md`` (paper-scale smoke section).
"""

import os
import resource
import time

import pytest
from conftest import record_trajectory, report

from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_trials
from repro.experiments.paper_scale import PAPER_PHYSICAL_NODES, paper_scenario
from repro.experiments.setup import repro_workers
from repro.experiments.static_env import run_static_trials
from repro.perf import counters

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE"),
    reason="paper-scale smoke is opt-in: set REPRO_SCALE "
    "(and ideally REPRO_WORKERS) to run it",
)

#: Trimmed treatment sizes: the paper's full underlay, a reduced overlay.
#: Each fan-out carries >= 2 trials so the pool (and therefore the
#: shared-memory export/attach path) actually engages.
SMOKE_PEERS = 800
STATIC_DEGREES = (4.0, 6.0)
STATIC_STEPS = 2
QUERY_SAMPLES = 8
DYNAMIC_QUERIES = 300
DYNAMIC_WINDOW = 100


def test_paper_scale_smoke(benchmark, capsys):
    """Trimmed static (Fig 7) and dynamic (Fig 9) arms at 20k underlay nodes."""
    static_configs = [
        paper_scenario(avg_degree=d, seed=0, peers=SMOKE_PEERS)
        for d in STATIC_DEGREES
    ]
    dynamic_config = paper_scenario(avg_degree=8.0, seed=0, peers=SMOKE_PEERS)
    arms = [
        (
            dynamic_config,
            DynamicConfig(
                total_queries=DYNAMIC_QUERIES,
                window=DYNAMIC_WINDOW,
                enable_ace=enable_ace,
            ),
        )
        for enable_ace in (False, True)
    ]
    workers = repro_workers()
    counters.reset()

    def run_smoke():
        static = run_static_trials(
            static_configs,
            steps=STATIC_STEPS,
            query_samples=QUERY_SAMPLES,
            max_workers=workers,
        )
        dynamic = run_dynamic_trials(arms, max_workers=workers)
        return static, dynamic

    start = time.perf_counter()
    static, dynamic = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    assert all(s.traffic_per_query[0] > 0 for s in static)
    assert all(a.total_queries == DYNAMIC_QUERIES for a in dynamic)
    lines = [
        f"paper-scale smoke ({PAPER_PHYSICAL_NODES} underlay nodes, "
        f"{SMOKE_PEERS} peers, workers={workers}):"
    ]
    for degree, series in zip(STATIC_DEGREES, static):
        lines.append(
            f"  static Fig-7 arm C={degree:g}: {STATIC_STEPS} steps, "
            f"traffic/query {series.traffic_per_query[0]:.0f} -> "
            f"{series.traffic_per_query[-1]:.0f} "
            f"({series.traffic_reduction_percent:.1f}% reduction)"
        )
    for name, arm in zip(("gnutella", "ace"), dynamic):
        lines.append(
            f"  dynamic Fig-9 arm {name}: {arm.total_queries} queries, "
            f"mean traffic/query {arm.mean_traffic:.0f}, mean response "
            f"{arm.mean_response:.0f}"
        )
    lines.append(counters.format())
    report(capsys, "\n".join(lines))

    record_trajectory(
        "bench_paper_scale",
        underlay_nodes=PAPER_PHYSICAL_NODES,
        peers=SMOKE_PEERS,
        workers=workers,
        wall_seconds=round(wall_seconds, 2),
        peak_rss_mb=round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        static_traffic_reduction_percent=[
            round(s.traffic_reduction_percent, 2) for s in static
        ],
        dynamic_mean_traffic=[round(a.mean_traffic, 2) for a in dynamic],
        dijkstra_runs=counters.dijkstra_runs,
        underlay_builds=counters.underlay_builds,
        underlay_attaches=counters.underlay_attaches,
    )
