"""Batched ACE optimization kernel vs. the object-model reference loop.

PR 8's acceptance gate (see the Layer-7 section of ``docs/PERFORMANCE.md``):
the vectorized step kernel (:mod:`repro.core.batch_ace` — one shared CSR
frontier sweep extracting every scheduled peer's closure, a flat phase-1
cost pass and a segmented local-index MST) must run the ACE step loop on a
10,000-peer overlay **>= 5x** faster than the untouched object-model
reference protocol — with identical step reports, which this bench asserts
field-for-field across all three arms (byte-identity of the figures is
pinned exhaustively by ``tests/experiments/test_reproducibility.py`` and
``tests/core/test_batch_ace.py``).

Three arms, same underlay, same landmark oracle, same RNG stream:

* ``object``  — the scalar reference step loop on the object-model overlay
  (dicts of dicts; the path the ISSUE names as *the untouched reference*).
* ``scalar``  — the scalar step loop on the array (SoA) overlay: what the
  flat store alone buys, without the kernel.
* ``batched`` — the array overlay driven by the batched kernel.

The headline ratio is object/batched; scalar/batched is reported alongside
because the three arms share the sequential replacement/shedding machinery
(RNG-ordered probes and mutations), which bounds how far batching alone
can go once the per-peer closure/phase-1/MST work is vectorized.

Quick/CI mode (``REPRO_BENCH_QUICK=1``) trims the overlay to 2,000 peers
and softens the bar to 3x so the gate stays a smoke test; the headline
claim is the full 10k-peer ratio.  Set ``REPRO_SOA_SCALE=1`` to also run
the 100,000-peer *dynamic churn* demonstration (batched kernel +
vectorized churn driver end-to-end).

Every run appends a machine-readable entry to ``BENCH_ace.json`` at the
repo root (see ``EXPERIMENTS.md`` for the narrative trajectory).
"""

import dataclasses
import os
import resource
import time

import numpy as np
import pytest

from conftest import ACE_TRAJECTORY_PATH, record_trajectory, report

from repro.core.ace import AceConfig, AceProtocol
from repro.core.batch_ace import scalar_ace
from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.perf import counters
from repro.sim.churn import ChurnConfig

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") in ("1", "true")
PEERS = 2_000 if QUICK else 10_000
NODES = 2 * PEERS
ORACLE = "landmark:16"
AVG_DEGREE = 6.0
SEED = 11
STEPS = 2
SPEEDUP_BAR = 3.0 if QUICK else 5.0

SCALE_PEERS = 100_000
SCALE_NODES = 120_000


def _step_loop(engine, batched, peers=PEERS, nodes=NODES):
    """Run STEPS optimization steps on a fresh scenario; time the loop only.

    Scenario build, cost warming and query measurement are excluded — the
    gate is about the step loop the kernel replaced, not the shared layers
    underneath it.
    """
    counters.reset()
    config = ScenarioConfig(
        physical_nodes=nodes,
        peers=peers,
        avg_degree=AVG_DEGREE,
        seed=SEED,
        oracle=ORACLE,
        engine=engine,
    )
    scenario = build_scenario(config)
    overlay = scenario.fresh_overlay()
    overlay.warm_edge_costs()
    protocol = AceProtocol(
        overlay, AceConfig(), rng=np.random.default_rng(SEED + 0xACE)
    )
    start = time.perf_counter()
    if batched:
        reports = [dataclasses.asdict(protocol.step()) for _ in range(STEPS)]
    else:
        with scalar_ace():
            reports = [
                dataclasses.asdict(protocol.step()) for _ in range(STEPS)
            ]
    seconds = time.perf_counter() - start
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    return reports, seconds, rss_mb, counters.snapshot()


@pytest.mark.perf_smoke
def test_ace_kernel_speedup(capsys):
    """Batched kernel >= 5x (3x quick) over the object reference loop."""
    obj_reports, obj_s, _, obj_perf = _step_loop("object", batched=False)
    ref_reports, ref_s, _, ref_perf = _step_loop("array", batched=False)
    kern_reports, kern_s, rss_mb, kern_perf = _step_loop(
        "array", batched=True
    )

    # Identity is part of the gate: the three arms must disagree on
    # nothing but wall-clock.
    assert kern_reports == obj_reports
    assert kern_reports == ref_reports
    assert kern_perf["ace_batched_steps"] == STEPS
    assert ref_perf["ace_batched_steps"] == 0
    assert obj_perf["ace_batched_steps"] == 0

    speedup = obj_s / kern_s if kern_s > 0 else float("inf")
    vs_scalar = ref_s / kern_s if kern_s > 0 else float("inf")
    report(capsys, "\n".join([
        f"Batched ACE kernel ({PEERS:,} peers, {NODES:,} underlay nodes, "
        f"{ORACLE}, {STEPS} ACE steps{', quick' if QUICK else ''}):",
        f"  object reference loop: {obj_s:.1f}s "
        f"({STEPS * PEERS / obj_s:,.0f} peer-rounds/s)",
        f"  array scalar loop:     {ref_s:.1f}s "
        f"({STEPS * PEERS / ref_s:,.0f} peer-rounds/s)",
        f"  array batched kernel:  {kern_s:.1f}s "
        f"({STEPS * PEERS / kern_s:,.0f} peer-rounds/s), "
        f"peak RSS {rss_mb:.0f} MB",
        f"  speedup vs object: {speedup:.1f}x (bar: {SPEEDUP_BAR:g}x); "
        f"vs array scalar: {vs_scalar:.1f}x",
        "  ace kernel: {ace_batched_steps} batched steps, "
        "{closure_batch_peers} closures batch-extracted, "
        "{closure_reuses} closure reuses".format(**kern_perf),
    ]))

    record_trajectory(
        "bench_ace_kernel",
        path=ACE_TRAJECTORY_PATH,
        mode="quick" if QUICK else "full",
        peers=PEERS,
        underlay_nodes=NODES,
        oracle=ORACLE,
        steps=STEPS,
        object_seconds=round(obj_s, 2),
        array_scalar_seconds=round(ref_s, 2),
        batched_seconds=round(kern_s, 2),
        speedup_vs_object=round(speedup, 2),
        speedup_vs_array_scalar=round(vs_scalar, 2),
        speedup_bar=SPEEDUP_BAR,
        batched_peer_rounds_per_second=round(STEPS * PEERS / kern_s, 1),
        peak_rss_mb=round(rss_mb, 1),
        ace_batched_steps=kern_perf["ace_batched_steps"],
        closure_batch_peers=kern_perf["closure_batch_peers"],
        closure_reuses=kern_perf["closure_reuses"],
    )
    assert speedup >= SPEEDUP_BAR


@pytest.mark.skipif(
    not os.environ.get("REPRO_SOA_SCALE"),
    reason="100k-peer demonstration is opt-in: set REPRO_SOA_SCALE",
)
def test_ace_kernel_100k_dynamic_churn(capsys):
    """The headline: 100k peers under churn, kernel + vectorized driver."""
    counters.reset()
    config = ScenarioConfig(
        physical_nodes=SCALE_NODES,
        peers=SCALE_PEERS,
        avg_degree=AVG_DEGREE,
        seed=SEED,
        oracle=ORACLE,
        engine="array",
    )
    start = time.perf_counter()
    scenario = build_scenario(config)
    build_s = time.perf_counter() - start
    # 600 Poisson queries over 100k peers at the paper's per-peer rate span
    # ~1.2 s of simulated time, so the churn and optimization timescales are
    # compressed to match: session lifetimes short enough for a few hundred
    # departures inside the window, ACE steps every 0.4 simulated seconds.
    dyn = DynamicConfig(
        total_queries=600,
        window=200,
        optimization_interval=0.4,
        churn=ChurnConfig(mean_lifetime=5.0, std_lifetime=2.5),
    )
    start = time.perf_counter()
    series = run_dynamic_experiment(scenario, dyn)
    run_s = time.perf_counter() - start
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    perf = counters.snapshot()

    assert series.departures > 0
    assert perf["ace_batched_steps"] > 0
    assert perf["churn_batch_mutations"] > 0

    report(capsys, "\n".join([
        f"100k-peer dynamic churn ({SCALE_PEERS:,} peers, "
        f"{SCALE_NODES:,} underlay nodes, {ORACLE}):",
        f"  build {build_s:.1f}s, run {run_s:.1f}s, peak RSS {rss_mb:.0f} MB",
        f"  {series.total_queries} queries, {series.departures} departures, "
        f"mean traffic/query {series.mean_traffic:,.0f}",
        "  ace kernel: {ace_batched_steps} batched steps, "
        "{closure_batch_peers} closures batch-extracted, "
        "{churn_batch_mutations} churn mutations batched".format(**perf),
    ]))

    record_trajectory(
        "bench_ace_kernel_100k_churn",
        path=ACE_TRAJECTORY_PATH,
        peers=SCALE_PEERS,
        underlay_nodes=SCALE_NODES,
        oracle=ORACLE,
        total_queries=series.total_queries,
        departures=series.departures,
        build_seconds=round(build_s, 2),
        run_seconds=round(run_s, 2),
        peak_rss_mb=round(rss_mb, 1),
        traffic_points=[round(t, 3) for t in series.traffic_points],
        mean_traffic=round(series.mean_traffic, 3),
        total_overhead=round(series.total_overhead, 3),
        ace_batched_steps=perf["ace_batched_steps"],
        closure_batch_peers=perf["closure_batch_peers"],
        churn_batch_mutations=perf["churn_batch_mutations"],
    )
