"""Section 5.2 (text): ACE combined with response index caching.

Paper: "using a 100-item size cache at each peer, ACE with index cache will
reduce 75% of the traffic cost and 70% of the response time" relative to the
Gnutella-like baseline.  Our laptop-scale networks and Zipf mix land lower
but the ordering gnutella > ACE > ACE+cache must hold on both metrics.
"""

from conftest import dynamic_arms, report

from repro.experiments.reporting import format_table


def test_index_caching_claim(benchmark, capsys):
    arms = benchmark.pedantic(dynamic_arms, rounds=1, iterations=1)
    gnutella = arms["gnutella"]
    ace = arms["ace"]
    cached = arms["ace+cache"]

    def steady(points):
        half = max(1, len(points) // 2)
        tail = points[half:]
        return sum(tail) / len(tail)

    g_t, a_t, c_t = (
        steady(s.traffic_points) for s in (gnutella, ace, cached)
    )
    g_r, a_r, c_r = (
        steady(s.response_points) for s in (gnutella, ace, cached)
    )
    rows = [
        ["gnutella-like", round(g_t), 0.0, round(g_r), 0.0],
        ["ace", round(a_t), round(100 * (g_t - a_t) / g_t, 1),
         round(a_r), round(100 * (g_r - a_r) / g_r, 1)],
        ["ace + 100-item cache", round(c_t), round(100 * (g_t - c_t) / g_t, 1),
         round(c_r), round(100 * (g_r - c_r) / g_r, 1)],
    ]
    report(
        capsys,
        format_table(
            ["scheme", "traffic/query", "traffic red. %",
             "response", "response red. %"],
            rows,
            title=(
                "Section 5.2: index caching on top of ACE "
                "(paper: 75% traffic / 70% response reduction)"
            ),
        ),
    )

    assert c_t < g_t
    assert a_t < g_t
    assert c_t <= a_t
    assert c_r <= a_r
