"""Section 2's claim: rival search optimizations remain mismatch-limited.

"The performance gains of both approaches [query routing heuristics and
index caching] are seriously limited by the topology mismatching problem."
This bench runs the related-work search schemes — k-walker random walks,
expanding-ring search and Hybrid Periodical Flooding — on the *same*
overlay before and after ACE, showing every scheme's traffic drops once the
mismatch is repaired: topology optimization composes with, rather than
substitutes for, smarter search.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.extensions.hpf import hpf_strategy
from repro.search.expanding_ring import expanding_ring_query
from repro.search.flooding import blind_flooding_strategy, propagate, run_query
from repro.search.random_walk import random_walk_query
from repro.search.tree_routing import ace_strategy

N_QUERIES = 12
STEPS = 8


def _measure_schemes(overlay, catalog, base_strategy, rng_seed):
    peers = overlay.peers()
    rng = np.random.default_rng(rng_seed)
    src_idx = rng.integers(0, len(peers), N_QUERIES)
    out = {"flooding": 0.0, "random walk": 0.0, "expanding ring": 0.0, "hpf": 0.0}
    for i, si in enumerate(src_idx):
        source = peers[int(si)]
        obj = catalog.sample_object(rng)
        holders = catalog.holders_of(obj)
        out["flooding"] += run_query(
            overlay, source, base_strategy, holders, ttl=None
        ).traffic_cost
        out["random walk"] += random_walk_query(
            overlay, source, holders, rng, walkers=4, max_hops=48
        ).traffic_cost
        out["expanding ring"] += expanding_ring_query(
            overlay, source, base_strategy, holders
        ).traffic_cost
        hpf = hpf_strategy(overlay, np.random.default_rng(1000 + i), fraction=0.5)
        out["hpf"] += propagate(overlay, source, hpf, ttl=None).traffic_cost
    return {k: v / N_QUERIES for k, v in out.items()}


def test_search_schemes_benefit_from_ace(benchmark, capsys):
    def run():
        scenario = build_scenario(BASE)
        before = _measure_schemes(
            scenario.overlay,
            scenario.catalog,
            blind_flooding_strategy(scenario.overlay),
            rng_seed=5,
        )
        protocol = AceProtocol(
            scenario.overlay, rng=np.random.default_rng(6)
        )
        protocol.run(STEPS)
        after = _measure_schemes(
            scenario.overlay,
            scenario.catalog,
            ace_strategy(protocol),
            rng_seed=5,
        )
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            scheme,
            round(before[scheme]),
            round(after[scheme]),
            round(100 * (before[scheme] - after[scheme]) / before[scheme], 1),
        ]
        for scheme in before
    ]
    report(
        capsys,
        format_table(
            ["search scheme", "mismatched overlay", "after ACE", "reduction %"],
            rows,
            title=(
                "Section 2 claim: every search scheme improves once the "
                "mismatch is repaired"
            ),
        ),
    )

    for scheme in before:
        assert after[scheme] < before[scheme], scheme
