"""Figure 10: average response time per query in a dynamic P2P environment.

Paper: "with reduction of the traffic, the queries' average response times
of ACE are also reduced in a dynamic environment."
"""

from conftest import dynamic_arms, report

from repro.experiments.reporting import format_series


def test_fig10_dynamic_response(benchmark, capsys):
    arms = benchmark.pedantic(dynamic_arms, rounds=1, iterations=1)
    n_windows = len(arms["gnutella"].response_points)
    window = arms["gnutella"].window
    table = format_series(
        f"queries (x{window})",
        list(range(1, n_windows + 1)),
        {
            name: [round(p) for p in series.response_points]
            for name, series in arms.items()
        },
        title="Figure 10: avg response time per query under churn",
    )
    report(capsys, table)

    gnutella = arms["gnutella"]
    ace = arms["ace"]
    half = max(1, n_windows // 2)
    g_steady = sum(gnutella.response_points[half:]) / len(
        gnutella.response_points[half:]
    )
    a_steady = sum(ace.response_points[half:]) / len(ace.response_points[half:])
    reduction = 100.0 * (g_steady - a_steady) / g_steady
    report(
        capsys,
        f"Figure 10 steady-state response reduction: {reduction:.1f}% "
        "(paper: ~35%)",
    )
    assert a_steady < g_steady
