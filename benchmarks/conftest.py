"""Shared state for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures and
prints it (via ``report()``, which bypasses pytest's capture so the series
land in ``bench_output.txt``).  Heavy simulations that feed several figures —
the static convergence runs (Figs 7-8), the dynamic arms (Figs 9-10) and the
depth sweep (Figs 11-16) — are computed once per session and cached here;
the *first* bench touching a cached artifact pays (and times) its cost.

Scale: defaults are laptop-sized (~160 peers on a ~1200-node underlay; the
paper uses 8000 peers on 20,000 nodes).  Set ``REPRO_SCALE`` (e.g. ``4``) to
grow toward paper scale.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.depth_sweep import DepthSweepConfig, run_depth_sweep
from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_trials
from repro.experiments.setup import ScenarioConfig, repro_workers
from repro.experiments.static_env import run_static_trials

#: Average-neighbor counts swept in Figures 7, 8, 11 and 12.
DEGREES = (4, 6, 8, 10)
#: Closure depths swept in Figures 11-16.
DEPTHS = (1, 2, 3, 4, 5, 6)

BASE = ScenarioConfig(physical_nodes=1200, peers=160, seed=42).scaled()
DYNAMIC_BASE = ScenarioConfig(
    physical_nodes=1200, peers=160, avg_degree=8, seed=42
).scaled()

_cache: Dict[str, object] = {}


def report(capsys, text: str) -> None:
    """Print a rendered table through pytest's capture."""
    with capsys.disabled():
        print()
        print(text)


#: Machine-readable performance trajectory appended to by the scale benches
#: (``bench_soa_engine`` and ``bench_paper_scale``).  One JSON list, one
#: entry per recorded run, committed alongside the narrative in
#: ``EXPERIMENTS.md`` so regressions show up as data, not anecdotes.
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_soa.json"

#: Trajectory for the batched ACE kernel benches (``bench_ace_kernel``):
#: same shape as ``BENCH_soa.json`` but tracking the Layer-7 step-loop gate
#: and the 100k-peer dynamic-churn demonstration.
ACE_TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_ace.json"

#: Trajectory for the live network runtime bench (``bench_live_net``):
#: wire-level first-response latency, throughput and bytes-on-wire for the
#: asyncio runtime under the realtime discipline.
NET_TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_net.json"


def record_trajectory(bench: str, path: Path = TRAJECTORY_PATH,
                      **fields: object) -> None:
    """Append one timestamped entry to a trajectory file (BENCH_soa by
    default; pass ``path=ACE_TRAJECTORY_PATH`` for the kernel benches)."""
    entries = []
    if path.exists():
        entries = json.loads(path.read_text(encoding="utf-8"))
    entries.append(
        {"bench": bench, "date": time.strftime("%Y-%m-%d"), **fields}
    )
    path.write_text(
        json.dumps(entries, indent=2) + "\n", encoding="utf-8"
    )


def static_series():
    """Figure 7/8 series: one static convergence run per average degree.

    The per-degree trials are independent, so they fan out over a process
    pool when ``REPRO_WORKERS`` > 1; the underlay is built once, exported to
    shared memory, and attached zero-copy by every worker (no regeneration,
    no topology pickling).
    """
    if "static" not in _cache:
        configs = [
            ScenarioConfig(
                physical_nodes=BASE.physical_nodes,
                peers=BASE.peers,
                avg_degree=float(degree),
                seed=BASE.seed,
            )
            for degree in DEGREES
        ]
        results = run_static_trials(
            configs, steps=10, query_samples=16, max_workers=repro_workers()
        )
        _cache["static"] = dict(zip(DEGREES, results))
    return _cache["static"]


def depth_sweep():
    """Figure 11-16 input: the (C, h) trade-off sweep."""
    if "sweep" not in _cache:
        _cache["sweep"] = run_depth_sweep(
            DepthSweepConfig(
                degrees=DEGREES,
                depths=DEPTHS,
                convergence_steps=8,
                query_samples=16,
                base=BASE,
            )
        )
    return _cache["sweep"]


def dynamic_arms():
    """Figure 9/10 arms: Gnutella-like, ACE, and ACE + index cache.

    The three arms are independent simulations, so they ride the same
    ``REPRO_WORKERS`` fan-out (and shared-memory underlay) as the static
    trials; results are byte-identical to running them serially.
    """
    if "dynamic" not in _cache:
        # Keep the query budget an exact multiple of the window so no
        # partial final window concentrates the amortized overhead.
        window = max(150, DYNAMIC_BASE.peers)
        total = 6 * window
        names_kwargs = (
            ("gnutella", dict(enable_ace=False)),
            ("ace", dict(enable_ace=True)),
            ("ace+cache", dict(enable_ace=True, enable_cache=True)),
        )
        results = run_dynamic_trials(
            [
                (DYNAMIC_BASE,
                 DynamicConfig(total_queries=total, window=window, **kwargs))
                for _, kwargs in names_kwargs
            ],
            max_workers=repro_workers(),
        )
        _cache["dynamic"] = {
            name: series for (name, _), series in zip(names_kwargs, results)
        }
    return _cache["dynamic"]
