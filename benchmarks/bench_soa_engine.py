"""Struct-of-arrays overlay engine vs. the object reference engine.

PR 6's acceptance gate (see the Layer-6 section of ``docs/PERFORMANCE.md``):
one full ACE convergence step plus query measurement on a 10,000-peer
overlay must run **>= 5x** faster through :class:`ArrayOverlay` + the flat
ACE store than through the dict/set object engine — with byte-identical
figures, which this bench asserts directly (same traffic-per-query floats
from both runs).

Both engines run on the same landmark delay oracle.  With the exact
backend the wall-clock of either engine is dominated by the *shared*
underlay Dijkstra floor (~70 of 83 seconds at this scale — see
``bench_hotpath_delay.py`` for that layer's own gate), which says nothing
about overlay-engine cost; the O(k)-lookup landmark backend isolates the
thing this bench gates: per-peer Python iteration vs. flat arrays.

Scale: 10,000 peers on a 20,000-node underlay — also the quick/CI
configuration (``REPRO_BENCH_QUICK=1`` trims query samples and softens the
bar to 3x; the headline claim is the 10k-peer engine ratio, so quick mode
keeps the peer count).  Set ``REPRO_SOA_SCALE=1`` to also run the
100,000-peer array-engine demonstration (object baseline skipped — that is
the point) and append its numbers to ``BENCH_soa.json``.

Every run appends a machine-readable entry to ``BENCH_soa.json`` at the
repo root (see ``EXPERIMENTS.md`` for the narrative trajectory).
"""

import os
import resource
import time

import pytest

from conftest import record_trajectory, report

from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.experiments.static_env import run_static_experiment
from repro.perf import counters

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") in ("1", "true")
PEERS = 10_000
NODES = 20_000
ORACLE = "landmark:16"
AVG_DEGREE = 6.0
SEED = 11
STEPS = 1
SAMPLES = 2 if QUICK else 4
SPEEDUP_BAR = 3.0 if QUICK else 5.0

SCALE_PEERS = 100_000
SCALE_NODES = 120_000


def _run(engine, peers=PEERS, nodes=NODES, samples=SAMPLES):
    """One seeded static experiment; returns (series, timings, rss, perf)."""
    counters.reset()
    config = ScenarioConfig(
        physical_nodes=nodes,
        peers=peers,
        avg_degree=AVG_DEGREE,
        seed=SEED,
        oracle=ORACLE,
        engine=engine,
    )
    start = time.perf_counter()
    scenario = build_scenario(config)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    series = run_static_experiment(scenario, steps=STEPS, query_samples=samples)
    run_seconds = time.perf_counter() - start
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    return series, build_seconds, run_seconds, rss_mb, counters.snapshot()


@pytest.mark.perf_smoke
def test_soa_engine_speedup(capsys):
    """Array engine >= 5x (3x quick) over the object engine, same figures."""
    arr, arr_build, arr_run, arr_rss, arr_perf = _run("array")
    obj, obj_build, obj_run, obj_rss, _ = _run("object")

    # Byte-identity is part of the gate: the engines must disagree on
    # nothing but wall-clock (pinned exhaustively by
    # tests/experiments/test_reproducibility.py at test scale).
    assert arr.traffic_per_query == obj.traffic_per_query

    speedup = obj_run / arr_run if arr_run > 0 else float("inf")
    report(capsys, "\n".join([
        f"Struct-of-arrays engine ({PEERS:,} peers, {NODES:,} underlay "
        f"nodes, {ORACLE}, {STEPS} ACE step"
        f"{', quick' if QUICK else ''}):",
        f"  object engine: build {obj_build:.1f}s, run {obj_run:.1f}s, "
        f"peak RSS {obj_rss:.0f} MB",
        f"  array engine:  build {arr_build:.1f}s, run {arr_run:.1f}s, "
        f"peak RSS {arr_rss:.0f} MB "
        f"({PEERS / arr_run:,.0f} peers optimized/s)",
        f"  speedup: {speedup:.1f}x (bar: {SPEEDUP_BAR:g}x)",
        "  array engine: {soa_compactions} compactions "
        "({soa_edit_buffer_flushes} with buffered edits), "
        "{array_state_syncs} state syncs".format(**arr_perf),
    ]))

    record_trajectory(
        "bench_soa_engine",
        mode="quick" if QUICK else "full",
        peers=PEERS,
        underlay_nodes=NODES,
        oracle=ORACLE,
        steps=STEPS,
        query_samples=SAMPLES,
        object_run_seconds=round(obj_run, 2),
        array_run_seconds=round(arr_run, 2),
        speedup=round(speedup, 2),
        speedup_bar=SPEEDUP_BAR,
        array_peers_per_second=round(PEERS / arr_run, 1),
        array_peak_rss_mb=round(arr_rss, 1),
        object_peak_rss_mb=round(obj_rss, 1),
        soa_compactions=arr_perf["soa_compactions"],
        soa_edit_buffer_flushes=arr_perf["soa_edit_buffer_flushes"],
        array_state_syncs=arr_perf["array_state_syncs"],
    )
    assert speedup >= SPEEDUP_BAR


@pytest.mark.skipif(
    not os.environ.get("REPRO_SOA_SCALE"),
    reason="100k-peer demonstration is opt-in: set REPRO_SOA_SCALE",
)
def test_soa_engine_100k_peers(capsys):
    """The headline: a 100,000-peer static experiment completes (array only)."""
    series, build_s, run_s, rss_mb, perf = _run(
        "array", peers=SCALE_PEERS, nodes=SCALE_NODES, samples=2
    )
    assert series.traffic_per_query[-1] > 0

    report(capsys, "\n".join([
        f"100k-peer demonstration ({SCALE_PEERS:,} peers, "
        f"{SCALE_NODES:,} underlay nodes, {ORACLE}, {STEPS} ACE step):",
        f"  build {build_s:.1f}s, run {run_s:.1f}s "
        f"({SCALE_PEERS / run_s:,.0f} peers optimized/s), "
        f"peak RSS {rss_mb:.0f} MB",
        f"  traffic/query {series.traffic_per_query[0]:,.0f} -> "
        f"{series.traffic_per_query[-1]:,.0f}",
        "  array engine: {soa_compactions} compactions "
        "({soa_edit_buffer_flushes} with buffered edits), "
        "{array_state_syncs} state syncs".format(**perf),
    ]))

    record_trajectory(
        "bench_soa_engine_100k",
        peers=SCALE_PEERS,
        underlay_nodes=SCALE_NODES,
        oracle=ORACLE,
        steps=STEPS,
        query_samples=2,
        build_seconds=round(build_s, 2),
        run_seconds=round(run_s, 2),
        peers_per_second=round(SCALE_PEERS / run_s, 1),
        peak_rss_mb=round(rss_mb, 1),
        traffic_per_query=[round(t, 3) for t in series.traffic_per_query],
        soa_compactions=perf["soa_compactions"],
        soa_edit_buffer_flushes=perf["soa_edit_buffer_flushes"],
        array_state_syncs=perf["array_state_syncs"],
    )
