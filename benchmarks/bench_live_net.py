"""Live network runtime: wire-level latency and throughput (PR 9).

The sim-vs-live convergence guarantee is pinned by ``tests/net`` under the
lockstep discipline; this bench measures what the lockstep tests cannot —
how the runtime behaves as a *network program*, under the ``realtime``
discipline where frames dispatch the moment they arrive.  For each
connection-count setting (the Fig-7 x-axis: average neighbors per peer) it
boots a full in-process fleet — seed node, ``Hello``/``Welcome``
registration, overlay bootstrap, live ACE rounds over
``CostProbe``/``CostTableMessage``/``ConnectRequest`` exchanges — then
drives a seeded Fig-7-style query workload through real sockets and
reports:

* per-query first-response latency over the wire (p50 / p99 of the
  wall-clock gap between ``Query`` send and the first ``QueryHit``),
* throughput (queries and frames per second of end-to-end wall time,
  registration and ACE rounds included), and
* bytes on the wire, split per query.

Quick/CI mode (``REPRO_BENCH_QUICK=1``) trims the fleet and workload.
Every run appends a machine-readable entry to ``BENCH_net.json`` at the
repo root (see ``EXPERIMENTS.md`` for the narrative trajectory).
"""

import os
import time

import numpy as np
import pytest

from conftest import NET_TRAJECTORY_PATH, record_trajectory, report

from repro.core.ace import AceConfig
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.net.launch import plan_queries, run_live
from repro.net.runtime import NetConfig

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") in ("1", "true")
PEERS = 8 if QUICK else 16
QUERIES = 8 if QUICK else 32
STEPS = 2
SEED = 7
#: Average-neighbor settings (the paper's connection-count axis).
DEGREES = (4.0, 6.0)


def _run_setting(degree):
    config = ScenarioConfig(
        physical_nodes=8 * PEERS,
        peers=PEERS,
        avg_degree=degree,
        seed=SEED,
    )
    scenario = build_scenario(config)
    plan = plan_queries(scenario, QUERIES)
    start = time.perf_counter()
    live = run_live(
        scenario,
        AceConfig(),
        steps=STEPS,
        plan=plan,
        net=NetConfig(discipline="realtime"),
    )
    wall = time.perf_counter() - start
    walls = [
        q["wall_first_response"]
        for q in live.queries
        if q.get("wall_first_response") is not None
    ]
    return {
        "degree": degree,
        "answered": len(walls),
        "hits": live.total_hits,
        "p50_ms": float(np.percentile(walls, 50)) * 1e3,
        "p99_ms": float(np.percentile(walls, 99)) * 1e3,
        "wall_seconds": wall,
        "qps": QUERIES / wall,
        "frames_per_second": live.messages_sent / wall,
        "bytes_on_wire": live.bytes_sent,
        "bytes_per_query": live.bytes_sent / QUERIES,
        "connections": live.connections,
        "clean": live.clean_shutdown,
        "dead": live.dead,
    }


@pytest.mark.perf_smoke
def test_live_net_latency_and_throughput(capsys):
    """Fleet boots, answers every query, and reports wire-level numbers."""
    rows = [_run_setting(degree) for degree in DEGREES]

    for row in rows:
        # The bench is also a smoke test: every setting must come up,
        # answer queries over real sockets, and shut down cleanly.
        assert row["clean"] and not row["dead"]
        assert row["answered"] > 0 and row["hits"] > 0
        assert row["bytes_on_wire"] > 0

    header = (
        f"Live network runtime ({PEERS} peers, {STEPS} ACE rounds, "
        f"{QUERIES} queries, realtime discipline"
        f"{', quick' if QUICK else ''}):"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"  C={row['degree']:g}: first-response p50 {row['p50_ms']:.2f} ms"
            f" / p99 {row['p99_ms']:.2f} ms, {row['qps']:.1f} queries/s, "
            f"{row['frames_per_second']:,.0f} frames/s, "
            f"{row['bytes_on_wire']:,} bytes on wire "
            f"({row['bytes_per_query']:,.0f}/query, "
            f"{row['connections']} connections)"
        )
    report(capsys, "\n".join(lines))

    record_trajectory(
        "bench_live_net",
        path=NET_TRAJECTORY_PATH,
        mode="quick" if QUICK else "full",
        peers=PEERS,
        steps=STEPS,
        queries=QUERIES,
        discipline="realtime",
        settings=[
            {
                "degree": row["degree"],
                "p50_ms": round(row["p50_ms"], 3),
                "p99_ms": round(row["p99_ms"], 3),
                "qps": round(row["qps"], 1),
                "frames_per_second": round(row["frames_per_second"], 0),
                "bytes_on_wire": row["bytes_on_wire"],
                "connections": row["connections"],
            }
            for row in rows
        ],
    )
