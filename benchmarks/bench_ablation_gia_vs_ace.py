"""Section 2's Gia comparison: a *different* matching problem.

"Gia introduced a topology adaptation algorithm to ensure that high
capacity nodes are indeed the ones with high degree ...  It addresses a
different matching problem in overlay networks, but does not address the
topology mismatching problem between the overlay and physical networks."

This bench runs Gia-style adaptation and ACE on copies of the same overlay
and reports both objectives: the capacity-degree correlation (Gia's) and
the average logical-link cost / query traffic (ACE's).  Each scheme should
win its own metric and barely move the other's.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.extensions.gia import GiaAdaptation, assign_capacities
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

STEPS = 6


def test_ablation_gia_vs_ace(benchmark, capsys):
    def run():
        scenario = build_scenario(BASE)
        capacities = assign_capacities(
            scenario.overlay.peers(), np.random.default_rng(23)
        )
        sources = scenario.overlay.peers()[:10]

        def snapshot(overlay, strategy, caps):
            gia_probe = GiaAdaptation(overlay, capacities=dict(caps),
                                      rng=np.random.default_rng(0))
            corr = gia_probe.capacity_degree_correlation()
            link_cost = overlay.total_edge_cost() / max(1, overlay.num_edges)
            traffic = sum(
                propagate(overlay, s, strategy, ttl=None).traffic_cost
                for s in sources if overlay.has_peer(s)
            ) / len(sources)
            return corr, link_cost, traffic

        base_overlay = scenario.overlay
        baseline = snapshot(
            base_overlay, blind_flooding_strategy(base_overlay), capacities
        )

        gia_overlay = scenario.fresh_overlay()
        gia = GiaAdaptation(
            gia_overlay, capacities=dict(capacities),
            rng=np.random.default_rng(24),
        )
        gia.run(STEPS)
        gia_snap = snapshot(
            gia_overlay, blind_flooding_strategy(gia_overlay), capacities
        )

        ace_overlay = scenario.fresh_overlay()
        protocol = AceProtocol(ace_overlay, rng=np.random.default_rng(24))
        protocol.run(STEPS)
        ace_snap = snapshot(ace_overlay, ace_strategy(protocol), capacities)
        return baseline, gia_snap, ace_snap

    baseline, gia_snap, ace_snap = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["unoptimized", round(baseline[0], 3), round(baseline[1]), round(baseline[2])],
        [f"gia ({STEPS} rounds)", round(gia_snap[0], 3), round(gia_snap[1]),
         round(gia_snap[2])],
        [f"ace ({STEPS} rounds)", round(ace_snap[0], 3), round(ace_snap[1]),
         round(ace_snap[2])],
    ]
    report(
        capsys,
        format_table(
            ["scheme", "capacity-degree corr", "avg link cost", "traffic/query"],
            rows,
            title=(
                "Section 2: Gia fixes capacity matching, ACE fixes topology "
                "mismatching — different problems"
            ),
        ),
    )

    # Gia wins its metric, barely touches the mismatch.
    assert gia_snap[0] > baseline[0] + 0.2
    assert gia_snap[1] > 0.85 * baseline[1]
    # ACE wins its metric (cheaper links, less traffic) and does not solve
    # Gia's (correlation stays near the baseline's).
    assert ace_snap[1] < baseline[1]
    assert ace_snap[2] < gia_snap[2]
    assert ace_snap[0] < gia_snap[0] - 0.2
