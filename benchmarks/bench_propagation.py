"""Batched multi-source propagation vs. the scalar reference engine.

PR 5's acceptance gate (see ``docs/PERFORMANCE.md``): on a warmed
blind-flooding overlay, compiling the strategy once and answering a batch
of query sources through the vectorized kernel
(:func:`repro.search.batch.propagate_many`) must be **>= 5x** faster than
looping the scalar heap engine — with bit-identical results, which this
bench spot-checks by materializing full ``QueryPropagation`` records from
the batch and comparing them (dataclass equality = exact float equality).

Scale: 2,000 peers on a 4,000-node underlay by default; set
``REPRO_BENCH_QUICK=1`` (the CI perf-smoke path) for a laptop-sized run
with a correspondingly softer 3x bar.
"""

import os
from time import perf_counter

import numpy as np

from conftest import report

from repro.perf import counters, reset_counters
from repro.search.batch import propagate_many
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.generators import barabasi_albert
from repro.topology.overlay import small_world_overlay

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") in ("1", "true")
UNDERLAY_NODES = 1000 if QUICK else 4000
PEERS = 500 if QUICK else 2000
N_SOURCES = 32 if QUICK else 64
SPEEDUP_BAR = 3.0 if QUICK else 5.0
EQUIVALENCE_SAMPLES = 6
SEED = 4242


def _warmed_world():
    rng = np.random.default_rng(SEED)
    physical = barabasi_albert(UNDERLAY_NODES, m=2, rng=rng)
    overlay = small_world_overlay(physical, PEERS, avg_degree=6, rng=rng)
    overlay.warm_edge_costs()
    return overlay


def test_batched_propagation_speedup(capsys):
    overlay = _warmed_world()
    strategy = blind_flooding_strategy(overlay)
    peers = overlay.peers()
    rng = np.random.default_rng(SEED + 1)
    sources = [peers[int(i)] for i in rng.integers(0, len(peers), N_SOURCES)]

    # Scalar reference: one heap simulation per source.
    reset_counters()
    start = perf_counter()
    scalar_props = [
        propagate(overlay, s, strategy, ttl=None) for s in sources
    ]
    scalar_time = perf_counter() - start

    # Batched kernel: compile once, all sources through one solve.  The
    # first call pays the compile; the second measures the warmed steady
    # state the experiment loops live in.
    reset_counters()
    compile_start = perf_counter()
    propagate_many(overlay, sources[:1], strategy, ttl=None)
    compile_time = perf_counter() - compile_start
    compiled = counters.compiled_strategies
    start = perf_counter()
    batch = propagate_many(overlay, sources, strategy, ttl=None)
    batched_time = perf_counter() - start

    # TTL=7 rides the gated kernel (unbounded labels + fringe repair).
    start = perf_counter()
    propagate_many(overlay, sources, strategy, ttl=7)
    gated_time = perf_counter() - start

    speedup = scalar_time / batched_time if batched_time > 0 else float("inf")
    report(capsys, "\n".join([
        f"Batched propagation ({PEERS} peers, {N_SOURCES} sources, warmed"
        f"{', quick' if QUICK else ''}):",
        f"  scalar engine:      {scalar_time:.3f}s "
        f"({N_SOURCES / scalar_time:,.0f} queries/s)",
        f"  compile (once):     {compile_time:.3f}s "
        f"({compiled} strategies compiled)",
        f"  batched ttl=None:   {batched_time:.3f}s "
        f"({N_SOURCES / batched_time:,.0f} queries/s)",
        f"  batched ttl=7:      {gated_time:.3f}s "
        f"({N_SOURCES / gated_time:,.0f} queries/s)",
        f"  speedup (ttl=None): {speedup:.1f}x (bar: {SPEEDUP_BAR:g}x)",
    ]))

    # Equivalence is part of the gate: same floats, same counts.
    for i in range(0, N_SOURCES, max(1, N_SOURCES // EQUIVALENCE_SAMPLES)):
        assert batch.result(i) == scalar_props[i]
    assert counters.batched_queries >= 2 * N_SOURCES
    assert speedup >= SPEEDUP_BAR
