"""Figure 7: traffic cost per query vs. ACE optimization steps (static).

Paper: "the traffic cost decreases when ACE is conducted multiple times,
where the search scope is all peers.  ACE may reduce traffic cost by around
50% and it converges in around 10 steps."  One curve per average neighbor
count C in {4, 6, 8, 10}; step 0 is blind flooding.
"""

from conftest import DEGREES, report, static_series

from repro.experiments.reporting import format_series


def test_fig07_traffic_vs_steps(benchmark, capsys):
    series = benchmark.pedantic(static_series, rounds=1, iterations=1)
    steps = series[DEGREES[0]].steps
    table = format_series(
        "step",
        steps,
        {
            f"C={c} traffic/query": [round(t) for t in series[c].traffic_per_query]
            for c in DEGREES
        },
        title="Figure 7: avg traffic cost per full-coverage query vs ACE steps",
    )
    report(capsys, table)
    summary = format_series(
        "C",
        list(DEGREES),
        {
            "traffic reduction %": [
                round(series[c].traffic_reduction_percent, 1) for c in DEGREES
            ]
        },
        title="Figure 7 summary (paper: ~50% reduction, more for denser overlays)",
    )
    report(capsys, summary)

    for c in DEGREES:
        s = series[c]
        # Converged traffic must sit well below the blind-flooding baseline
        # and the search scope must be retained at every step.
        assert s.traffic_per_query[-1] < s.traffic_per_query[0]
        assert all(x == s.search_scope[0] for x in s.search_scope)
    # Denser overlays benefit more (Figure 7/11 trend).
    assert (
        series[10].traffic_reduction_percent
        > series[4].traffic_reduction_percent
    )
