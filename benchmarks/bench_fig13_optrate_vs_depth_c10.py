"""Figure 13: optimization rate vs. closure depth h at C = 10.

Paper: "Based on this figure, we can determine, for a given value of R, the
minimal value of h to achieve performance gain in ACE ...  We can see that
for R = 1, the optimization rate is always less than 1."

Our cost model charges the full periodic cost-table gossip as overhead, so
the rate-crossing-1 frequency ratios land at larger R than the paper's
1.5-2 (see EXPERIMENTS.md); the claims' *shape* is asserted unchanged.
"""

from conftest import depth_sweep, report

from repro.experiments.opt_rate import REPRO_R_VALUES, rate_vs_depth
from repro.experiments.reporting import format_series

DEGREE = 10


def test_fig13_optrate_vs_depth_c10(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    series = rate_vs_depth(sweep, DEGREE, REPRO_R_VALUES)
    depths = [h for h, _ in series[REPRO_R_VALUES[0]]]
    table = format_series(
        "h",
        depths,
        {f"R={r:g}": [round(rate, 3) for _h, rate in series[r]] for r in REPRO_R_VALUES},
        title=f"Figure 13: optimization rate vs depth h (C={DEGREE})",
    )
    report(capsys, table)

    # Paper claim: at R = 1 ACE never pays off, at any depth.
    assert all(rate < 1.0 for _h, rate in series[1.0])
    # Rate is proportional to R: larger R strictly dominates.
    for (h_a, r_small), (h_b, r_big) in zip(
        series[REPRO_R_VALUES[0]], series[REPRO_R_VALUES[-1]]
    ):
        assert h_a == h_b
        assert r_big > r_small
    # Some swept R achieves gain (rate > 1) at some depth.
    assert any(
        rate > 1.0 for r in REPRO_R_VALUES for _h, rate in series[r]
    )
