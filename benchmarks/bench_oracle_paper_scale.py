"""Oracle back-ends at the paper's underlay size: Dijkstra work vs. accuracy.

Opt-in like :mod:`bench_paper_scale` (set ``REPRO_SCALE``): on the full
20,000-node underlay, warm the exact static working set — every logical
edge cost plus the delay vector of every peer host, the preparation
:func:`~repro.experiments.static_env.run_static_experiment` performs —
through each delay oracle, and compare the single-source Dijkstra bill.
The exact backend pays one solve per distinct peer host; the landmark
backend pays exactly *k* embedding solves and answers everything else with
vector arithmetic, so its bill must be at least 5x smaller at these sizes
(the gate asserted below).  Each landmark configuration also reports its
measured median relative error, which is the accuracy column of
``docs/ORACLES.md``.  Typical invocation::

    REPRO_SCALE=1 python -m pytest benchmarks/bench_oracle_paper_scale.py -q
"""

import dataclasses
import os

import pytest
from conftest import report

from repro.experiments.paper_scale import PAPER_PHYSICAL_NODES, paper_scenario
from repro.experiments.setup import build_scenario
from repro.perf import counters
from repro.rng import ensure_rng

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE"),
    reason="paper-scale oracle smoke is opt-in: set REPRO_SCALE to run it",
)

SMOKE_PEERS = 800
LANDMARK_SPECS = ("landmark:16", "landmark:32", "landmark:64")


def warm_working_set(spec: str):
    """Build the 20k-node scenario with *spec* and warm its static working set."""
    config = dataclasses.replace(
        paper_scenario(avg_degree=6.0, seed=0, peers=SMOKE_PEERS), oracle=spec
    )
    counters.reset()  # before build: the k embedding solves are part of the bill
    scenario = build_scenario(config)
    overlay = scenario.overlay
    overlay.warm_edge_costs()
    overlay.warm_sources(overlay.peers())
    snap = counters.snapshot()
    # A few live queries on top of the warmed set, as the experiment would do.
    rng = ensure_rng(scenario.rng)
    peers = overlay.peers()
    for _ in range(32):
        u = peers[int(rng.integers(len(peers)))]
        v = peers[int(rng.integers(len(peers)))]
        overlay.cost(u, v)
    return scenario, snap


def test_oracle_backends_paper_scale(benchmark, capsys):
    """Warm the static working set through every backend; gate the exact-work ratio."""

    def run_all():
        results = {}
        for spec in ("exact",) + LANDMARK_SPECS:
            scenario, snap = warm_working_set(spec)
            error = None
            if spec != "exact":
                error = scenario.overlay.oracle.validate_accuracy(samples=256)
            results[spec] = (snap, error)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    exact_sources = results["exact"][0]["dijkstra_sources"]
    assert exact_sources > 0
    lines = [
        f"oracle backends at paper scale ({PAPER_PHYSICAL_NODES} underlay "
        f"nodes, {SMOKE_PEERS} peers):",
        f"  exact: dijkstra {exact_sources} sources "
        f"(one per distinct peer host + edge-cost sweep)",
    ]
    for spec in LANDMARK_SPECS:
        snap, error = results[spec]
        sources = snap["dijkstra_sources"]
        # The tentpole's acceptance gate: >= 5x fewer exact solves.
        assert sources * 5 <= exact_sources, (spec, sources, exact_sources)
        assert snap["landmark_embed_sources"] == sources
        lines.append(
            f"  {spec}: dijkstra {sources} sources "
            f"({exact_sources / sources:.0f}x fewer), "
            f"{snap['oracle_estimates']} estimates, "
            f"median rel error {error:.3f}"
        )
    report(capsys, "\n".join(lines))
