"""Closing the paper's loop: adaptive depth selection from measured R.

Section 5.3: "if the frequency of the topology and cost changes and query
frequency can be measured so that R is determined, we should be able to
adjust the value of h to achieve optimal gain/penalty ratio".  This bench
feeds the measured Figure 11/12 sweep into a :class:`DepthAdvisor`, prints
its per-R recommendation, and runs the :class:`AdaptiveAceProtocol` under
two workload regimes — query-starved (ACE should park itself) and
query-heavy (ACE should run at the advisor's depth and cut traffic).
"""

import numpy as np
from conftest import BASE, depth_sweep, report

from repro.core.adaptive_depth import AdaptiveAceProtocol, DepthAdvisor
from repro.experiments.opt_rate import REPRO_R_VALUES
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

DEGREE = 8
STEPS = 6


def test_adaptive_depth(benchmark, capsys):
    def run():
        sweep = depth_sweep()
        advisor = DepthAdvisor(sweep.for_degree(DEGREE))
        recommendations = [
            (r, advisor.recommend(r), advisor.best_depth(r)[1])
            for r in REPRO_R_VALUES
        ]

        scenario = build_scenario(BASE)
        sources = scenario.overlay.peers()[:10]

        def traffic(overlay, strategy):
            return sum(
                propagate(overlay, s, strategy, ttl=None).traffic_cost
                for s in sources
            ) / len(sources)

        baseline = traffic(
            scenario.overlay, blind_flooding_strategy(scenario.overlay)
        )

        # Query-starved regime: churn dominates, R << 1.
        starved_overlay = scenario.fresh_overlay()
        starved = AdaptiveAceProtocol(
            starved_overlay, advisor, rng=np.random.default_rng(2)
        )
        for t in range(30):
            starved.estimator.observe_query(float(t), count=1)
            starved.estimator.observe_change(float(t), count=20)
        starved.run(STEPS)

        # Query-heavy regime: R large, optimization pays for itself.
        heavy_overlay = scenario.fresh_overlay()
        heavy = AdaptiveAceProtocol(
            heavy_overlay, advisor, rng=np.random.default_rng(2)
        )
        for t in range(30):
            heavy.estimator.observe_query(float(t), count=40)
            heavy.estimator.observe_change(float(t), count=1)
        heavy.run(STEPS)
        heavy_traffic = traffic(heavy_overlay, ace_strategy(heavy))
        return recommendations, baseline, starved, heavy, heavy_traffic

    recommendations, baseline, starved, heavy, heavy_traffic = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    report(
        capsys,
        format_table(
            ["R", "recommended h", "best rate"],
            [(f"{r:g}", h, round(rate, 3)) for r, h, rate in recommendations],
            title=f"Depth advisor recommendations from the measured sweep (C={DEGREE})",
        ),
    )
    report(
        capsys,
        format_table(
            ["regime", "parked steps", "depths used", "traffic/query"],
            [
                ["query-starved (R<<1)", starved.parked_steps,
                 str(starved.depth_history or "-"), round(baseline)],
                ["query-heavy (R>>1)", heavy.parked_steps,
                 str(heavy.depth_history), round(heavy_traffic)],
            ],
            title=(
                "Adaptive ACE under two regimes "
                f"(blind-flooding baseline {baseline:.0f})"
            ),
        ),
    )

    # Query-starved: the protocol must park itself every step.
    assert starved.parked_steps == STEPS
    assert starved.depth_history == []
    # Query-heavy: it runs and cuts traffic.
    assert heavy.parked_steps == 0
    assert len(heavy.depth_history) == STEPS
    assert heavy_traffic < baseline
