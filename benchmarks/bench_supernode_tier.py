"""Supernode-tier study: ACE on a KaZaA-like two-tier system.

Section 1 names both deployment styles — flooding "among peers (such as in
Gnutella) or among supernodes (such as in KaZaA)".  This bench builds the
two-tier configuration, shows that it already saves traffic versus flat
flooding over all peers (the backbone is 4x smaller), and that ACE on the
supernode backbone stacks a further reduction on top while covering the
same peer population.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.supernode import build_two_tier, two_tier_query

N_QUERIES = 10
STEPS = 6


def test_supernode_tier(benchmark, capsys):
    def run():
        scenario = build_scenario(BASE)
        physical = scenario.physical
        n_peers = scenario.config.peers
        rng = np.random.default_rng(17)

        # Flat Gnutella-like flooding over all peers.
        flat = scenario.overlay
        flat_sources = flat.peers()[:N_QUERIES]
        flat_traffic = sum(
            propagate(flat, s, blind_flooding_strategy(flat), ttl=None).traffic_cost
            for s in flat_sources
        ) / N_QUERIES

        # Two-tier KaZaA-like system on the same underlay and population.
        tt = build_two_tier(physical, n_peers, supernode_fraction=0.25, rng=rng)
        leaves = sorted(tt.leaf_parent)[:N_QUERIES]
        super_traffic = sum(
            two_tier_query(tt, s, holders=[]).traffic_cost for s in leaves
        ) / N_QUERIES

        protocol = AceProtocol(tt.backbone, rng=np.random.default_rng(18))
        protocol.run(STEPS)
        strategy = ace_strategy(protocol)
        ace_traffic = sum(
            two_tier_query(tt, s, holders=[], strategy=strategy).traffic_cost
            for s in leaves
        ) / N_QUERIES
        coverage = two_tier_query(tt, leaves[0], holders=[], strategy=strategy)
        return flat_traffic, super_traffic, ace_traffic, coverage, n_peers

    flat, supernode, ace, coverage, n_peers = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["flat blind flooding", round(flat), 0.0],
        ["supernode tier", round(supernode),
         round(100 * (flat - supernode) / flat, 1)],
        [f"supernode tier + ACE ({STEPS} steps)", round(ace),
         round(100 * (flat - ace) / flat, 1)],
    ]
    report(
        capsys,
        format_table(
            ["system", "traffic/query", "reduction vs flat %"],
            rows,
            title="KaZaA-like two-tier system (full peer coverage throughout)",
        ),
    )

    assert supernode < flat
    assert ace < supernode
    assert coverage.search_scope == n_peers
