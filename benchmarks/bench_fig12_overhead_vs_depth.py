"""Figure 12: overhead traffic vs. depth of neighbor closure.

Paper: "The overhead traffic increases as the depths of neighbor closure
increases, or as the average number of neighbors increases."  (In our
laptop-scale networks the closure saturates at the network size around
h = 3-4, so the curves flatten earlier than the paper's 8000-peer systems.)
"""

from conftest import DEGREES, DEPTHS, depth_sweep, report

from repro.experiments.reporting import format_series


def test_fig12_overhead_vs_depth(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    table = format_series(
        "h",
        list(DEPTHS),
        {
            f"C={c} overhead": [
                round(t.overhead_per_reconstruction)
                for t in sweep.for_degree(c)
            ]
            for c in DEGREES
        },
        title="Figure 12: overhead traffic per reconstruction round vs depth h",
    )
    report(capsys, table)

    for c in DEGREES:
        ts = sweep.for_degree(c)
        # Monotone growth from the shallowest to the deepest depth.
        assert ts[-1].overhead_per_reconstruction > ts[0].overhead_per_reconstruction
    # Denser overlays pay more overhead at every depth.
    for h_idx in range(len(DEPTHS)):
        low = sweep.for_degree(DEGREES[0])[h_idx].overhead_per_reconstruction
        high = sweep.for_degree(DEGREES[-1])[h_idx].overhead_per_reconstruction
        assert high > low
