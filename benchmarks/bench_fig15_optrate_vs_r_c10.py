"""Figure 15: optimization rate vs. frequency ratio R at C = 10.

Paper: "When the value R increases, the optimization rate significantly
increases.  A large value of R means that the query frequency is high and
the tree reconstruction frequency is low."
"""

from conftest import DEPTHS, depth_sweep, report

from repro.experiments.opt_rate import REPRO_R_VALUES, rate_vs_frequency_ratio
from repro.experiments.reporting import format_series

DEGREE = 10


def test_fig15_optrate_vs_r_c10(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    series = rate_vs_frequency_ratio(sweep, DEGREE, REPRO_R_VALUES, depths=DEPTHS)
    table = format_series(
        "R",
        [f"{r:g}" for r in REPRO_R_VALUES],
        {f"h={h}": [round(rate, 3) for _r, rate in series[h]] for h in DEPTHS},
        title=f"Figure 15: optimization rate vs frequency ratio R (C={DEGREE})",
    )
    report(capsys, table)

    for h in DEPTHS:
        rates = [rate for _r, rate in series[h]]
        # Strictly increasing in R (rate is linear in R).
        assert all(b > a for a, b in zip(rates, rates[1:]))
        # Not profitable at R = 1.
        assert rates[0] < 1.0
