"""Tables 1-2 / Figures 5-6: the six-peer walkthrough.

Regenerates the paper's worked example: query paths and per-hop costs for
overlay trees built in 1- and 2-neighbor closures, against blind flooding.
The paper's relations — duplicates 3 -> 1 -> 0 and strictly decreasing total
cost — are printed and asserted.
"""

from conftest import report

from repro.experiments.paper_example import run_walkthrough
from repro.experiments.reporting import format_table


def _render(walk):
    rows = [(frm, to, cost) for frm, to, cost in walk.rows()]
    table = format_table(
        ["from", "to", "cost"],
        rows,
        title=(
            f"{walk.scheme}: total={walk.total_cost:.0f} "
            f"messages={walk.messages} duplicates={walk.duplicate_messages}"
        ),
    )
    return table


def test_tables_1_and_2(benchmark, capsys):
    walks = benchmark.pedantic(
        lambda: {
            "blind": run_walkthrough(None),
            "h1": run_walkthrough(1),
            "h2": run_walkthrough(2),
        },
        rounds=1,
        iterations=1,
    )
    for walk in walks.values():
        report(capsys, _render(walk))

    blind, h1, h2 = walks["blind"], walks["h1"], walks["h2"]
    assert h2.total_cost < h1.total_cost < blind.total_cost
    assert blind.duplicate_messages > h1.duplicate_messages > h2.duplicate_messages
    assert h2.duplicate_messages == 0
    assert blind.reached == h1.reached == h2.reached
    summary = format_table(
        ["scheme", "total cost", "messages", "duplicates"],
        [
            (w.scheme, w.total_cost, w.messages, w.duplicate_messages)
            for w in walks.values()
        ],
        title="Tables 1-2 summary (paper: unnecessary messages 3 -> 1 -> 0)",
    )
    report(capsys, summary)
