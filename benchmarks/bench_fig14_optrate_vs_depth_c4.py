"""Figure 14: optimization rate vs. closure depth h at C = 4.

Paper: "for a large value of C, a small minimal value of h is needed to
achieve performance gain for a given value of R" — the sparse C = 4 overlay
needs deeper closures (or larger R) than C = 10 before ACE pays off.
"""

from conftest import depth_sweep, report

from repro.experiments.opt_rate import (
    REPRO_R_VALUES,
    minimal_depths_table,
    rate_vs_depth,
)
from repro.experiments.reporting import format_series, format_table

DEGREE = 4


def test_fig14_optrate_vs_depth_c4(benchmark, capsys):
    sweep = benchmark.pedantic(depth_sweep, rounds=1, iterations=1)
    series = rate_vs_depth(sweep, DEGREE, REPRO_R_VALUES)
    depths = [h for h, _ in series[REPRO_R_VALUES[0]]]
    table = format_series(
        "h",
        depths,
        {f"R={r:g}": [round(rate, 3) for _h, rate in series[r]] for r in REPRO_R_VALUES},
        title=f"Figure 14: optimization rate vs depth h (C={DEGREE})",
    )
    report(capsys, table)

    minima = minimal_depths_table(sweep, REPRO_R_VALUES)
    rows = [
        [f"R={r:g}"] + [minima[c].get(r) for c in sorted(minima)]
        for r in REPRO_R_VALUES
    ]
    report(
        capsys,
        format_table(
            ["", *(f"C={c} min h" for c in sorted(minima))],
            rows,
            title=(
                "Figures 13-14 minimal depth for gain "
                "(paper: smaller for larger C; none at R=1)"
            ),
        ),
    )

    # At R = 1 ACE never pays off at C = 4 either.
    assert all(rate < 1.0 for _h, rate in series[1.0])
    # Paper's cross-density claim: whenever both densities achieve gain at
    # some R, the denser overlay's minimal depth is not larger.
    for r in REPRO_R_VALUES:
        dense = minima[10][r]
        sparse = minima[4][r]
        if dense is not None and sparse is not None:
            assert dense <= sparse
