"""Hot-path micro-benchmark: cold vs. warmed vs. batched delay lookups.

Every paper metric reduces to underlay shortest-path delays, so this bench
measures the delay/cost pipeline directly (see ``docs/PERFORMANCE.md``):

* **cold lookups** — the seed code path: each distinct source faults a
  single-source Dijkstra through an LRU too small for the working set, so a
  repeated round-robin workload thrashes and recomputes endlessly;
* **warmed lookups** — the same workload after ``warm(sources)`` prefetched
  the working set with batched Dijkstra calls: pure dict hits;
* **query workload** — full ``propagate()`` floods on a cold vs. a warmed
  overlay, with queries/sec from the perf counters.

The acceptance bar for the batching/caching overhaul is a >= 5x speedup of
the repeated-lookup workload on a warmed engine; the bench asserts it.
"""

from time import perf_counter

import numpy as np
import pytest

from conftest import report

from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.perf import counters, reset_counters
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.generators import barabasi_albert

#: Distinct sources in the repeated-lookup workload (> the seed's 128 LRU).
N_SOURCES = 192
#: Round-robin passes over the source set.
ROUNDS = 3
UNDERLAY_NODES = 1200
SEED = 1234


def _fresh_underlay(cache_size: int = 128):
    rng = np.random.default_rng(SEED)
    return barabasi_albert(UNDERLAY_NODES, m=2, rng=rng, cache_size=cache_size)


def _lookup_workload(topo, sources, targets) -> float:
    start = perf_counter()
    for _ in range(ROUNDS):
        for s, t in zip(sources, targets):
            topo.delay(s, t)
    return perf_counter() - start


def test_hotpath_repeated_lookups_warmed_vs_cold(capsys):
    rng = np.random.default_rng(SEED + 1)
    sources = list(rng.choice(UNDERLAY_NODES, size=N_SOURCES, replace=False))
    targets = list(rng.integers(0, UNDERLAY_NODES, size=N_SOURCES))

    # Seed code path: working set larger than the LRU, no prefetch — the
    # round-robin sweep evicts every source before its next use.
    cold_topo = _fresh_underlay(cache_size=128)
    reset_counters()
    cold_time = _lookup_workload(cold_topo, sources, targets)
    cold_runs = counters.dijkstra_runs

    # Batched engine: one warm() call makes the whole set resident.
    warm_topo = _fresh_underlay(cache_size=128)
    reset_counters()
    warm_start = perf_counter()
    solved = warm_topo.warm(sources)
    warm_setup = perf_counter() - warm_start
    warm_batches = counters.dijkstra_runs
    warmed_time = _lookup_workload(warm_topo, sources, targets)
    warmed_runs = counters.dijkstra_runs - warm_batches

    lookups = ROUNDS * N_SOURCES
    speedup = cold_time / warmed_time if warmed_time > 0 else float("inf")
    report(capsys, "\n".join([
        "Hot-path delay lookups "
        f"({UNDERLAY_NODES}-node underlay, {N_SOURCES} sources x {ROUNDS} rounds):",
        f"  cold (seed path):   {cold_time:.3f}s "
        f"({lookups / cold_time:,.0f} lookups/s, {cold_runs} dijkstra runs)",
        f"  warm() prefetch:    {warm_setup:.3f}s "
        f"({solved} sources in {warm_batches} batched runs)",
        f"  warmed lookups:     {warmed_time:.4f}s "
        f"({lookups / warmed_time:,.0f} lookups/s, {warmed_runs} dijkstra runs)",
        f"  speedup (warmed vs cold): {speedup:,.0f}x",
    ]))

    assert warmed_runs == 0
    assert speedup >= 5.0


def test_hotpath_query_throughput_warmed_vs_cold(capsys):
    config = ScenarioConfig(physical_nodes=1200, peers=160, avg_degree=6, seed=SEED)

    def run_pass(overlay, sources) -> float:
        strategy = blind_flooding_strategy(overlay)
        start = perf_counter()
        for s in sources:
            propagate(overlay, s, strategy, ttl=None)
        return perf_counter() - start

    # Cold arm: fresh world, queries fault their costs on demand (seed path).
    cold = build_scenario(config)
    sources = cold.overlay.peers()[:32]
    reset_counters()
    cold_first = run_pass(cold.overlay, sources)
    cold_runs = counters.dijkstra_runs

    # Warmed arm: identical world, edge costs bulk-filled first.
    warm = build_scenario(config)
    reset_counters()
    warm_start = perf_counter()
    filled = warm.overlay.warm_edge_costs()
    warm_setup = perf_counter() - warm_start
    setup_runs = counters.dijkstra_runs
    warm_first = run_pass(warm.overlay, sources)
    warm_steady = run_pass(warm.overlay, sources)
    in_loop_runs = counters.dijkstra_runs - setup_runs
    qps = counters.queries_per_second

    first_speedup = cold_first / warm_first if warm_first > 0 else float("inf")
    report(capsys, "\n".join([
        f"Full query propagation ({config.peers} peers, {len(sources)} queries/pass):",
        f"  cold first pass:    {cold_first:.3f}s ({cold_runs} dijkstra runs)",
        f"  warm_edge_costs():  {warm_setup:.3f}s "
        f"({filled} edges in {setup_runs} batched runs)",
        f"  warmed first pass:  {warm_first:.3f}s (0 in-loop dijkstra runs)",
        f"  warmed steady pass: {warm_steady:.3f}s",
        f"  warmed queries/sec: {qps:,.0f}",
        f"  first-pass speedup: {first_speedup:.1f}x",
    ]))

    # Perf counters confirm the acceptance criterion: zero in-loop Dijkstra
    # runs during propagate() on a warmed static overlay.
    assert in_loop_runs == 0
    assert counters.queries == 2 * len(sources)
