"""Section 4.1 validation: generated topologies are power-law small worlds.

Paper: "Previous studies have shown that both large scale Internet physical
topologies and P2P overlay topologies follow small world and power law
properties" — the generators must reproduce that shape before any other
experiment is meaningful.
"""

import numpy as np
from conftest import BASE, report

from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.topology.properties import analyze
from repro.topology.trace import synthesize_gnutella_snapshot


def test_topology_properties(benchmark, capsys):
    def build_and_analyze():
        scenario = build_scenario(BASE)
        underlay = analyze(scenario.physical, samples=48)
        overlay = analyze(scenario.overlay, samples=96)
        snapshot = synthesize_gnutella_snapshot(
            scenario.physical,
            n_peers=BASE.peers,
            rng=np.random.default_rng(BASE.seed),
        )
        trace = analyze(snapshot, samples=96)
        return underlay, overlay, trace

    underlay, overlay, trace = benchmark.pedantic(
        build_and_analyze, rounds=1, iterations=1
    )
    rows = [
        ["BA underlay", underlay.num_nodes, round(underlay.average_degree, 2),
         round(underlay.power_law_alpha, 2), round(underlay.clustering, 3),
         round(underlay.path_length, 2), round(underlay.small_world_sigma, 2)],
        ["small-world overlay", overlay.num_nodes, round(overlay.average_degree, 2),
         round(overlay.power_law_alpha, 2), round(overlay.clustering, 3),
         round(overlay.path_length, 2), round(overlay.small_world_sigma, 2)],
        ["Clip2-style snapshot", trace.num_nodes, round(trace.average_degree, 2),
         round(trace.power_law_alpha, 2), round(trace.clustering, 3),
         round(trace.path_length, 2), round(trace.small_world_sigma, 2)],
    ]
    report(
        capsys,
        format_table(
            ["topology", "n", "<k>", "alpha", "C", "L", "sigma"],
            rows,
            title="Section 4.1: power-law / small-world validation",
        ),
    )

    # Power-law exponents in the measured Internet/Gnutella range.
    assert 1.5 < underlay.power_law_alpha < 4.0
    assert 1.5 < overlay.power_law_alpha < 4.0
    assert 1.5 < trace.power_law_alpha < 4.0
    # Small-world: short paths plus clustering well above random.
    assert overlay.clustering > 0.1
    assert overlay.small_world_sigma > 1.5
    assert underlay.small_world_sigma > 1.0
