"""Ablation: redundant-link shedding and the keep-both branch.

DESIGN.md calls out two behavioural choices in Phase 3: the Figure 4(c)
"keep both" addition and the redundant-link shedding that later resolves the
triangles it creates.  This bench compares four configurations on converged
traffic and final average degree — keep-both without shedding must show the
degree creep that motivates the shed rule.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceConfig, AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

CONFIGS = {
    "full ace": AceConfig(),
    "no shedding": AceConfig(shed_redundant=False),
    "no keep-both": AceConfig(allow_keep_both=False),
    "swap only": AceConfig(allow_keep_both=False, shed_redundant=False),
}
STEPS = 8


def test_ablation_shedding(benchmark, capsys):
    def run_all():
        scenario = build_scenario(BASE)
        peers = scenario.overlay.peers()
        src_rng = np.random.default_rng(1)
        sources = [peers[int(i)] for i in src_rng.integers(0, len(peers), 16)]

        def measure(ov, strategy):
            return sum(
                propagate(ov, s, strategy, ttl=None).traffic_cost
                for s in sources
            ) / len(sources)

        baseline = measure(
            scenario.overlay, blind_flooding_strategy(scenario.overlay)
        )
        initial_degree = scenario.overlay.average_degree()
        out = {}
        for name, config in CONFIGS.items():
            ov = scenario.fresh_overlay()
            protocol = AceProtocol(ov, config, rng=np.random.default_rng(5))
            protocol.run(STEPS)
            out[name] = (
                measure(ov, ace_strategy(protocol)),
                ov.average_degree(),
            )
        return baseline, initial_degree, out

    baseline, initial_degree, results = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    rows = [
        [
            name,
            round(traffic),
            round(100 * (baseline - traffic) / baseline, 1),
            round(degree, 2),
        ]
        for name, (traffic, degree) in results.items()
    ]
    report(
        capsys,
        format_table(
            ["config", "traffic/query", "reduction %", "final avg degree"],
            rows,
            title=(
                f"Ablation: shedding / keep-both after {STEPS} rounds "
                f"(initial degree {initial_degree:.2f}, "
                f"blind baseline {baseline:.0f})"
            ),
        ),
    )

    for traffic, _deg in results.values():
        assert traffic < baseline
    # Keep-both without shedding grows the degree; full ACE keeps it near
    # the initial connection budget.
    assert results["no shedding"][1] > initial_degree + 1.0
    assert abs(results["full ace"][1] - initial_degree) < 2.0
