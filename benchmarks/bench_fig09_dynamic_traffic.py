"""Figure 9: average traffic cost per query in a dynamic P2P environment.

Paper Section 5.2: mean peer lifetime 10 minutes, 0.3 queries per peer per
minute, ACE optimization twice per minute.  "ACE could significantly reduce
the traffic cost while retaining the same search scope" — the ACE curve
*includes* the protocol's own overhead traffic.
"""

from conftest import dynamic_arms, report

from repro.experiments.reporting import format_series


def test_fig09_dynamic_traffic(benchmark, capsys):
    arms = benchmark.pedantic(dynamic_arms, rounds=1, iterations=1)
    n_windows = len(arms["gnutella"].traffic_points)
    window = arms["gnutella"].window
    table = format_series(
        f"queries (x{window})",
        list(range(1, n_windows + 1)),
        {
            name: [round(p) for p in series.traffic_points]
            for name, series in arms.items()
        },
        title=(
            "Figure 9: avg traffic cost per query under churn "
            "(ACE curves include optimization overhead)"
        ),
    )
    report(capsys, table)

    gnutella = arms["gnutella"]
    ace = arms["ace"]
    half = n_windows // 2
    g_steady = sum(gnutella.traffic_points[half:]) / (n_windows - half)
    a_steady = sum(ace.traffic_points[half:]) / (n_windows - half)
    reduction = 100.0 * (g_steady - a_steady) / g_steady
    report(
        capsys,
        f"Figure 9 steady-state traffic reduction: {reduction:.1f}% "
        "(paper: ~50% for a Gnutella-like system)",
    )
    assert a_steady < g_steady
    # Search scope is retained (full coverage both arms).
    assert all(p > 0.9 for p in ace.success_points)
