"""Ablation: ACE vs. its AOTO precursor vs. simplified LTM.

The related-work positioning (paper Section 2): AOTO is "a preliminary
design of ACE"; LTM is the authors' alternative measurement-based scheme.
This bench runs all three on the same overlay and reports converged query
traffic against blind flooding.
"""

import numpy as np
from conftest import BASE, report

from repro.core.ace import AceProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import build_scenario
from repro.extensions.aoto import AotoProtocol
from repro.extensions.ltm import LtmProtocol
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

STEPS = 8


def measure(overlay, strategy, sources):
    return sum(
        propagate(overlay, s, strategy, ttl=None).traffic_cost for s in sources
    ) / len(sources)


def test_ablation_aoto_vs_ace(benchmark, capsys):
    def run_all():
        scenario = build_scenario(BASE)
        peers = scenario.overlay.peers()
        src_rng = np.random.default_rng(1)
        sources = [peers[int(i)] for i in src_rng.integers(0, len(peers), 16)]
        baseline = measure(
            scenario.overlay, blind_flooding_strategy(scenario.overlay), sources
        )
        results = {"blind flooding": baseline}

        for name, make in (
            ("ace", lambda ov: AceProtocol(ov, rng=np.random.default_rng(2))),
            ("aoto", lambda ov: AotoProtocol(ov, rng=np.random.default_rng(2))),
        ):
            ov = scenario.fresh_overlay()
            protocol = make(ov)
            protocol.run(STEPS)
            results[name] = measure(ov, ace_strategy(protocol), sources)

        ov = scenario.fresh_overlay()
        ltm = LtmProtocol(ov, rng=np.random.default_rng(2))
        ltm.run(STEPS)
        results["ltm"] = measure(ov, blind_flooding_strategy(ov), sources)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results["blind flooding"]
    rows = [
        [name, round(traffic), round(100 * (baseline - traffic) / baseline, 1)]
        for name, traffic in results.items()
    ]
    report(
        capsys,
        format_table(
            ["scheme", "traffic/query", "reduction %"],
            rows,
            title=f"Ablation: ACE vs AOTO vs LTM after {STEPS} rounds",
        ),
    )

    # All optimizers beat blind flooding.  Full ACE is at least as good as
    # its precursor (the keep-both/shed cycle buys little at laptop scale,
    # so allow a small tolerance).  LTM can show a larger raw reduction but
    # does it by *removing* connections — its final overlay is sparser,
    # which is exactly the autonomy trade-off the paper's Section 2 raises.
    assert results["ace"] < baseline
    assert results["aoto"] < baseline
    assert results["ltm"] < baseline
    assert results["ace"] <= results["aoto"] * 1.05
