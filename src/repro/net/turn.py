"""One peer's ACE optimization turn, executed over a live overlay view.

This module is the live runtime's counterpart of
:meth:`repro.core.ace.AceProtocol.optimize_peer` — the same Phases 1-3 in
the same order with the same float accounting, but running against a
*view* object whose reads and writes are live protocol exchanges
(:class:`repro.net.peer.TurnView`: cost probes, table fetches, connect
requests) instead of direct overlay access.

The decision code itself is not reimplemented: closures, Phase-1
accounting, the Prim MST and the Figure-4 replacement engine are the very
functions from :mod:`repro.core` — they are written against the duck-typed
overlay surface, so handing them a live view pins the float evaluation
order to the simulator's bit for bit.  Only the step-level sequencing
(shed, target truncation, report accumulation), which in the simulator
lives inside ``AceProtocol``, is mirrored here; it must evolve in lockstep
with ``repro.core.ace``.

Everything here is synchronous: the peer runs a turn in a worker thread
and bridges each view operation back into its event loop, so its socket
reader keeps serving other peers' probes mid-turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Sequence

import numpy as np

from ..core.ace import AceConfig
from ..core.closure import neighbor_closure
from ..core.cost_table import run_phase1
from ..core.policies import CandidatePolicy
from ..core.replacement import attempt_replacement
from ..core.spanning_tree import prim_mst_heap

__all__ = ["TurnOutcome", "execute_optimize_turn", "compute_phase2"]


@dataclass
class TurnOutcome:
    """What one optimization turn produced at one peer.

    ``report`` uses the field names of
    :class:`~repro.core.ace.StepReport`, so the seed can accumulate turn
    outcomes into a step report the simulator's equals float for float.
    """

    flooding: FrozenSet[int] = frozenset()
    known: FrozenSet[int] = frozenset()
    report: Dict[str, Any] = field(default_factory=dict)


def compute_phase2(view, peer: int, depth: int) -> TurnOutcome:
    """Phase 2 only: rebuild the peer's tree from live tables (no charges).

    The live twin of :meth:`~repro.core.ace.AceProtocol.recompute_tree`.
    """
    closure = neighbor_closure(view, peer, depth)
    tree = prim_mst_heap(closure.edges, peer)
    return TurnOutcome(
        flooding=frozenset(tree.tree_neighbors(peer)),
        known=frozenset(view.neighbors(peer)),
        report={},
    )


def _shed_redundant(
    view, peer: int, non_flooding: Sequence[int], config: AceConfig,
    shed_floor: int,
) -> List[int]:
    """Live mirror of ``AceProtocol._shed_redundant`` (same order, floats).

    ``shed_floor`` arrives from the seed's config: the simulator derives it
    from the bootstrap overlay's average degree at protocol construction,
    which no live peer can observe locally.
    """
    sheds: List[int] = []
    my_neighbors = view.neighbors(peer)
    d_peer = view.costs_from(
        peer, sorted(set(non_flooding) | set(my_neighbors))
    )
    ordered = sorted(non_flooding, key=lambda t: (-d_peer[t], t))
    for target in ordered:
        if len(sheds) >= config.max_sheds_per_step:
            break
        if not view.has_edge(peer, target):
            continue
        if (
            view.degree(peer) <= shed_floor
            or view.degree(target) <= shed_floor
        ):
            continue
        d_pt = d_peer[target]
        mutual = view.neighbors(peer) & view.neighbors(target)
        if not mutual:
            continue
        d_target = view.costs_from(target, sorted(mutual))
        for w in mutual:
            if d_peer[w] < d_pt and d_target[w] < d_pt:
                view.disconnect(peer, target)
                sheds.append(target)
                break
    return sheds


def execute_optimize_turn(
    view,
    peer: int,
    config: AceConfig,
    shed_floor: int,
    policy: CandidatePolicy,
    rng: np.random.Generator,
) -> TurnOutcome:
    """Phases 1-3 at one peer — ``AceProtocol.optimize_peer`` over a view.

    *rng* is the shared protocol stream, restored from the turn token; the
    caller serializes its advanced state back into the token afterwards.
    """
    # ``replacement_probe_costs`` stays a *list* of per-action floats: the
    # simulator folds every action's probe cost into one step-wide
    # accumulator left to right, and float addition is not associative —
    # pre-summing per turn would lose the last ulp.  The seed replays the
    # same global fold from these lists.
    report: Dict[str, Any] = {
        "peers_optimized": 1,
        "probe_overhead": 0.0,
        "exchange_overhead": 0.0,
        "replacement_probe_costs": [],
        "replacements": 0,
        "keep_both_adds": 0,
        "redundant_sheds": 0,
        "probes": 0,
    }

    closure = neighbor_closure(view, peer, config.depth)
    phase1 = run_phase1(
        view,
        closure,
        round_trip_factor=config.round_trip_factor,
        entry_cost_factor=config.entry_cost_factor,
    )
    tree = prim_mst_heap(closure.edges, peer)
    flooding = frozenset(tree.tree_neighbors(peer))
    known = frozenset(view.neighbors(peer))
    report["probe_overhead"] += phase1.probe_cost
    report["exchange_overhead"] += phase1.exchange_cost

    non_flooding = sorted(known - flooding)
    if config.shed_redundant:
        shed = _shed_redundant(view, peer, non_flooding, config, shed_floor)
        report["redundant_sheds"] += len(shed)
        if shed:
            non_flooding = [
                t for t in non_flooding if view.has_edge(peer, t)
            ]

    targets = policy.targets(view, peer, non_flooding, rng)
    if config.max_targets_per_step is not None:
        targets = targets[: config.max_targets_per_step]

    for target in targets:
        if not view.has_edge(peer, target):
            continue  # cut earlier in this same turn
        action = attempt_replacement(
            view,
            peer,
            target,
            policy,
            rng,
            max_probes=config.max_probes_per_target,
            round_trip_factor=config.round_trip_factor,
            max_degree=config.max_degree,
            min_degree=config.min_degree,
            allow_keep_both=config.allow_keep_both,
        )
        report["probes"] += action.probes
        report["replacement_probe_costs"].append(action.probe_cost)
        if action.kind == "replace":
            report["replacements"] += 1
        elif action.kind == "keep_both":
            report["keep_both_adds"] += 1

    # Mutations above changed the adjacency; report routing state from the
    # *pre-mutation* tree exactly like the simulator (its end-of-step
    # recompute pass refreshes every peer afterwards, and so does ours).
    return TurnOutcome(flooding=flooding, known=known, report=report)
