"""Seed node: bootstrap registry and ACE round orchestrator.

The seed is the live fleet's rendezvous point, modeled on the classic
bootstrap/tracker pattern: every peer dials it first, registers with a
``Hello`` and receives a ``Welcome`` carrying the membership roster, the
address book, its assigned bootstrap neighbors, its measured cost row and
the protocol configuration.  After bootstrap the seed turns into the ACE
round driver: one optimization *step* is a token-passing sweep —

1. shuffle the sorted live roster with the protocol RNG (the exact draw
   the simulator's ``AceProtocol.step`` makes),
2. hand each peer in turn an :class:`~repro.net.wire.OptimizeTurn` token
   carrying the serialized RNG state; the peer runs Phases 1-3 over live
   probe/table/connect exchanges, advances the stream, and returns the new
   state in its :class:`~repro.net.wire.TurnDone`,
3. after every turn, sweep the same order again with ``recompute`` tokens
   (the simulator's end-of-step Phase-2 refresh).

Because exactly one peer holds the token at a time, the fleet consumes
*one* RNG stream in the simulator's order, and turn-local float folds can
be replayed globally — which is what makes the live run's step reports
equal the simulator's float for float.

A peer that cannot be reached (killed mid-run) is marked dead: its turn is
skipped, later sweeps exclude it, and the step completes — degradation,
not deadlock.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.ace import AceConfig, StepReport
from .peer import LivePeer
from .runtime import DeliveryCoordinator, NetConfig, PeerUnreachable, TrafficLedger
from .wire import Envelope, Hello, OptimizeTurn, Shutdown, Welcome

__all__ = ["SEED_ID", "PeerRecord", "SeedNode"]

#: The seed's peer id — outside every valid overlay peer id.
SEED_ID = -1


class PeerRecord:
    """What the seed knows about one expected peer."""

    def __init__(
        self, peer: int, neighbors: Tuple[int, ...], cost_row: Dict[int, float]
    ) -> None:
        self.peer = peer
        self.neighbors = tuple(neighbors)
        self.cost_row = dict(cost_row)


class SeedNode(LivePeer):
    """Bootstrap registry + token-passing ACE round driver."""

    def __init__(
        self,
        net: NetConfig,
        coordinator: DeliveryCoordinator,
        ledger: TrafficLedger,
        ace_config: AceConfig,
        shed_floor: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(SEED_ID, net, coordinator, ledger)
        self.ace_config = ace_config
        self.shed_floor = shed_floor
        #: The protocol RNG — the single stream the whole fleet consumes.
        self.rng = rng
        self.roster: Dict[int, PeerRecord] = {}
        self.registered: Set[int] = set()
        self.step_reports: List[StepReport] = []
        #: Generous per-turn budget: one turn is many sequential RPCs.
        self.turn_timeout = net.rpc_timeout * 8

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def expect(self, record: PeerRecord, address: Tuple[str, int]) -> None:
        """Pre-register one expected peer (roster entry + address book)."""
        self.roster[record.peer] = record
        self.addresses[record.peer] = address

    def _config_payload(self) -> Dict[str, object]:
        payload = asdict(self.ace_config)
        if not isinstance(payload.get("policy"), str):
            raise ValueError(
                "live runs need a named policy (a policy instance cannot "
                "cross the wire)"
            )
        payload["shed_floor"] = self.shed_floor
        return payload

    async def on_hello(self, conn, hello: Hello, env: Envelope) -> None:
        record = self.roster.get(hello.peer)
        if record is None or env.rpc is None:
            return
        self.addresses[hello.peer] = (hello.host, hello.port)
        self.registered.add(hello.peer)
        welcome = Welcome(
            peer=hello.peer,
            members=tuple(sorted(self.roster)),
            addresses=dict(self.addresses),
            neighbors=record.neighbors,
            cost_row=record.cost_row,
            config=self._config_payload(),
        )
        await self._send_control(
            conn, welcome,
            Envelope(src=self.peer_id, dst=hello.peer, reply=env.rpc),
        )

    # ------------------------------------------------------------------
    # ACE rounds
    # ------------------------------------------------------------------

    def live_order(self) -> List[int]:
        """Sorted live roster — the simulator's ``overlay.peers()``."""
        return [p for p in sorted(self.roster) if p not in self.dead]

    async def run_step(self, step_index: int) -> StepReport:
        """One optimization step across the fleet (sim ``step()`` live)."""
        order = self.live_order()
        self.rng.shuffle(order)
        report = StepReport(step_index=step_index)
        for peer in order:
            if peer in self.dead:
                continue
            token = json.dumps(self.rng.bit_generator.state)
            try:
                done, _env = await self.rpc(
                    peer,
                    OptimizeTurn(
                        phase="optimize",
                        step_index=step_index,
                        rng_state=token,
                    ),
                    timeout=self.turn_timeout,
                    retries=0,  # a re-sent turn would mutate twice
                )
            except PeerUnreachable:
                continue
            if not done.ok:
                continue
            self.rng.bit_generator.state = json.loads(done.rng_state)
            self._accumulate(report, done.report)
        # End-of-step Phase-2 refresh, same order (the simulator's
        # recompute_tree sweep): routing catches up with the final topology.
        for peer in order:
            if peer in self.dead:
                continue
            try:
                await self.rpc(
                    peer,
                    OptimizeTurn(phase="recompute", step_index=step_index),
                    timeout=self.turn_timeout,
                    retries=0,
                )
            except PeerUnreachable:
                continue
        self.step_reports.append(report)
        return report

    @staticmethod
    def _accumulate(report: StepReport, turn: Dict[str, object]) -> None:
        """Fold one turn's outcome into the step report.

        Integer fields are order-insensitive; the float probe costs are
        folded term by term, left to right, replaying the simulator's
        single step-wide accumulator exactly.
        """
        report.peers_optimized += int(turn.get("peers_optimized", 0))
        report.probe_overhead += float(turn.get("probe_overhead", 0.0))
        report.exchange_overhead += float(turn.get("exchange_overhead", 0.0))
        for cost in turn.get("replacement_probe_costs", ()):
            report.replacement_probe_overhead += cost
        report.replacements += int(turn.get("replacements", 0))
        report.keep_both_adds += int(turn.get("keep_both_adds", 0))
        report.redundant_sheds += int(turn.get("redundant_sheds", 0))
        report.probes += int(turn.get("probes", 0))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def shutdown_all(self, reason: str = "done") -> None:
        """Tell every reachable peer to stop."""
        for peer in self.live_order():
            try:
                conn = await self.connect_to(peer)
                await self._send_control(
                    conn, Shutdown(reason=reason),
                    Envelope(src=self.peer_id, dst=peer),
                )
            except (PeerUnreachable, ConnectionError, OSError):
                continue
