"""A live ACE peer: one asyncio endpoint speaking the wire protocol.

Each :class:`LivePeer` owns

* a listening socket (``asyncio.start_server``) with one reader task per
  accepted connection,
* an outbound connection pool (dial on demand, retry with backoff, mark
  peers dead on failure),
* the servent logic of :class:`repro.sim.node.QueryNode` — GUID dedup,
  reverse-path QueryHits, flooding-set forwarding — executed on *logical*
  timestamps carried in the frame envelopes, and
* the ACE turn machinery: on an :class:`~repro.net.wire.OptimizeTurn`
  token it runs Phases 1-3 in a worker thread against a
  :class:`TurnView`, whose every read is a live protocol exchange
  (``CostProbe`` for costs, ``GetTable``/``CostTableMessage`` for remote
  tables, ``ConnectRequest``/``DisconnectNotice`` for mutations).

The peer knows only what the protocol lets it know: its own neighbor set,
its cost row (what its probes measure), and whatever tables its RPCs
fetch.  There is no back door to a shared overlay object — the
convergence with the simulator is earned over the wire.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.ace import AceConfig
from ..core.policies import make_policy
from ..perf import counters
from ..sim.messages import (
    ConnectRequest,
    CostProbe,
    CostProbeReply,
    CostTableMessage,
    DisconnectNotice,
    Message,
    Query,
    QueryHit,
)
from .runtime import DeliveryCoordinator, NetConfig, PeerUnreachable, TrafficLedger
from .turn import TurnOutcome, compute_phase2, execute_optimize_turn
from .wire import (
    ConnectAck,
    Envelope,
    FrameAssembler,
    GetTable,
    Hello,
    OptimizeTurn,
    Shutdown,
    TurnDone,
    Welcome,
    encode_frame,
)

__all__ = ["LivePeer", "TurnView"]

#: Data-plane descriptor types (scheduled by the delivery coordinator and
#: charged to the traffic ledger); everything else is control plane.
_DATA_TYPES = (Query, QueryHit)


class _Connection:
    """One open socket to a remote peer: writer plus its reader task."""

    def __init__(self, remote: int, reader, writer) -> None:
        self.remote = remote
        self.reader = reader
        self.writer = writer
        self.task: Optional[asyncio.Task] = None
        self.closed = False

    async def send(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionError(f"connection to {self.remote} is closed")
        self.writer.write(data)
        await self.writer.drain()

    def close(self) -> None:
        self.closed = True
        try:
            self.writer.close()
        except Exception:
            pass


class LivePeer:
    """One live endpoint running the ACE servent over real sockets."""

    def __init__(
        self,
        peer_id: int,
        net: NetConfig,
        coordinator: DeliveryCoordinator,
        ledger: TrafficLedger,
    ) -> None:
        self.peer_id = peer_id
        self.net = net
        self.coord = coordinator
        self.ledger = ledger

        self.host = net.host
        self.port = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: Dict[int, _Connection] = {}
        self._anon_tasks: Set[asyncio.Task] = set()

        # -- membership / topology knowledge ---------------------------
        self.members: List[int] = []
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self.assigned_neighbors: Tuple[int, ...] = ()
        self.neighbors: Set[int] = set()
        self.cost_row: Dict[int, float] = {}
        self.dead: Set[int] = set()

        # -- ACE state --------------------------------------------------
        self.ace_config = AceConfig()
        self.shed_floor = self.ace_config.min_degree
        self._policy = make_policy(self.ace_config.policy)
        self._flooding: Optional[frozenset] = None
        self._known: frozenset = frozenset()

        # -- servent telemetry (QueryNode's exact fields) ---------------
        self.holds: Set[object] = set()
        self.reverse_route: Dict[int, int] = {}
        self.seen_queries: Set[int] = set()
        self.first_arrival: Dict[int, float] = {}
        self.duplicates_by_guid: Dict[int, int] = {}
        self.responses: Dict[int, List[Tuple[float, int]]] = {}
        #: guid -> wall-clock time of the first QueryHit at the origin.
        self.first_hit_walltime: Dict[int, float] = {}
        self._query_start_wall: Dict[int, float] = {}

        # -- RPC plumbing -----------------------------------------------
        self._rpc_seq = 0
        self._rpc_waiters: Dict[int, asyncio.Future] = {}
        self.stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Open the listening socket (the OS picks the port)."""
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Orderly shutdown: close the server and every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns.values()):
            conn.close()
            if conn.task is not None:
                conn.task.cancel()
        self._conns.clear()
        for task in list(self._anon_tasks):
            task.cancel()
        self.stopped.set()

    def kill(self) -> None:
        """Simulated crash: drop everything immediately, no goodbyes."""
        if self._server is not None:
            self._server.close()
            self._server = None
        for conn in list(self._conns.values()):
            conn.close()
            if conn.task is not None:
                conn.task.cancel()
        self._conns.clear()
        for task in list(self._anon_tasks):
            task.cancel()
        self.stopped.set()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _accept(self, reader, writer) -> None:
        conn = _Connection(-1, reader, writer)
        conn.task = asyncio.get_running_loop().create_task(
            self._read_loop(conn)
        )

    async def connect_to(self, remote: int) -> _Connection:
        """Dial *remote*, retrying per config; registers the connection."""
        existing = self._conns.get(remote)
        if existing is not None and not existing.closed:
            return existing
        if remote in self.dead:
            raise PeerUnreachable(f"peer {remote} is marked dead")
        host, port = self.addresses[remote]
        last_error: Optional[Exception] = None
        for attempt in range(self.net.max_retries + 1):
            if attempt > 0:
                counters.net_retries += 1
                await asyncio.sleep(self.net.retry_delay * attempt)
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.net.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                continue
            conn = _Connection(remote, reader, writer)
            conn.task = asyncio.get_running_loop().create_task(
                self._read_loop(conn)
            )
            self._conns[remote] = conn
            counters.net_connections += 1
            await self._send_control(
                conn, Hello(peer=self.peer_id, host=self.host, port=self.port),
                Envelope(src=self.peer_id, dst=remote),
            )
            return conn
        self.dead.add(remote)
        raise PeerUnreachable(f"cannot reach peer {remote}: {last_error}")

    def _drop_conn(self, conn: _Connection) -> None:
        conn.close()
        if conn.remote >= 0 and self._conns.get(conn.remote) is conn:
            del self._conns[conn.remote]

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    async def _send_control(
        self, conn: _Connection, message: object, env: Envelope
    ) -> None:
        data = encode_frame(message, env)
        counters.net_messages_sent += 1
        counters.net_bytes_sent += len(data)
        await conn.send(data)

    async def send_data(self, dst: int, message: Message, ltime: float) -> bool:
        """Transmit a data descriptor (charged at send, like the simulator).

        Returns ``False`` when the destination is unreachable — the live
        analogue of the simulator refusing to send over a dead link.  The
        charge is only recorded for frames that actually left.
        """
        if dst in self.dead:
            return False
        seq = self.coord.next_seq()
        env = Envelope(src=self.peer_id, dst=dst, ltime=ltime, seq=seq)
        data = encode_frame(message, env)
        self.coord.will_send()
        try:
            conn = await self.connect_to(dst)
            await conn.send(data)
        except (ConnectionError, OSError, PeerUnreachable):
            self.coord.abort_send()
            self.dead.add(dst)
            return False
        counters.net_messages_sent += 1
        counters.net_bytes_sent += len(data)
        self.ledger.record(seq, message.kind, self.cost_row[dst], len(data))
        return True

    async def rpc(
        self,
        dst: int,
        message: object,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Tuple[object, Envelope]:
        """Control-plane request/response with timeout + retry.

        Retries reopen the connection (the remote may have restarted a
        socket) and are counted in ``net_retries``; exhausting them marks
        the peer dead and raises :class:`PeerUnreachable`.  Pass
        ``retries=0`` for non-idempotent requests (a re-sent optimization
        turn would mutate twice).
        """
        timeout = self.net.rpc_timeout if timeout is None else timeout
        retries = self.net.max_retries if retries is None else retries
        last_error: Optional[Exception] = None
        for attempt in range(retries + 1):
            if attempt > 0:
                counters.net_retries += 1
            self._rpc_seq += 1
            rpc_id = self._rpc_seq
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._rpc_waiters[rpc_id] = future
            env = Envelope(src=self.peer_id, dst=dst, rpc=rpc_id)
            try:
                conn = await self.connect_to(dst)
                await self._send_control(conn, message, env)
                return await asyncio.wait_for(future, timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                conn = self._conns.get(dst)
                if conn is not None:
                    self._drop_conn(conn)
                continue
            except PeerUnreachable as exc:
                last_error = exc
                break
            finally:
                self._rpc_waiters.pop(rpc_id, None)
        self.dead.add(dst)
        raise PeerUnreachable(f"rpc to peer {dst} failed: {last_error}")

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    async def _read_loop(self, conn: _Connection) -> None:
        assembler = FrameAssembler()
        try:
            while True:
                data = await conn.reader.read(65536)
                if not data:
                    break
                for message, env in assembler.feed(data):
                    await self._handle_frame(conn, message, env)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._drop_conn(conn)

    async def _handle_frame(
        self, conn: _Connection, message: object, env: Envelope
    ) -> None:
        if env.reply is not None:
            waiter = self._rpc_waiters.get(env.reply)
            if waiter is not None and not waiter.done():
                waiter.set_result((message, env))
            return
        if isinstance(message, Hello):
            conn.remote = message.peer
            self._conns.setdefault(message.peer, conn)
            await self.on_hello(conn, message, env)
            return
        if isinstance(message, _DATA_TYPES):
            self.coord.on_frame(
                env.ltime, env.seq, self._data_handler(message, env)
            )
            return
        if isinstance(message, Shutdown):
            self.stopped.set()
            return
        if isinstance(message, OptimizeTurn):
            # Served in a detached task so this reader keeps answering
            # probes from the peers the turn itself is querying.
            task = asyncio.get_running_loop().create_task(
                self._serve_turn(conn, message, env)
            )
            self._anon_tasks.add(task)
            task.add_done_callback(self._anon_tasks.discard)
            return
        result = self.handle_request(message, env)
        if result is not None and env.rpc is not None:
            reply, reply_ltime = result
            await self._send_control(
                conn, reply,
                Envelope(
                    src=self.peer_id, dst=env.src,
                    ltime=reply_ltime, reply=env.rpc,
                ),
            )

    async def on_hello(
        self, conn: _Connection, hello: Hello, env: Envelope
    ) -> None:
        """Hook for the seed subclass; plain peers just bind the id."""

    def handle_request(
        self, message: object, env: Envelope
    ) -> Optional[Tuple[object, float]]:
        """Answer one control-plane request.

        Returns ``(reply, reply_ltime)`` or ``None`` for no reply.  A
        probe reply's logical timestamp carries the link delay — the probe
        *measures* the configured underlay delay, as a timestamped ping
        would, and the prober reads it off the reply envelope.
        """
        if isinstance(message, CostProbe):
            return (
                CostProbeReply(sender=self.peer_id, target=self.peer_id),
                self.cost_row.get(env.src, 0.0),
            )
        if isinstance(message, GetTable):
            entries = tuple(
                (n, self.cost_row[n]) for n in sorted(self.neighbors)
            )
            return (
                CostTableMessage(sender=self.peer_id, entries=entries), 0.0
            )
        if isinstance(message, ConnectRequest):
            self.neighbors.add(env.src)
            return (ConnectAck(accepted=True), 0.0)
        if isinstance(message, DisconnectNotice):
            self.neighbors.discard(env.src)
            return (ConnectAck(accepted=True), 0.0)
        return None

    async def bootstrap_connect(self, other: int) -> bool:
        """Establish the overlay edge to *other* (bootstrap handshake)."""
        reply, _env = await self.rpc(
            other, ConnectRequest(sender=self.peer_id, target=other)
        )
        if not getattr(reply, "accepted", False):
            return False
        self.neighbors.add(other)
        return True

    # ------------------------------------------------------------------
    # Servent logic (QueryNode over the wire)
    # ------------------------------------------------------------------

    def flooding_neighbors(self) -> Set[int]:
        """Live mirror of ``AceProtocol.flooding_neighbors`` for this peer."""
        live = set(self.neighbors)
        if self._flooding is None:
            return live
        if not self._flooding <= live:
            return live
        return set(self._flooding) | (live - self._known)

    def _data_handler(self, message: Message, env: Envelope):
        async def handle() -> None:
            if isinstance(message, Query):
                await self._on_query(message, env)
            elif isinstance(message, QueryHit):
                await self._on_query_hit(message, env)
        return handle

    async def start_query(self, obj: object, ttl: Optional[int]) -> Query:
        """Originate a query (``QueryNode.start_query`` over sockets)."""
        effective_ttl = ttl if ttl is not None else 2**30
        query = Query(sender=self.peer_id, ttl=effective_ttl, object_id=obj)
        self.seen_queries.add(query.guid)
        self.first_arrival[query.guid] = 0.0
        self.responses[query.guid] = []
        self._query_start_wall[query.guid] = (
            asyncio.get_running_loop().time()
        )
        await self._forward(query, came_from=None, now=0.0)
        return query

    async def _forward(
        self, query: Query, came_from: Optional[int], now: float
    ) -> None:
        if query.ttl <= 0:
            return
        live = self.neighbors
        for nbr in sorted(self.flooding_neighbors()):
            if nbr == came_from or nbr == self.peer_id or nbr not in live:
                continue
            await self.send_data(
                nbr, query.forwarded_by(self.peer_id),
                ltime=now + self.cost_row[nbr],
            )

    async def _on_query(self, query: Query, env: Envelope) -> None:
        now, sender = env.ltime, env.src
        if query.guid in self.seen_queries:
            self.duplicates_by_guid[query.guid] = (
                self.duplicates_by_guid.get(query.guid, 0) + 1
            )
            return
        self.seen_queries.add(query.guid)
        self.first_arrival[query.guid] = now
        self.reverse_route[query.guid] = sender
        if query.object_id in self.holds:
            hit = QueryHit(
                sender=self.peer_id,
                guid=query.guid,
                ttl=query.hops + 1,
                object_id=query.object_id,
                responder=self.peer_id,
            )
            await self.send_data(
                sender, hit, ltime=now + self.cost_row[sender]
            )
        await self._forward(query, came_from=sender, now=now)

    async def _on_query_hit(self, hit: QueryHit, env: Envelope) -> None:
        now = env.ltime
        if hit.guid in self.responses:
            if not self.responses[hit.guid]:
                self.first_hit_walltime[hit.guid] = (
                    asyncio.get_running_loop().time()
                    - self._query_start_wall.get(hit.guid, 0.0)
                )
            self.responses[hit.guid].append((now, hit.responder))
            return
        back = self.reverse_route.get(hit.guid)
        if back is not None:
            await self.send_data(
                back, hit.forwarded_by(self.peer_id),
                ltime=now + self.cost_row[back],
            )

    # ------------------------------------------------------------------
    # ACE turn execution
    # ------------------------------------------------------------------

    def apply_welcome(self, welcome: Welcome) -> None:
        """Install the seed's registration response."""
        self.members = sorted(welcome.members)
        self.addresses.update(welcome.addresses)
        self.assigned_neighbors = tuple(welcome.neighbors)
        self.cost_row = dict(welcome.cost_row)
        cfg = dict(welcome.config)
        self.shed_floor = int(cfg.pop("shed_floor", self.ace_config.min_degree))
        if cfg:
            known_fields = {
                f.name for f in AceConfig.__dataclass_fields__.values()
            }
            self.ace_config = AceConfig(
                **{k: v for k, v in cfg.items() if k in known_fields}
            )
        self._policy = make_policy(self.ace_config.policy)

    async def _serve_turn(
        self, conn: _Connection, turn: OptimizeTurn, env: Envelope
    ) -> None:
        try:
            done = await self.run_turn(turn)
        except Exception as exc:  # degraded, not fatal: report and go on
            done = TurnDone(
                rng_state=turn.rng_state,
                report={"error": repr(exc)},
                ok=False,
            )
        if env.rpc is not None:
            try:
                await self._send_control(
                    conn, done,
                    Envelope(src=self.peer_id, dst=env.src, reply=env.rpc),
                )
            except (ConnectionError, OSError):
                pass

    async def run_turn(self, turn: OptimizeTurn) -> TurnDone:
        """Execute one ACE phase; decisions run in a worker thread."""
        loop = asyncio.get_running_loop()
        view = TurnView(self, loop)
        if turn.phase == "recompute":
            outcome = await loop.run_in_executor(
                None, compute_phase2, view, self.peer_id, self.ace_config.depth
            )
            self._flooding = outcome.flooding
            self._known = outcome.known
            return TurnDone(rng_state=turn.rng_state, report={}, ok=True)

        rng = _restore_rng(turn.rng_state)
        outcome = await loop.run_in_executor(
            None,
            execute_optimize_turn,
            view,
            self.peer_id,
            self.ace_config,
            self.shed_floor,
            self._policy,
            rng,
        )
        # Local adjacency changed during the turn; routing state stays the
        # pre-mutation tree until the seed's recompute pass, like the sim.
        self._flooding = outcome.flooding
        self._known = outcome.known
        return TurnDone(
            rng_state=_serialize_rng(rng), report=outcome.report, ok=True
        )


def _serialize_rng(rng: np.random.Generator) -> str:
    """JSON form of the generator's bit-generator state (the turn token)."""
    return json.dumps(rng.bit_generator.state)


def _restore_rng(state: str) -> np.random.Generator:
    """Rebuild the shared protocol Generator from a turn token."""
    payload = json.loads(state)
    bitgen_cls = getattr(np.random, payload["bit_generator"])
    bitgen = bitgen_cls()
    bitgen.state = payload
    return np.random.Generator(bitgen)


class TurnView:
    """The overlay surface ACE's decision code sees during a live turn.

    Reads and writes translate to live protocol exchanges, bridged from
    the turn's worker thread into the peer's event loop:

    * ``costs_from(self, ...)``  — ``CostProbe`` RPCs (cached per turn),
    * ``neighbors(other)`` / ``costs_from(other, ...)`` — ``GetTable``
      RPCs answered with ``CostTableMessage`` (cached per turn,
      invalidated when this peer mutates an edge at the remote end),
    * ``connect`` / ``disconnect`` — ``ConnectRequest`` /
      ``DisconnectNotice`` exchanges, acknowledged before returning.

    Correctness note: during a token-serialized turn only *this* peer
    mutates topology, and every mutation involves this peer as an
    endpoint.  Every remote-rooted cost the decision code consults is a
    cost to that remote's own neighbor, which its table carries — so the
    view can answer everything the simulator's omniscient overlay could,
    with identical floats, from protocol traffic alone.
    """

    def __init__(self, peer: LivePeer, loop: asyncio.AbstractEventLoop):
        self._peer = peer
        self._loop = loop
        self._tables: Dict[int, Dict[int, float]] = {}
        self._probed: Dict[int, float] = {}

    # -- thread -> loop bridge -----------------------------------------

    def _call(self, coro: Awaitable):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(self._peer.net.rpc_timeout * 4)

    # -- protocol reads -------------------------------------------------

    def _probe(self, target: int) -> float:
        cached = self._probed.get(target)
        if cached is None:
            reply, env = self._call(
                self._peer.rpc(target, CostProbe(
                    sender=self._peer.peer_id, target=target,
                ))
            )
            cached = env.ltime
            self._probed[target] = cached
        return cached

    def _table(self, member: int) -> Dict[int, float]:
        table = self._tables.get(member)
        if table is None:
            reply, _env = self._call(
                self._peer.rpc(member, GetTable(peer=member))
            )
            table = {p: c for p, c in reply.entries}
            self._tables[member] = table
        return table

    # -- Overlay surface ------------------------------------------------

    def peers(self) -> List[int]:
        return [p for p in self._peer.members if p not in self._peer.dead]

    def has_peer(self, peer: int) -> bool:
        return peer in self._peer.members and peer not in self._peer.dead

    def neighbors(self, peer: int) -> Set[int]:
        if peer == self._peer.peer_id:
            return set(self._peer.neighbors)
        return set(self._table(peer))

    def degree(self, peer: int) -> int:
        return len(self.neighbors(peer))

    def has_edge(self, u: int, v: int) -> bool:
        if u == self._peer.peer_id:
            return v in self._peer.neighbors
        if v == self._peer.peer_id:
            return u in self._peer.neighbors
        return v in self._table(u)

    def cost(self, u: int, v: int) -> float:
        return self.costs_from(u, [v])[v]

    def costs_from(self, u, targets) -> Dict[int, float]:
        # Insertion order follows *targets*, matching Overlay.costs_from —
        # downstream float sums iterate these dicts in insertion order.
        out: Dict[int, float] = {}
        if u == self._peer.peer_id:
            for t in targets:
                out[t] = self._probe(t)
            return out
        table = self._table(u)
        for t in targets:
            out[t] = table[t]
        return out

    def warm_edge_costs(self, chunk_size: int = 256) -> int:
        return 0  # live peers have no underlay cache to pre-fill

    def warm_sources(self, peers) -> int:
        return 0

    # -- protocol writes ------------------------------------------------

    def connect(self, u: int, v: int) -> bool:
        me = self._peer.peer_id
        if u != me and v != me:
            raise ValueError(f"peer {me} cannot connect {u}-{v} remotely")
        other = v if u == me else u
        if other in self._peer.neighbors:
            return False
        reply, _env = self._call(
            self._peer.rpc(other, ConnectRequest(sender=me, target=other))
        )
        if not getattr(reply, "accepted", False):
            return False
        self._peer.neighbors.add(other)
        self._tables.pop(other, None)  # its table gained this edge
        return True

    def disconnect(self, u: int, v: int) -> bool:
        me = self._peer.peer_id
        if u != me and v != me:
            raise ValueError(f"peer {me} cannot disconnect {u}-{v} remotely")
        other = v if u == me else u
        if other not in self._peer.neighbors:
            return False
        self._peer.neighbors.discard(other)
        self._tables.pop(other, None)  # its table lost this edge
        try:
            self._call(
                self._peer.rpc(
                    other, DisconnectNotice(sender=me, target=other)
                )
            )
        except PeerUnreachable:
            pass  # already gone; the link is down either way
        return True
