"""Wire codec: length-prefixed binary framing for every protocol message.

One frame on the wire is::

    +--------+---------+---------+------------------------+
    | length | version | type id |          body          |
    | !I     | !B      | !B      |  UTF-8 JSON, length B  |
    +--------+---------+---------+------------------------+

``length`` counts the body bytes only; ``version`` is the wire-protocol
version (:data:`WIRE_VERSION`); ``type id`` selects the message class from
the registry below.  The body is a JSON object ``{"env": {...}, "msg":
{...}}``: the :class:`Envelope` carries addressing and the *logical* clock
(see below), ``msg`` carries the dataclass fields of the descriptor.

Every ``repro.sim.messages`` descriptor round-trips **bit-exactly**: ints
and strings are JSON-native, and Python's ``json`` emits floats via
``repr``, which round-trips every finite IEEE-754 double — so the cost
floats in a :class:`~repro.sim.messages.CostTableMessage` survive the wire
unchanged, which is what lets the live runtime reproduce the simulator's
float-for-float accounting.

The envelope's ``ltime`` is the logical timestamp of the frame: the sum of
underlay link delays along the descriptor's path, exactly the simulator's
event-heap clock.  ``seq`` is the coordinator-issued global send sequence
number (see :mod:`repro.net.runtime`), and ``rpc``/``reply`` correlate
request/response exchanges on the control plane.

Control frames (type ids >= 64) exist only on the live network — the
bootstrap and orchestration vocabulary modeled on a gossip seed/peer
launcher.  They never appear in the simulator and carry no cost accounting.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, List, Optional, Tuple, Type

from ..sim.messages import (
    ConnectRequest,
    CostProbe,
    CostProbeReply,
    CostTableMessage,
    DisconnectNotice,
    Message,
    Ping,
    Pong,
    Query,
    QueryHit,
)

__all__ = [
    "WIRE_VERSION",
    "MAX_BODY_BYTES",
    "HEADER",
    "WireError",
    "UnknownMessageType",
    "TruncatedFrame",
    "VersionMismatch",
    "FrameTooLarge",
    "Envelope",
    "Hello",
    "Welcome",
    "GetPeers",
    "PeerSample",
    "GetTable",
    "ConnectAck",
    "OptimizeTurn",
    "TurnDone",
    "Shutdown",
    "type_id_of",
    "message_types",
    "encode_frame",
    "decode_frame",
    "FrameAssembler",
]

#: Current wire-protocol version, stamped into every frame header.
WIRE_VERSION = 1

#: Upper bound on a frame body; a header declaring more is rejected before
#: any allocation (a corrupt or hostile length prefix must not OOM a peer).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Frame header: (body length, version, type id), network byte order.
HEADER = struct.Struct("!IBB")


class WireError(Exception):
    """Base class for framing/codec failures."""


class UnknownMessageType(WireError):
    """The frame's type id is not in the registry."""


class TruncatedFrame(WireError):
    """The buffer ends before the frame does (header or body cut short)."""


class VersionMismatch(WireError):
    """The frame was encoded under a different wire-protocol version."""


class FrameTooLarge(WireError):
    """The header declares a body larger than :data:`MAX_BODY_BYTES`."""


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """Per-frame addressing and logical-clock metadata.

    ``ltime`` is the logical arrival time of the frame at ``dst`` — the
    simulator's event-heap timestamp, accumulated link delay by link delay
    as the descriptor travels.  ``seq`` is the global send sequence the
    delivery coordinator uses to reproduce the simulator's tie-break order
    for same-``ltime`` deliveries.  ``rpc`` marks a request awaiting a
    response; ``reply`` echoes the request's ``rpc`` id back.
    """

    src: int
    dst: int
    ltime: float = 0.0
    seq: int = 0
    rpc: Optional[int] = None
    reply: Optional[int] = None


# ----------------------------------------------------------------------
# Control frames (live network only, type ids >= 64)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """First frame on every connection: who is calling, and from where."""

    peer: int
    host: str = ""
    port: int = 0


@dataclass(frozen=True)
class Welcome:
    """Seed's registration response: membership, addresses, assignment.

    ``neighbors`` is the peer's assigned initial adjacency (scenario
    bootstrap) or empty (random bootstrap — the peer dials a sample).
    ``cost_row`` maps every member to the underlay delay from this peer;
    it is what the peer's latency model injects and what its cost probes
    answer from, reproducing the simulated delay matrix on a live socket.
    ``config`` carries the ACE parameters (including the shed floor the
    simulator derives from the bootstrap overlay's average degree).
    """

    peer: int = 0
    members: Tuple[int, ...] = ()
    addresses: Dict[int, Tuple[str, int]] = dataclasses.field(default_factory=dict)
    neighbors: Tuple[int, ...] = ()
    cost_row: Dict[int, float] = dataclasses.field(default_factory=dict)
    config: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class GetPeers:
    """Membership sample request (gossip-style peer discovery)."""

    count: int = 8


@dataclass(frozen=True)
class PeerSample:
    """Response to :class:`GetPeers`: a sample of member addresses."""

    addresses: Dict[int, Tuple[str, int]] = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class GetTable:
    """Ask a peer for its current neighbor cost table.

    Answered with a :class:`~repro.sim.messages.CostTableMessage` — the
    paper's added routing message type, live on the wire.
    """

    peer: int = 0


@dataclass(frozen=True)
class ConnectAck:
    """Acknowledges a ``ConnectRequest`` / ``DisconnectNotice``."""

    accepted: bool = True


@dataclass(frozen=True)
class OptimizeTurn:
    """Seed-issued token: run one ACE phase at the receiving peer.

    ``phase`` is ``"optimize"`` (Phases 1-3, mutating) or ``"recompute"``
    (Phase 2 only, the end-of-step tree rebuild).  ``rng_state`` is the
    JSON-serialized numpy bit-generator state threaded peer to peer, so the
    distributed round consumes the *same single RNG stream* as the
    simulator's sequential loop — the heart of the same-seed convergence
    guarantee.
    """

    phase: str = "optimize"
    step_index: int = 0
    rng_state: str = ""


@dataclass(frozen=True)
class TurnDone:
    """Turn response: the advanced RNG state plus the report deltas."""

    rng_state: str = ""
    report: Dict[str, Any] = dataclasses.field(default_factory=dict)
    ok: bool = True


@dataclass(frozen=True)
class Shutdown:
    """Seed's orderly-shutdown notice."""

    reason: str = "done"


# ----------------------------------------------------------------------
# Type registry
# ----------------------------------------------------------------------

#: Simulator descriptors (ids 1-9) — the vocabulary shared with
#: ``repro.sim`` — then live-only control frames (ids >= 64).
_REGISTRY: Tuple[Tuple[int, type], ...] = (
    (1, Ping),
    (2, Pong),
    (3, Query),
    (4, QueryHit),
    (5, CostProbe),
    (6, CostProbeReply),
    (7, CostTableMessage),
    (8, ConnectRequest),
    (9, DisconnectNotice),
    (64, Hello),
    (65, Welcome),
    (66, GetPeers),
    (67, PeerSample),
    (68, GetTable),
    (69, ConnectAck),
    (70, OptimizeTurn),
    (71, TurnDone),
    (72, Shutdown),
)

_TYPES: Dict[int, type] = {tid: cls for tid, cls in _REGISTRY}
_TYPE_IDS: Dict[type, int] = {cls: tid for tid, cls in _REGISTRY}

#: Field decoders: JSON collapses tuples to lists and coerces dict keys to
#: strings; these rebuild the exact Python shapes the frozen dataclasses
#: were constructed with, so ``decode(encode(m)) == m`` holds bit for bit.
_FIELD_DECODERS: Dict[type, Dict[str, Callable[[Any], Any]]] = {
    CostTableMessage: {
        "entries": lambda v: tuple((int(p), float(c)) for p, c in v),
    },
    Welcome: {
        "members": lambda v: tuple(int(p) for p in v),
        "addresses": lambda v: {
            int(p): (str(h), int(pt)) for p, (h, pt) in v.items()
        },
        "neighbors": lambda v: tuple(int(p) for p in v),
        "cost_row": lambda v: {int(p): float(c) for p, c in v.items()},
    },
    PeerSample: {
        "addresses": lambda v: {
            int(p): (str(h), int(pt)) for p, (h, pt) in v.items()
        },
    },
}


def type_id_of(message: object) -> int:
    """The registry id of *message*'s class (:class:`UnknownMessageType`)."""
    try:
        return _TYPE_IDS[type(message)]
    except KeyError:
        raise UnknownMessageType(
            f"{type(message).__name__} is not a registered wire type"
        ) from None


def message_types() -> Dict[int, type]:
    """Copy of the id -> class registry (for tests and documentation)."""
    return dict(_TYPES)


# ----------------------------------------------------------------------
# Encode / decode
# ----------------------------------------------------------------------


def encode_frame(message: object, env: Envelope) -> bytes:
    """Serialize one (message, envelope) pair into a complete frame."""
    tid = type_id_of(message)
    body_obj = {
        "env": dataclasses.asdict(env),
        "msg": dataclasses.asdict(message),  # type: ignore[call-overload]
    }
    body = json.dumps(body_obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_BODY_BYTES:
        raise FrameTooLarge(f"{len(body)}-byte body exceeds {MAX_BODY_BYTES}")
    return HEADER.pack(len(body), WIRE_VERSION, tid) + body


def decode_frame(buffer: bytes) -> Tuple[object, Envelope, int]:
    """Decode one frame from the head of *buffer*.

    Returns ``(message, envelope, bytes_consumed)``.  Raises
    :class:`TruncatedFrame` when the buffer holds less than one complete
    frame, :class:`VersionMismatch` / :class:`UnknownMessageType` /
    :class:`FrameTooLarge` on bad headers.
    """
    if len(buffer) < HEADER.size:
        raise TruncatedFrame(
            f"{len(buffer)} bytes is shorter than the {HEADER.size}-byte header"
        )
    length, version, tid = HEADER.unpack_from(buffer)
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"frame version {version}, this peer speaks {WIRE_VERSION}"
        )
    if length > MAX_BODY_BYTES:
        raise FrameTooLarge(f"declared {length}-byte body exceeds {MAX_BODY_BYTES}")
    cls = _TYPES.get(tid)
    if cls is None:
        raise UnknownMessageType(f"unknown wire type id {tid}")
    end = HEADER.size + length
    if len(buffer) < end:
        raise TruncatedFrame(
            f"body needs {length} bytes, only {len(buffer) - HEADER.size} present"
        )
    try:
        body_obj = json.loads(buffer[HEADER.size:end].decode("utf-8"))
        env_kwargs = body_obj["env"]
        msg_kwargs = body_obj["msg"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc
    decoders = _FIELD_DECODERS.get(cls, {})
    for name, fix in decoders.items():
        if name in msg_kwargs:
            msg_kwargs[name] = fix(msg_kwargs[name])
    env = Envelope(**env_kwargs)
    return cls(**msg_kwargs), env, end


class FrameAssembler:
    """Incremental frame reassembly over a byte stream.

    Feed it whatever the socket produced — single bytes, half frames,
    several frames at once — and it yields every complete ``(message,
    envelope)`` pair while buffering the remainder.  Header errors raise
    immediately (the stream is unrecoverable after a framing fault).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[object, Envelope]]:
        """Absorb *data*; return all frames completed by it, in order."""
        self._buffer.extend(data)
        out: List[Tuple[object, Envelope]] = []
        while True:
            try:
                message, env, consumed = decode_frame(bytes(self._buffer))
            except TruncatedFrame:
                break
            del self._buffer[:consumed]
            out.append((message, env))
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
