"""Launcher: in-process live fleets, the sim reference, and their diff.

:func:`run_live` boots N asyncio peers plus a seed node on localhost,
bootstraps the scenario's overlay over real sockets, runs ACE optimization
rounds as token-passing sweeps, then plays a query workload through the
live data plane.  :func:`run_sim_reference` produces the discrete-event
simulator's answer for the *same* seeded scenario, and
:func:`compare_runs` diffs the two — under the lockstep discipline the diff
must be empty (ACE-optimized adjacency, step overhead floats, per-query
traffic cost and logical response times all equal, bit for bit).

Layering: this module takes a pre-built scenario object (anything with
``overlay``, ``catalog``, ``config.seed`` and ``fresh_overlay()`` — in
practice :class:`repro.experiments.setup.Scenario`) instead of importing
the experiment layer; replint REP015 holds the runtime below it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ace import AceConfig, AceProtocol, StepReport
from ..perf import counters
from ..search.tree_routing import ace_strategy
from ..sim.node import run_message_level_query
from .peer import LivePeer
from .runtime import DeliveryCoordinator, NetConfig, TrafficLedger
from .seed import SEED_ID, PeerRecord, SeedNode
from .wire import Hello

__all__ = [
    "QueryPlan",
    "LiveRunResult",
    "SimReference",
    "plan_queries",
    "run_live",
    "run_sim_reference",
    "compare_runs",
]

#: Salt deriving the shared protocol-RNG seed from the scenario seed; both
#: the live seed node and the sim reference construct their stream from it,
#: which is what makes their decision sequences identical.
PROTOCOL_SEED_SALT = 0xACE

#: Salt for the query-plan stream (independent of every scenario stream).
PLAN_SEED_SALT = 0x51E5


@dataclass(frozen=True)
class QueryPlan:
    """One planned query: who asks, for what, who holds it."""

    source: int
    obj: int
    holders: Tuple[int, ...]


@dataclass
class SimReference:
    """The discrete-event simulator's answer for a scenario + plan."""

    adjacency: Dict[int, List[int]]
    step_reports: List[StepReport]
    queries: List[Dict[str, Any]]


@dataclass
class LiveRunResult:
    """Everything a live run produced, ready for comparison and reporting."""

    adjacency: Dict[int, List[int]]
    step_reports: List[StepReport]
    queries: List[Dict[str, Any]]
    clean_shutdown: bool = True
    dead: List[int] = field(default_factory=list)
    lost_frames: int = 0
    connections: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    retries: int = 0

    @property
    def total_hits(self) -> int:
        """Responses received across all queries (liveness signal)."""
        return sum(len(q.get("responders", ())) for q in self.queries)


def plan_queries(scenario, count: int) -> List[QueryPlan]:
    """Deterministic Fig-7-style workload shared by sim and live runs.

    Drawn from a stream salted off the scenario seed (not the scenario's
    own run stream, which the caller may have consumed already), so the
    same scenario always yields the same plan.
    """
    rng = np.random.default_rng(scenario.config.seed + PLAN_SEED_SALT)
    peers = scenario.overlay.peers()
    plan: List[QueryPlan] = []
    for _ in range(count):
        source = peers[int(rng.integers(0, len(peers)))]
        obj = scenario.catalog.sample_object(rng)
        holders = tuple(sorted(scenario.catalog.holders_of(obj)))
        plan.append(QueryPlan(source=source, obj=obj, holders=holders))
    return plan


def _shed_floor_of(overlay, config: AceConfig) -> int:
    """The simulator's shed floor, computed the way ``AceProtocol`` does."""
    if config.shed_degree_floor is not None:
        return max(config.min_degree, config.shed_degree_floor)
    avg = overlay.average_degree() if overlay.num_peers else 0.0
    return max(config.min_degree, int(round(avg)))


def run_sim_reference(
    scenario, ace_config: AceConfig, steps: int, plan: Sequence[QueryPlan]
) -> SimReference:
    """Run the same scenario through the discrete-event simulator."""
    overlay = scenario.fresh_overlay()
    protocol = AceProtocol(
        overlay,
        ace_config,
        rng=np.random.default_rng(scenario.config.seed + PROTOCOL_SEED_SALT),
    )
    reports = [protocol.step() for _ in range(steps)]
    strategy = ace_strategy(protocol)
    queries: List[Dict[str, Any]] = []
    for item in plan:
        res = run_message_level_query(
            overlay, item.source, strategy, holders=item.holders, obj=item.obj
        )
        queries.append(
            {
                "source": item.source,
                "query_messages": res.query_messages,
                "query_traffic": res.query_traffic,
                "hit_messages": res.hit_messages,
                "hit_traffic": res.hit_traffic,
                "duplicates": res.duplicates,
                "first_response_time": res.first_response_time,
                "responders": sorted(res.responders),
                "scope": res.search_scope,
            }
        )
    adjacency = {p: sorted(overlay.neighbors(p)) for p in overlay.peers()}
    return SimReference(
        adjacency=adjacency, step_reports=reports, queries=queries
    )


def run_live(
    scenario,
    ace_config: Optional[AceConfig] = None,
    steps: int = 2,
    plan: Optional[Sequence[QueryPlan]] = None,
    net: Optional[NetConfig] = None,
    kill_peer: Optional[int] = None,
    kill_after_query: int = 0,
    post_kill_steps: int = 0,
) -> LiveRunResult:
    """Run the scenario over live sockets; see the module docstring.

    With ``kill_peer`` set, that peer's sockets are torn down abruptly
    after query ``kill_after_query`` completes; the rest of the workload
    and ``post_kill_steps`` extra ACE steps then exercise the retry /
    timeout / dead-marking path — the run must complete, degraded.
    """
    ace_config = ace_config or AceConfig()
    net = net or NetConfig()
    if plan is None:
        plan = plan_queries(scenario, 8)
    return asyncio.run(
        _run_live_async(
            scenario, ace_config, steps, list(plan), net,
            kill_peer, kill_after_query, post_kill_steps,
        )
    )


async def _run_live_async(
    scenario,
    ace_config: AceConfig,
    steps: int,
    plan: List[QueryPlan],
    net: NetConfig,
    kill_peer: Optional[int],
    kill_after_query: int,
    post_kill_steps: int,
) -> LiveRunResult:
    start_connections = counters.net_connections
    start_messages = counters.net_messages_sent
    start_bytes = counters.net_bytes_sent
    start_retries = counters.net_retries

    overlay = scenario.overlay
    members = overlay.peers()
    coord = DeliveryCoordinator(net.discipline, net.latency_scale)
    ledger = TrafficLedger()
    shed_floor = _shed_floor_of(overlay, ace_config)
    seed = SeedNode(
        net, coord, ledger, ace_config, shed_floor,
        rng=np.random.default_rng(scenario.config.seed + PROTOCOL_SEED_SALT),
    )
    peers: Dict[int, LivePeer] = {
        p: LivePeer(p, net, coord, ledger) for p in members
    }

    clean = True
    try:
        # -- boot: sockets up, roster known to the seed -----------------
        await seed.start()
        for p in members:
            await peers[p].start()
        for p in members:
            others = [q for q in members if q != p]
            cost_row = overlay.costs_from(p, others)
            seed.expect(
                PeerRecord(
                    p,
                    neighbors=tuple(sorted(overlay.neighbors(p))),
                    cost_row=cost_row,
                ),
                (peers[p].host, peers[p].port),
            )

        # -- register: Hello -> Welcome over the wire -------------------
        for p in members:
            peer = peers[p]
            peer.addresses[SEED_ID] = (seed.host, seed.port)
            welcome, _env = await peer.rpc(
                SEED_ID,
                Hello(peer=p, host=peer.host, port=peer.port),
            )
            peer.apply_welcome(welcome)

        # -- build the overlay: lower endpoint dials ---------------------
        for p in members:
            for q in peers[p].assigned_neighbors:
                if p < q:
                    await peers[p].bootstrap_connect(q)

        # -- seed objects at their holders -------------------------------
        for item in plan:
            for h in item.holders:
                if h in peers:
                    peers[h].holds.add(item.obj)

        # -- ACE optimization rounds -------------------------------------
        step_reports = [await seed.run_step(i) for i in range(steps)]

        # -- query workload ----------------------------------------------
        killed = False
        queries: List[Dict[str, Any]] = []
        for qi, item in enumerate(plan):
            origin = peers[item.source]
            if killed and item.source == kill_peer:
                queries.append({"source": item.source, "skipped": True})
                continue
            mark = ledger.mark()
            coord.start_epoch()
            query = await origin.start_query(item.obj, ttl=None)
            drained = await coord.drain(net.drain_timeout)
            clean = clean and drained
            window = ledger.window(mark)
            guid = query.guid
            responses = origin.responses.get(guid, [])
            cost = TrafficLedger.cost_by_kind(window)
            count = TrafficLedger.count_by_kind(window)
            queries.append(
                {
                    "source": item.source,
                    "query_messages": count.get("query", 0),
                    "query_traffic": cost.get("query", 0.0),
                    "hit_messages": count.get("query_hit", 0),
                    "hit_traffic": cost.get("query_hit", 0.0),
                    "duplicates": sum(
                        n.duplicates_by_guid.get(guid, 0)
                        for n in peers.values()
                    ),
                    "first_response_time": min(
                        (t for t, _r in responses), default=None
                    ),
                    "responders": sorted({r for _t, r in responses}),
                    "scope": sum(
                        1 for n in peers.values() if guid in n.first_arrival
                    ),
                    "wall_first_response": origin.first_hit_walltime.get(guid),
                    "drained": drained,
                }
            )
            if (
                kill_peer is not None
                and not killed
                and qi == kill_after_query
            ):
                peers[kill_peer].kill()
                killed = True

        # -- post-kill rounds: exercise retry/dead-marking ---------------
        for i in range(post_kill_steps):
            step_reports.append(await seed.run_step(steps + i))

        adjacency = {
            p: sorted(peers[p].neighbors)
            for p in members
            if not killed or p != kill_peer
        }
        return LiveRunResult(
            adjacency=adjacency,
            step_reports=step_reports,
            queries=queries,
            clean_shutdown=clean,
            dead=sorted(seed.dead),
            lost_frames=coord.lost_frames,
            connections=counters.net_connections - start_connections,
            messages_sent=counters.net_messages_sent - start_messages,
            bytes_sent=counters.net_bytes_sent - start_bytes,
            retries=counters.net_retries - start_retries,
        )
    finally:
        try:
            await seed.shutdown_all()
        except Exception:
            pass
        for peer in peers.values():
            await peer.stop()
        await seed.stop()


def compare_runs(
    live: LiveRunResult, ref: SimReference, check_queries: bool = True
) -> List[str]:
    """Diff a live run against the sim reference; empty list == converged.

    Comparisons are exact (``==`` on floats): under the lockstep
    discipline the live run replays the simulator's event order with its
    decision stream, so every compared number must be bit-identical.
    """
    problems: List[str] = []
    if live.adjacency != ref.adjacency:
        for p in sorted(set(live.adjacency) | set(ref.adjacency)):
            lv = live.adjacency.get(p)
            rv = ref.adjacency.get(p)
            if lv != rv:
                problems.append(f"adjacency[{p}]: live={lv} sim={rv}")
    if len(live.step_reports) != len(ref.step_reports):
        problems.append(
            f"step count: live={len(live.step_reports)} "
            f"sim={len(ref.step_reports)}"
        )
    for ls, rs in zip(live.step_reports, ref.step_reports):
        for name in (
            "peers_optimized",
            "probe_overhead",
            "exchange_overhead",
            "replacement_probe_overhead",
            "replacements",
            "keep_both_adds",
            "redundant_sheds",
            "probes",
        ):
            lv, rv = getattr(ls, name), getattr(rs, name)
            if lv != rv:
                problems.append(
                    f"step[{ls.step_index}].{name}: live={lv!r} sim={rv!r}"
                )
    if not check_queries:
        return problems
    if len(live.queries) != len(ref.queries):
        problems.append(
            f"query count: live={len(live.queries)} sim={len(ref.queries)}"
        )
    for i, (lq, rq) in enumerate(zip(live.queries, ref.queries)):
        for name in (
            "query_messages",
            "query_traffic",
            "hit_messages",
            "hit_traffic",
            "duplicates",
            "first_response_time",
            "responders",
            "scope",
        ):
            lv, rv = lq.get(name), rq.get(name)
            if lv != rv:
                problems.append(f"query[{i}].{name}: live={lv!r} sim={rv!r}")
    return problems
