"""Asyncio runtime plumbing: delivery disciplines, latency, accounting.

The live network must *be* a real network (sockets, reader tasks, frames)
while still being able to reproduce the simulator's results exactly.  The
pieces here make that possible:

:class:`DeliveryCoordinator`
    The data plane's delivery scheduler, in one of two disciplines.

    * ``"lockstep"`` replays the simulator's event heap on a live network.
      Every data frame (Query/QueryHit) gets a global send sequence number
      at *send* time — the exact counter the simulator's
      :class:`~repro.sim.engine.EventLoop` uses to break same-timestamp
      ties — and carries its logical arrival time ``ltime``.  Frames still
      genuinely cross sockets and the codec; the coordinator merely holds
      each received frame until the wire is quiescent and then runs
      handlers in ``(ltime, seq)`` order.  Deliveries therefore happen in
      *exactly* the simulator's order, including tie-breaks, which is what
      makes the sim-vs-live convergence check an equality, not a tolerance.
    * ``"realtime"`` delivers each data frame at the wall-clock deadline
      ``epoch + ltime * latency_scale`` — the artificial-latency injection
      that reproduces the simulated underlay's delay matrix in real time.
      ``latency_scale`` is seconds per cost unit; ``0`` delivers as fast as
      asyncio can schedule.

:class:`TrafficLedger`
    Cost/byte accounting, one entry per transmitted data frame, keyed by
    the send sequence.  Summing a kind's costs in sequence order replays
    the simulator's accumulation order — float addition is not
    associative, and the convergence check compares totals bit for bit.

:class:`NetConfig`
    All the runtime knobs in one bag (host, timeouts, retries, discipline).

Wall-clock reads (``loop.time``) live only in this package — replint
REP015 keeps them out of the simulation layers.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

__all__ = [
    "NetConfig",
    "PeerUnreachable",
    "TrafficLedger",
    "DeliveryCoordinator",
]

#: Delivery disciplines understood by the coordinator.
DISCIPLINES = ("lockstep", "realtime")


class PeerUnreachable(Exception):
    """A peer could not be reached after the configured retries."""


@dataclass(frozen=True)
class NetConfig:
    """Tunable parameters of the live runtime.

    ``latency_scale`` converts logical cost units to wall-clock seconds in
    the realtime discipline (lockstep ignores it — ordering is logical).
    Timeouts are deliberately short: the runtime targets in-process
    localhost fleets where a silent peer is dead, not slow.
    """

    host: str = "127.0.0.1"
    discipline: str = "lockstep"
    latency_scale: float = 0.0
    connect_timeout: float = 2.0
    rpc_timeout: float = 5.0
    drain_timeout: float = 10.0
    max_retries: int = 2
    retry_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown discipline {self.discipline!r}; "
                f"choose from {DISCIPLINES}"
            )
        if self.latency_scale < 0:
            raise ValueError("latency_scale must be non-negative")


@dataclass
class LedgerEntry:
    """One transmitted data frame: send order, kind, cost, wire bytes."""

    seq: int
    kind: str
    cost: float
    nbytes: int


class TrafficLedger:
    """Send-ordered accounting of data-plane traffic.

    The simulator charges each transmission the moment it is put on the
    wire, accumulating per-kind cost floats in global send order.  The
    ledger records the same information on the live network; summing a
    slice's entries sorted by ``seq`` reproduces the simulator's float
    accumulation order exactly.
    """

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []

    def record(self, seq: int, kind: str, cost: float, nbytes: int) -> None:
        """Account one transmission (called at successful send)."""
        self.entries.append(LedgerEntry(seq, kind, cost, nbytes))

    def mark(self) -> int:
        """Position marker delimiting a measurement window."""
        return len(self.entries)

    def window(self, start: int) -> List[LedgerEntry]:
        """Entries recorded since ``mark()``, in send (seq) order."""
        return sorted(self.entries[start:], key=lambda e: e.seq)

    @staticmethod
    def cost_by_kind(entries: List[LedgerEntry]) -> Dict[str, float]:
        """Per-kind cost totals, accumulated in send order."""
        out: Dict[str, float] = {}
        for e in sorted(entries, key=lambda x: x.seq):
            out[e.kind] = out.get(e.kind, 0.0) + e.cost
        return out

    @staticmethod
    def count_by_kind(entries: List[LedgerEntry]) -> Dict[str, int]:
        """Per-kind message counts."""
        out: Dict[str, int] = {}
        for e in entries:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


class DeliveryCoordinator:
    """Shared data-plane scheduler for an in-process peer fleet.

    Senders call :meth:`next_seq` / :meth:`will_send` before writing a
    data frame; reader tasks hand received frames to :meth:`on_frame`.
    The launcher then awaits :meth:`drain` to run one query to quiescence.

    In-flight counting is exact on the happy path (every ``will_send`` is
    matched by an ``on_frame`` or an ``abort_send``); a frame swallowed by
    a dead peer's socket never arrives, which is what the drain timeout is
    for — the run degrades to "late" instead of hanging, and the loss is
    counted in :attr:`lost_frames`.
    """

    def __init__(self, discipline: str = "lockstep", latency_scale: float = 0.0):
        if discipline not in DISCIPLINES:
            raise ValueError(f"unknown discipline {discipline!r}")
        self.discipline = discipline
        self.latency_scale = latency_scale
        self.lost_frames = 0
        self._seq = itertools.count(1)
        self._inflight = 0
        self._heap: List[Tuple[float, int, Callable[[], Awaitable[None]]]] = []
        self._tasks: "set[asyncio.Task]" = set()
        self._event = asyncio.Event()
        self._event.set()
        self._epoch = 0.0

    # -- send side ------------------------------------------------------

    def next_seq(self) -> int:
        """Allocate the next global send sequence number."""
        return next(self._seq)

    def will_send(self) -> None:
        """Declare one data frame about to hit the wire."""
        self._inflight += 1
        self._event.clear()

    def abort_send(self) -> None:
        """Undo :meth:`will_send` after a failed write."""
        self._inflight -= 1
        self._maybe_wake()

    # -- receive side ---------------------------------------------------

    def start_epoch(self) -> None:
        """Pin the realtime deadline origin to *now* (one call per query)."""
        self._epoch = asyncio.get_running_loop().time()

    def on_frame(
        self, ltime: float, seq: int, handler: Callable[[], Awaitable[None]]
    ) -> None:
        """A data frame arrived; schedule its handler per the discipline."""
        if self.discipline == "lockstep":
            heapq.heappush(self._heap, (ltime, seq, handler))
            self._inflight -= 1
            self._maybe_wake()
        else:
            deadline = self._epoch + ltime * self.latency_scale
            task = asyncio.get_running_loop().create_task(
                self._deliver_at(deadline, handler)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _deliver_at(
        self, deadline: float, handler: Callable[[], Awaitable[None]]
    ) -> None:
        delay = deadline - asyncio.get_running_loop().time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            await handler()
        finally:
            # The handler's own sends were counted before this decrement,
            # so quiescence cannot be observed between a delivery and the
            # transmissions it caused.
            self._inflight -= 1
            self._maybe_wake()

    def _maybe_wake(self) -> None:
        if self._inflight == 0:
            self._event.set()

    # -- drain ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Frames in flight plus (lockstep) frames queued for delivery."""
        return self._inflight + len(self._heap) + len(self._tasks)

    async def drain(self, timeout: float) -> bool:
        """Run the data plane to quiescence; ``False`` on timeout.

        Lockstep: repeatedly wait for the wire to go quiet, then dispatch
        the earliest ``(ltime, seq)`` handler — the simulator's event loop,
        with real sockets as the transport.  Realtime: wait until no frame
        is in flight and no delivery task is pending.

        On timeout the in-flight count is force-cleared (frames sent to a
        peer that died mid-run can never arrive) and the loss is counted,
        so a killed peer degrades the run instead of hanging it.
        """
        loop = asyncio.get_running_loop()
        give_up = loop.time() + timeout
        while True:
            remaining = give_up - loop.time()
            if remaining <= 0:
                self.lost_frames += self._inflight
                self._inflight = 0
                self._heap.clear()
                self._event.set()
                return False
            if self._inflight > 0:
                try:
                    await asyncio.wait_for(self._event.wait(), remaining)
                except asyncio.TimeoutError:
                    continue
                continue
            if self.discipline == "lockstep":
                if not self._heap:
                    return True
                _ltime, _seq, handler = heapq.heappop(self._heap)
                await handler()
            else:
                if not self._tasks:
                    return True
                await asyncio.sleep(0)
                if self._tasks:
                    try:
                        await asyncio.wait_for(
                            asyncio.gather(
                                *list(self._tasks), return_exceptions=True
                            ),
                            remaining,
                        )
                    except asyncio.TimeoutError:
                        continue
