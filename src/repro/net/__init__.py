"""Live asyncio network runtime for the ACE protocol.

Everything under ``repro.net`` runs the *same* protocol logic as the
discrete-event simulation (``repro.sim`` / ``repro.core``) over real
sockets: peers are asyncio endpoints with listening sockets and outbound
connection pools, descriptors from :mod:`repro.sim.messages` cross the
wire in the length-prefixed binary framing of :mod:`repro.net.wire`, and a
seed node (:mod:`repro.net.seed`) bootstraps membership and orchestrates
ACE optimization rounds as a token-passing sequence of live
``CostProbe`` / ``CostTableMessage`` / ``ConnectRequest`` exchanges.

Layering contract (enforced by replint REP015): wall-clock reads and
blocking socket/sleep calls are confined to this package, and this package
never imports ``repro.experiments`` — the launcher
(:mod:`repro.net.launch`) accepts a pre-built scenario object instead, so
the experiment layer stays above the runtime, never below it.

See ``docs/NETWORK.md`` for the architecture, the wire format and the
sim-vs-live convergence contract.
"""

from __future__ import annotations

from .launch import LiveRunResult, plan_queries, run_live, run_sim_reference
from .runtime import NetConfig
from .wire import (
    Envelope,
    FrameAssembler,
    TruncatedFrame,
    UnknownMessageType,
    VersionMismatch,
    WireError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "Envelope",
    "FrameAssembler",
    "LiveRunResult",
    "NetConfig",
    "TruncatedFrame",
    "UnknownMessageType",
    "VersionMismatch",
    "WireError",
    "decode_frame",
    "encode_frame",
    "plan_queries",
    "run_live",
    "run_sim_reference",
]
