"""Persistence for experiment results: typed JSON round-trips.

Long experiment runs (the depth sweep takes minutes at paper scale) should
be computed once and re-analyzed many times.  This module serializes every
experiment result type to a versioned JSON document and restores it to the
original dataclass:

* :class:`~repro.experiments.static_env.StaticSeries`
* :class:`~repro.experiments.dynamic_env.DynamicSeries`
* :class:`~repro.experiments.depth_sweep.DepthSweepResult`
* :class:`~repro.metrics.optimization.OptimizationTradeoff`
* :class:`~repro.topology.properties.TopologyReport`

The CLI's ``--json`` flag and the examples use :func:`save_result` /
:func:`load_result`; documents carry a ``kind`` tag and a format version so
old files fail loudly instead of deserializing wrongly.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, Union

from ..metrics.optimization import OptimizationTradeoff
from ..topology.properties import TopologyReport
from .depth_sweep import DepthSweepResult
from .dynamic_env import DynamicSeries
from .static_env import StaticSeries

__all__ = ["FORMAT_VERSION", "to_document", "from_document", "save_result", "load_result"]

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def _encode_static(series: StaticSeries) -> Dict[str, Any]:
    return asdict(series)


def _decode_static(data: Dict[str, Any]) -> StaticSeries:
    return StaticSeries(**data)


def _encode_dynamic(series: DynamicSeries) -> Dict[str, Any]:
    return asdict(series)


def _decode_dynamic(data: Dict[str, Any]) -> DynamicSeries:
    return DynamicSeries(**data)


def _encode_tradeoff(t: OptimizationTradeoff) -> Dict[str, Any]:
    return asdict(t)


def _decode_tradeoff(data: Dict[str, Any]) -> OptimizationTradeoff:
    return OptimizationTradeoff(**data)


def _encode_sweep(sweep: DepthSweepResult) -> Dict[str, Any]:
    return {
        "tradeoffs": [
            {"degree": c, "depth": h, "value": _encode_tradeoff(t)}
            for (c, h), t in sorted(sweep.tradeoffs.items())
        ]
    }


def _decode_sweep(data: Dict[str, Any]) -> DepthSweepResult:
    result = DepthSweepResult()
    for entry in data["tradeoffs"]:
        key = (int(entry["degree"]), int(entry["depth"]))
        result.tradeoffs[key] = _decode_tradeoff(entry["value"])
    return result


def _encode_topology_report(report: TopologyReport) -> Dict[str, Any]:
    return asdict(report)


def _decode_topology_report(data: Dict[str, Any]) -> TopologyReport:
    return TopologyReport(**data)


_CODECS: Dict[str, tuple] = {
    "static_series": (StaticSeries, _encode_static, _decode_static),
    "dynamic_series": (DynamicSeries, _encode_dynamic, _decode_dynamic),
    "depth_sweep": (DepthSweepResult, _encode_sweep, _decode_sweep),
    "optimization_tradeoff": (
        OptimizationTradeoff, _encode_tradeoff, _decode_tradeoff,
    ),
    "topology_report": (
        TopologyReport, _encode_topology_report, _decode_topology_report,
    ),
}


def to_document(result: Any, metadata: Dict[str, Any] = None) -> Dict[str, Any]:
    """Wrap a result object in a tagged, versioned JSON-ready document."""
    for kind, (cls, encode, _decode) in _CODECS.items():
        if isinstance(result, cls):
            return {
                "format_version": FORMAT_VERSION,
                "kind": kind,
                "metadata": dict(metadata or {}),
                "data": encode(result),
            }
    raise TypeError(f"cannot serialize result of type {type(result).__name__}")


def from_document(document: Dict[str, Any]) -> Any:
    """Restore the result object from a document made by :func:`to_document`."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    kind = document.get("kind")
    if kind not in _CODECS:
        raise ValueError(f"unknown result kind {kind!r}")
    _cls, _encode, decode = _CODECS[kind]
    return decode(document["data"])


def save_result(
    result: Any,
    path: Union[str, Path],
    metadata: Dict[str, Any] = None,
) -> Path:
    """Serialize a result to a JSON file; returns the path written."""
    path = Path(path)
    document = to_document(result, metadata=metadata)
    with path.open("w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
    return path


def load_result(path: Union[str, Path]) -> Any:
    """Load a result previously written by :func:`save_result`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as f:
        document = json.load(f)
    return from_document(document)
