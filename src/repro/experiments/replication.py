"""Seed replication: run an experiment across seeds, report mean +/- std.

The paper averages its results over "10 physical topologies" per
configuration; single-seed numbers at laptop scale are noisy (the static
response-time reduction, for instance, swings by tens of percent between
seeds).  :func:`replicate` runs any seed-parameterized experiment over a
seed list and summarizes each extracted metric, so claims can be asserted
on means instead of lucky draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = ["MetricSummary", "ReplicationResult", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean/std/min/max of one metric across seeds."""

    name: str
    values: tuple
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    def format(self, precision: int = 2) -> str:
        """Human-readable ``mean +/- std [min, max] (n)`` rendering."""
        return (
            f"{self.name}: {self.mean:.{precision}f} ± {self.std:.{precision}f} "
            f"[{self.minimum:.{precision}f}, {self.maximum:.{precision}f}] "
            f"(n={self.n})"
        )


@dataclass
class ReplicationResult:
    """All metric summaries of one replicated experiment."""

    metrics: Dict[str, MetricSummary] = field(default_factory=dict)
    seeds: tuple = ()

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def summary(self, precision: int = 2) -> str:
        """Multi-line rendering of every metric."""
        return "\n".join(
            self.metrics[name].format(precision) for name in sorted(self.metrics)
        )


def _summarize(name: str, values: Sequence[float]) -> MetricSummary:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return MetricSummary(
        name=name,
        values=tuple(values),
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


def replicate(
    experiment: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> ReplicationResult:
    """Run ``experiment(seed) -> {metric: value}`` for every seed.

    Every run must report the same metric names; raises ``ValueError``
    otherwise (a silently missing metric would skew the mean).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_metric: Dict[str, List[float]] = {}
    expected: Optional[set] = None
    for seed in seeds:
        outcome = dict(experiment(int(seed)))
        names = set(outcome)
        if expected is None:
            expected = names
        elif names != expected:
            raise ValueError(
                f"seed {seed} reported metrics {sorted(names)} but earlier "
                f"seeds reported {sorted(expected)}"
            )
        for name, value in outcome.items():
            per_metric.setdefault(name, []).append(float(value))
    return ReplicationResult(
        metrics={
            name: _summarize(name, values)
            for name, values in per_metric.items()
        },
        seeds=tuple(int(s) for s in seeds),
    )
