"""Experiment drivers that regenerate the paper's evaluation (Section 5).

One module per experiment family:

* :mod:`~repro.experiments.static_env` — Figures 7-8 (static convergence).
* :mod:`~repro.experiments.dynamic_env` — Figures 9-10 (churning system),
  plus the Section 5.2 index-caching study.
* :mod:`~repro.experiments.depth_sweep` — Figures 11-12 (depth/overhead).
* :mod:`~repro.experiments.opt_rate` — Figures 13-16 (gain/penalty).
* :mod:`~repro.experiments.paper_example` — Figures 5-6 / Tables 1-2.
"""

from .ascii_plot import line_chart, sparkline
from .depth_sweep import DepthSweepConfig, DepthSweepResult, run_depth_sweep
from .dynamic_env import DynamicConfig, DynamicSeries, run_dynamic_experiment
from .opt_rate import (
    PAPER_R_VALUES_C4,
    PAPER_R_VALUES_C10,
    REPRO_R_VALUES,
    minimal_depths_table,
    rate_vs_depth,
    rate_vs_frequency_ratio,
)
from .paper_scale import (
    estimate_static_run_cost,
    paper_scenario,
    paper_seed_family,
)
from .paper_example import (
    PEER_NAMES,
    ExampleWalkthrough,
    build_example_overlay,
    run_walkthrough,
)
from .replication import MetricSummary, ReplicationResult, replicate
from .reporting import format_percent, format_series, format_table
from .results_io import load_result, save_result
from .setup import Scenario, ScenarioConfig, build_scenario, repro_scale
from .static_env import StaticSeries, measure_queries, run_static_experiment

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "repro_scale",
    "StaticSeries",
    "measure_queries",
    "run_static_experiment",
    "DynamicConfig",
    "DynamicSeries",
    "run_dynamic_experiment",
    "DepthSweepConfig",
    "DepthSweepResult",
    "run_depth_sweep",
    "rate_vs_depth",
    "rate_vs_frequency_ratio",
    "minimal_depths_table",
    "PAPER_R_VALUES_C10",
    "PAPER_R_VALUES_C4",
    "REPRO_R_VALUES",
    "PEER_NAMES",
    "ExampleWalkthrough",
    "build_example_overlay",
    "run_walkthrough",
    "format_table",
    "format_series",
    "format_percent",
    "sparkline",
    "line_chart",
    "save_result",
    "load_result",
    "replicate",
    "ReplicationResult",
    "MetricSummary",
    "paper_scenario",
    "paper_seed_family",
    "estimate_static_run_cost",
]
