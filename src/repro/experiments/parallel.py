"""Generic parallel trial harness: one fan-out path for every experiment.

PR 1 gave ``run_static_trials`` its own pool/submit/collect logic; this
module hoists that into a single harness that the static driver, the dynamic
arms, and the benchmark conftest all share, and upgrades it in three ways:

* **Zero-copy worker setup.**  The parent builds each *distinct* underlay
  (see :func:`repro.experiments.setup.underlay_key`) exactly once — and,
  for configs selecting a landmark oracle, each distinct embedding (see
  :func:`repro.experiments.setup.oracle_key`) on that same graph — exports
  both to shared memory, and initializes every worker process with
  :func:`repro.experiments.setup.attach_shared_worlds`.  Workers attach
  read-only views of the CSR arrays and the ``(k, N)`` embedding instead
  of regenerating a 20,000-node graph (or re-running k Dijkstra solves)
  from seed per process — the regeneration that used to dominate
  paper-scale wall-clock.
* **Fleet-wide perf accounting.**  Each worker measures its trial as a
  :meth:`counter delta <repro.perf.PerfCounters.delta>` and returns it with
  the result; the parent :meth:`merges <repro.perf.PerfCounters.merge>`
  every delta into the process-wide bag, so ``--perf`` and the budget gates
  see the whole fleet's Dijkstra workload, not just the parent's.
* **Leak-proof lifecycle.**  Segments are unlinked in a ``finally`` that
  covers worker exceptions and pool teardown; the
  :class:`~repro.topology.shm.SharedUnderlay` atexit guard (PID-keyed)
  backstops hard exits.  A failed trial cannot leave segments behind —
  pinned by ``tests/experiments/test_parallel.py``.

Determinism: each payload is self-contained (a seeded config), workers are
pure functions of their payload, and results come back in submission order —
so a run with ``REPRO_WORKERS=8`` is byte-identical to the same run inline.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..oracle import parse_oracle_spec
from ..oracle.landmark import LandmarkOracle, SharedEmbedding
from ..perf import counters
from ..topology.physical import PhysicalTopology
from ..topology.shm import SharedUnderlay
from .setup import (
    OracleKey,
    ScenarioConfig,
    UnderlayKey,
    attach_shared_worlds,
    build_oracle,
    build_underlay,
    oracle_key,
    repro_workers,
    underlay_key,
)

__all__ = ["run_trials", "run_trials_detailed"]

P = TypeVar("P")
R = TypeVar("R")

#: One worker's measurement of its trial: a mergeable counter delta.
PerfSnapshot = Dict[str, Union[int, float]]


def _run_task(item: Tuple[Callable[[Any], Any], Any]) -> Tuple[Any, PerfSnapshot]:
    """Worker entry point: run one trial and measure its counter delta."""
    from repro.sanitize import maybe_install

    maybe_install()  # spawned workers re-read REPRO_SANITIZE; no-op otherwise
    task, payload = item
    before = counters.copy()
    result = task(payload)
    return result, counters.delta(before)


def _export_worlds(
    configs: Sequence[ScenarioConfig],
) -> Tuple[Dict[UnderlayKey, SharedUnderlay], Dict[OracleKey, SharedEmbedding]]:
    """Build and export each distinct underlay and oracle embedding once.

    The parent builds every distinct :func:`underlay_key` graph, then every
    distinct non-exact :func:`oracle_key` embedding *on that same built
    graph* (no second generator run), and exports both to shared memory.
    Workers attach zero-copy, so neither the 20,000-node generator nor the
    k embedding solves ever run per process.  On any failure the
    already-exported segments of both layers are unlinked before the
    exception propagates — a half-exported fleet never leaks.
    """
    underlays: Dict[UnderlayKey, SharedUnderlay] = {}
    oracles: Dict[OracleKey, SharedEmbedding] = {}
    built: Dict[UnderlayKey, PhysicalTopology] = {}
    try:
        for config in configs:
            key = underlay_key(config)
            if key not in underlays:
                physical = build_underlay(config)
                built[key] = physical
                underlays[key] = physical.export_shared()
            okey = oracle_key(config)
            if parse_oracle_spec(config.oracle).kind == "exact" or okey in oracles:
                continue
            oracle = build_oracle(config, built[key])
            assert isinstance(oracle, LandmarkOracle)  # non-exact specs only
            oracles[okey] = oracle.export_shared()
    except BaseException:
        for shared in (*underlays.values(), *oracles.values()):
            shared.unlink()
        raise
    return underlays, oracles


def run_trials_detailed(
    task: Callable[[P], R],
    payloads: Sequence[P],
    shared_underlays: Sequence[ScenarioConfig] = (),
    max_workers: Optional[int] = None,
) -> Tuple[List[R], List[PerfSnapshot]]:
    """Run *task* over *payloads*, returning results and per-trial perf.

    *task* must be a module-level callable (pickled by reference) and each
    payload must be small and picklable — a seeded config, never a built
    topology (replint REP005 enforces this structurally).

    *shared_underlays* lists the scenario configs whose worlds the trials
    will build; each distinct :func:`underlay_key` (and, for landmark-oracle
    configs, each distinct :func:`oracle_key` embedding) is generated once
    in the parent, exported to shared memory, and attached by every
    worker's initializer.  Leave it empty to skip sharing (e.g. payloads
    that build no scenario).

    *max_workers* defaults to the ``REPRO_WORKERS`` environment knob; ``1``
    runs everything inline in this process with no pool, no export and no
    fork — bit-identical results either way, since every trial is a pure
    function of its payload.

    Returns ``(results, perf_snapshots)`` in payload order.  Parallel
    snapshots are merged into this process's :data:`repro.perf.counters`
    (inline trials already incremented them directly), so fleet totals are
    always visible to ``--perf`` whatever the worker count.
    """
    items = [(task, payload) for payload in payloads]
    workers = repro_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError("max_workers must be >= 1")
    workers = min(workers, len(items))
    if workers <= 1:
        pairs = [_run_task(item) for item in items]
        return [r for r, _ in pairs], [snap for _, snap in pairs]

    from concurrent.futures import ProcessPoolExecutor

    underlay_exports, oracle_exports = _export_worlds(shared_underlays)
    try:
        underlay_handles = {k: s.handle for k, s in underlay_exports.items()}
        oracle_handles = {k: s.handle for k, s in oracle_exports.items()}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=attach_shared_worlds,
            initargs=(underlay_handles, oracle_handles),
        ) as pool:
            pairs = list(pool.map(_run_task, items))
    finally:
        for shared in (*underlay_exports.values(), *oracle_exports.values()):
            shared.unlink()
    results: List[R] = []
    snapshots: List[PerfSnapshot] = []
    for result, snap in pairs:
        counters.merge(snap)
        results.append(result)
        snapshots.append(snap)
    return results, snapshots


def run_trials(
    task: Callable[[P], R],
    payloads: Sequence[P],
    shared_underlays: Sequence[ScenarioConfig] = (),
    max_workers: Optional[int] = None,
) -> List[R]:
    """Like :func:`run_trials_detailed`, returning just the results."""
    results, _ = run_trials_detailed(
        task, payloads, shared_underlays=shared_underlays, max_workers=max_workers
    )
    return results
