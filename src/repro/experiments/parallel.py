"""Generic parallel trial harness: one fan-out path for every experiment.

PR 1 gave ``run_static_trials`` its own pool/submit/collect logic; this
module hoists that into a single harness that the static driver, the dynamic
arms, and the benchmark conftest all share, and upgrades it in three ways:

* **Zero-copy worker setup.**  The parent builds each *distinct* underlay
  (see :func:`repro.experiments.setup.underlay_key`) exactly once, exports
  it to shared memory, and initializes every worker process with
  :func:`repro.experiments.setup.attach_shared_underlays`.  Workers attach
  read-only views of the CSR arrays instead of regenerating a 20,000-node
  graph from seed per process — the regeneration that used to dominate
  paper-scale wall-clock.
* **Fleet-wide perf accounting.**  Each worker measures its trial as a
  :meth:`counter delta <repro.perf.PerfCounters.delta>` and returns it with
  the result; the parent :meth:`merges <repro.perf.PerfCounters.merge>`
  every delta into the process-wide bag, so ``--perf`` and the budget gates
  see the whole fleet's Dijkstra workload, not just the parent's.
* **Leak-proof lifecycle.**  Segments are unlinked in a ``finally`` that
  covers worker exceptions and pool teardown; the
  :class:`~repro.topology.shm.SharedUnderlay` atexit guard (PID-keyed)
  backstops hard exits.  A failed trial cannot leave segments behind —
  pinned by ``tests/experiments/test_parallel.py``.

Determinism: each payload is self-contained (a seeded config), workers are
pure functions of their payload, and results come back in submission order —
so a run with ``REPRO_WORKERS=8`` is byte-identical to the same run inline.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..perf import counters
from ..topology.shm import SharedUnderlay
from .setup import (
    ScenarioConfig,
    UnderlayKey,
    attach_shared_underlays,
    build_underlay,
    repro_workers,
    underlay_key,
)

__all__ = ["run_trials", "run_trials_detailed"]

P = TypeVar("P")
R = TypeVar("R")

#: One worker's measurement of its trial: a mergeable counter delta.
PerfSnapshot = Dict[str, Union[int, float]]


def _run_task(item: Tuple[Callable[[Any], Any], Any]) -> Tuple[Any, PerfSnapshot]:
    """Worker entry point: run one trial and measure its counter delta."""
    task, payload = item
    before = counters.copy()
    result = task(payload)
    return result, counters.delta(before)


def _export_underlays(
    configs: Sequence[ScenarioConfig],
) -> Dict[UnderlayKey, SharedUnderlay]:
    """Build and export each distinct underlay among *configs* once.

    On any failure the already-exported segments are unlinked before the
    exception propagates — a half-exported fleet never leaks.
    """
    exports: Dict[UnderlayKey, SharedUnderlay] = {}
    try:
        for config in configs:
            key = underlay_key(config)
            if key in exports:
                continue
            exports[key] = build_underlay(config).export_shared()
    except BaseException:
        for shared in exports.values():
            shared.unlink()
        raise
    return exports


def run_trials_detailed(
    task: Callable[[P], R],
    payloads: Sequence[P],
    shared_underlays: Sequence[ScenarioConfig] = (),
    max_workers: Optional[int] = None,
) -> Tuple[List[R], List[PerfSnapshot]]:
    """Run *task* over *payloads*, returning results and per-trial perf.

    *task* must be a module-level callable (pickled by reference) and each
    payload must be small and picklable — a seeded config, never a built
    topology (replint REP005 enforces this structurally).

    *shared_underlays* lists the scenario configs whose underlays the trials
    will build; each distinct :func:`underlay_key` is generated once in the
    parent, exported to shared memory, and attached by every worker's
    initializer.  Leave it empty to skip sharing (e.g. payloads that build
    no scenario).

    *max_workers* defaults to the ``REPRO_WORKERS`` environment knob; ``1``
    runs everything inline in this process with no pool, no export and no
    fork — bit-identical results either way, since every trial is a pure
    function of its payload.

    Returns ``(results, perf_snapshots)`` in payload order.  Parallel
    snapshots are merged into this process's :data:`repro.perf.counters`
    (inline trials already incremented them directly), so fleet totals are
    always visible to ``--perf`` whatever the worker count.
    """
    items = [(task, payload) for payload in payloads]
    workers = repro_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError("max_workers must be >= 1")
    workers = min(workers, len(items))
    if workers <= 1:
        pairs = [_run_task(item) for item in items]
        return [r for r, _ in pairs], [snap for _, snap in pairs]

    from concurrent.futures import ProcessPoolExecutor

    exports = _export_underlays(shared_underlays)
    try:
        handles = {key: shared.handle for key, shared in exports.items()}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=attach_shared_underlays,
            initargs=(handles,),
        ) as pool:
            pairs = list(pool.map(_run_task, items))
    finally:
        for shared in exports.values():
            shared.unlink()
    results: List[R] = []
    snapshots: List[PerfSnapshot] = []
    for result, snap in pairs:
        counters.merge(snap)
        results.append(result)
        snapshots.append(snap)
    return results, snapshots


def run_trials(
    task: Callable[[P], R],
    payloads: Sequence[P],
    shared_underlays: Sequence[ScenarioConfig] = (),
    max_workers: Optional[int] = None,
) -> List[R]:
    """Like :func:`run_trials_detailed`, returning just the results."""
    results, _ = run_trials_detailed(
        task, payloads, shared_underlays=shared_underlays, max_workers=max_workers
    )
    return results
