"""Closure-depth sweep: Figures 11 and 12 (inputs to Figures 13-16).

Section 5.3 studies "the impact of optimization depth": for overlays with
average neighbor counts C in {4, 6, 8, 10} and closure depths h = 1..8,

* Figure 11 — the query-traffic reduction rate over blind flooding grows
  with both h and C and saturates past a threshold depth, and
* Figure 12 — the overhead traffic of tree (re)construction grows with both
  h and C (the closure, hence the exchanged cost-table volume, grows like
  C^h).

:func:`run_depth_sweep` measures both for every (C, h) pair, returning
:class:`~repro.metrics.optimization.OptimizationTradeoff` records that the
optimization-rate module turns into Figures 13-16.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ace import AceConfig, AceProtocol
from ..metrics.optimization import OptimizationTradeoff
from ..search.flooding import blind_flooding_strategy
from ..search.tree_routing import ace_strategy
from .setup import Scenario, ScenarioConfig, build_scenario
from .static_env import measure_queries

__all__ = ["DepthSweepConfig", "DepthSweepResult", "run_depth_sweep"]


@dataclass(frozen=True)
class DepthSweepConfig:
    """Sweep parameters (paper defaults: C in 4..10, h in 1..8)."""

    degrees: Tuple[int, ...] = (4, 6, 8, 10)
    depths: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    convergence_steps: int = 8
    query_samples: int = 24
    base: ScenarioConfig = field(default_factory=ScenarioConfig)


@dataclass
class DepthSweepResult:
    """All (C, h) trade-off measurements of one sweep."""

    tradeoffs: Dict[Tuple[int, int], OptimizationTradeoff] = field(
        default_factory=dict
    )

    def for_degree(self, degree: int) -> List[OptimizationTradeoff]:
        """Trade-offs of one overlay density, ordered by depth."""
        out = [t for (c, _h), t in self.tradeoffs.items() if c == degree]
        out.sort(key=lambda t: t.depth)
        return out

    def degrees(self) -> List[int]:
        """Swept average-degree values."""
        return sorted({c for c, _h in self.tradeoffs})

    def depths(self) -> List[int]:
        """Swept closure depths."""
        return sorted({h for _c, h in self.tradeoffs})


def _measure_depth(
    scenario: Scenario,
    depth: int,
    config: DepthSweepConfig,
    baseline_traffic: float,
) -> OptimizationTradeoff:
    overlay = scenario.fresh_overlay()
    rng = np.random.default_rng(scenario.config.seed + 7919 * depth)
    ace_config = AceConfig(depth=depth)
    protocol = AceProtocol(overlay, ace_config, rng=rng)

    reports = protocol.run(config.convergence_steps)
    # Steady-state reconstruction cost: the last step's Phase 1-3 traffic.
    overhead = reports[-1].total_overhead

    peers = overlay.peers()
    src_rng = np.random.default_rng(scenario.config.seed + 0xBEEF)
    sources = [peers[int(i)] for i in src_rng.integers(0, len(peers), size=config.query_samples)]
    traffic, _response, _scope = measure_queries(
        overlay, ace_strategy(protocol), sources, scenario.catalog,
        np.random.default_rng(scenario.config.seed + 0xF00D),
    )
    return OptimizationTradeoff(
        depth=depth,
        avg_degree=scenario.config.avg_degree,
        baseline_traffic_per_query=baseline_traffic,
        optimized_traffic_per_query=traffic,
        overhead_per_reconstruction=overhead,
    )


def run_depth_sweep(config: Optional[DepthSweepConfig] = None) -> DepthSweepResult:
    """Measure the gain/penalty trade-off for every (C, h) combination.

    For each average degree C a fresh scenario is built (same underlay seed
    family); the blind-flooding baseline is measured once per C, then each
    depth h gets an independent copy of the overlay, ACE run to convergence,
    and its converged query traffic and per-step overhead recorded.
    """
    config = config or DepthSweepConfig()
    result = DepthSweepResult()
    for degree in config.degrees:
        scenario = build_scenario(replace(config.base, avg_degree=float(degree)))
        peers = scenario.overlay.peers()
        src_rng = np.random.default_rng(scenario.config.seed + 0xBEEF)
        sources = [
            peers[int(i)]
            for i in src_rng.integers(0, len(peers), size=config.query_samples)
        ]
        baseline_traffic, _resp, _scope = measure_queries(
            scenario.overlay,
            blind_flooding_strategy(scenario.overlay),
            sources,
            scenario.catalog,
            np.random.default_rng(scenario.config.seed + 0xF00D),
        )
        for depth in config.depths:
            result.tradeoffs[(degree, depth)] = _measure_depth(
                scenario, depth, config, baseline_traffic
            )
    return result
