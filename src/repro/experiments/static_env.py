"""Static-environment experiment: Figures 7 and 8.

Section 5.1: "the first goal of ACE schemes is to reduce traffic cost as much
as possible while retaining the same search scope ...  the traffic cost
decreases when ACE is conducted multiple times, where the search scope is all
peers.  ACE may reduce traffic cost by around 50% and it converges in around
10 steps ...  ACE can shorten the query response time by about 35% after 10
steps."

:func:`run_static_experiment` measures, after each ACE optimization step, the
average full-coverage traffic cost and average response time over a sample of
queries.  Step 0 is the unoptimized overlay under blind flooding — the
baseline both figures normalize against.

:func:`run_static_trials` fans independent trials (different configs/seeds)
out through the shared :mod:`~repro.experiments.parallel` harness: only the
small, picklable :class:`~repro.experiments.setup.ScenarioConfig` crosses
the process boundary, workers attach the underlay zero-copy from shared
memory instead of regenerating it, and each worker's perf-counter delta is
merged back into the parent's totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ace import AceConfig, AceProtocol
from ..search.batch import run_queries
from ..search.flooding import blind_flooding_strategy
from ..search.tree_routing import ace_strategy
from ..sim.workload import ObjectCatalog
from .parallel import run_trials
from .setup import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "StaticSeries",
    "measure_queries",
    "run_static_experiment",
    "run_static_trials",
]


@dataclass
class StaticSeries:
    """Per-step averages for one (scenario, ACE config) run.

    Index 0 is the unoptimized blind-flooding baseline; index *k* is after
    *k* ACE steps.
    """

    avg_degree: float
    steps: List[int] = field(default_factory=list)
    traffic_per_query: List[float] = field(default_factory=list)
    response_time: List[float] = field(default_factory=list)
    search_scope: List[float] = field(default_factory=list)
    step_overhead: List[float] = field(default_factory=list)

    @property
    def traffic_reduction_percent(self) -> float:
        """Final traffic reduction over the step-0 baseline, in percent."""
        if not self.traffic_per_query or self.traffic_per_query[0] <= 0:
            return 0.0
        first, last = self.traffic_per_query[0], self.traffic_per_query[-1]
        return 100.0 * (first - last) / first

    @property
    def response_reduction_percent(self) -> float:
        """Final response-time reduction over the baseline, in percent."""
        if not self.response_time or self.response_time[0] <= 0:
            return 0.0
        first, last = self.response_time[0], self.response_time[-1]
        return 100.0 * (first - last) / first


def measure_queries(
    overlay,
    strategy,
    sources: Sequence[int],
    catalog: ObjectCatalog,
    rng: np.random.Generator,
    ttl: Optional[int] = None,
) -> Tuple[float, float, float]:
    """Average (traffic, response time, scope) over the sampled queries.

    Full coverage (``ttl=None``) matches the figures' "search scope is all
    peers" setting.  Response time averages over successful queries only.

    Object sampling stays sequential per present source (the draw order is
    part of the seeded contract); the propagations themselves run through
    the batched kernel in one shot (:func:`repro.search.batch.run_queries`),
    which falls back to the scalar engine per query when the strategy does
    not compile.
    """
    queries: List[Tuple[int, Tuple[int, ...]]] = []
    for src in sources:
        if not overlay.has_peer(src):
            continue
        obj = catalog.sample_object(rng)
        queries.append((src, catalog.holders_of(obj)))
    traffic = 0.0
    scope = 0.0
    responses: List[float] = []
    for result in run_queries(overlay, strategy, queries, ttl=ttl):
        traffic += result.traffic_cost
        scope += result.search_scope
        if result.first_response_time is not None:
            responses.append(result.first_response_time)
    n = max(1, len(sources))
    avg_response = sum(responses) / len(responses) if responses else 0.0
    return traffic / n, avg_response, scope / n


def run_static_experiment(
    scenario: Scenario,
    steps: int = 10,
    ace_config: Optional[AceConfig] = None,
    query_samples: int = 32,
    ttl: Optional[int] = None,
) -> StaticSeries:
    """Run ACE for *steps* optimization steps on a static overlay.

    Uses a fixed set of query sources across steps (paired samples) so the
    per-step series isolates the topology's improvement from sampling noise.
    Returns the per-step series including the step-0 blind-flooding baseline.
    """
    overlay = scenario.fresh_overlay()
    rng = np.random.default_rng(scenario.config.seed + 0x5EED)
    protocol = AceProtocol(overlay, ace_config or AceConfig(), rng=rng)

    peers = overlay.peers()
    source_idx = rng.integers(0, len(peers), size=query_samples)
    sources = [peers[int(i)] for i in source_idx]

    # Pre-warm the exact working set the run will touch: all logical edge
    # costs (one batched underlay solve) and the delay vectors rooted at the
    # fixed query sources, so measurement never faults a Dijkstra mid-query.
    overlay.warm_edge_costs()
    overlay.warm_sources(sources)

    series = StaticSeries(avg_degree=overlay.average_degree())

    query_rng = np.random.default_rng(scenario.config.seed + 0xCAFE)
    traffic, response, scope = measure_queries(
        overlay, blind_flooding_strategy(overlay), sources, scenario.catalog,
        query_rng, ttl=ttl,
    )
    series.steps.append(0)
    series.traffic_per_query.append(traffic)
    series.response_time.append(response)
    series.search_scope.append(scope)
    series.step_overhead.append(0.0)

    strategy = ace_strategy(protocol)
    for k in range(1, steps + 1):
        report = protocol.step()
        query_rng = np.random.default_rng(scenario.config.seed + 0xCAFE)
        traffic, response, scope = measure_queries(
            overlay, strategy, sources, scenario.catalog, query_rng, ttl=ttl
        )
        series.steps.append(k)
        series.traffic_per_query.append(traffic)
        series.response_time.append(response)
        series.search_scope.append(scope)
        series.step_overhead.append(report.total_overhead)
    return series


def _static_trial(payload: Tuple) -> StaticSeries:
    """Worker entry point: rebuild the world from its config and run it."""
    config, steps, ace_config, query_samples, ttl = payload
    scenario = build_scenario(config)
    return run_static_experiment(
        scenario,
        steps=steps,
        ace_config=ace_config,
        query_samples=query_samples,
        ttl=ttl,
    )


def run_static_trials(
    configs: Sequence[ScenarioConfig],
    steps: int = 10,
    ace_config: Optional[AceConfig] = None,
    query_samples: int = 32,
    ttl: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> List[StaticSeries]:
    """Run one static experiment per config, fanning out over processes.

    Each trial is independent (its own scenario, built from seed over the
    shared underlay inside the worker), so results are byte-identical
    whatever the worker count.  *max_workers* defaults to the
    ``REPRO_WORKERS`` environment knob; ``1`` runs everything inline in
    this process.  Worker perf counters are merged into the parent's.
    """
    payloads = [
        (config, steps, ace_config, query_samples, ttl) for config in configs
    ]
    return run_trials(
        _static_trial,
        payloads,
        shared_underlays=configs,
        max_workers=max_workers,
    )
