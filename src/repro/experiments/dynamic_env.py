"""Dynamic-environment experiment: Figures 9 and 10 (and the caching study).

Section 5.2's setting: "peer average lifetime in a P2P system is 10 minutes;
0.3 queries are issued by each peer per minute; and the frequency for ACE at
every peer to conduct optimization operations is twice per minute."  Figure 9
plots the average traffic cost per query — *including* the ACE optimization
overhead — for a Gnutella-like system versus an ACE-enabled one, over the
query stream; Figure 10 does the same for response time.

The driver runs a discrete-event simulation: peer departures/arrivals from
the churn model, Poisson query arrivals from the workload, and periodic ACE
optimization rounds.  Optionally a per-peer response index cache (Section
5.2's "ACE with index cache") is enabled on top.

The treatment arms of Figures 9-10 — gnutella-like, ACE, ACE + index cache —
are fully independent simulations, so :func:`run_dynamic_trials` fans them
out through the same :mod:`~repro.experiments.parallel` harness as the
static trials: one shared-memory underlay export, per-arm deterministic
seeding from the :class:`~repro.experiments.setup.ScenarioConfig`, and
worker perf counters merged back into the parent.  Results are
byte-identical to running the arms serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ace import AceConfig, AceProtocol
from ..core.batch_ace import churn_refresh, kernel_active
from ..metrics.accounting import TrafficAccount
from ..perf import counters
from ..metrics.collector import SeriesCollector
from ..search.batch import run_queries
from ..search.caching import IndexCacheStore, cached_query
from ..search.flooding import blind_flooding_strategy
from ..search.tree_routing import ace_strategy
from ..sim.churn import ChurnConfig, ChurnModel
from ..sim.engine import EventLoop
from ..sim.workload import QueryWorkload
from .parallel import run_trials
from .setup import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "DynamicConfig",
    "DynamicSeries",
    "run_dynamic_experiment",
    "run_dynamic_trials",
]


@dataclass(frozen=True)
class DynamicConfig:
    """Parameters of one dynamic-environment run."""

    total_queries: int = 2000
    window: int = 200
    enable_ace: bool = True
    optimization_interval: float = 30.0  # "twice per minute"
    ace: AceConfig = field(default_factory=AceConfig)
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    offline_fraction: float = 0.5
    enable_cache: bool = False
    cache_capacity: int = 100
    ttl: Optional[int] = None

    def __post_init__(self) -> None:
        if self.total_queries < 1:
            raise ValueError("total_queries must be >= 1")
        if not 1 <= self.window <= self.total_queries:
            raise ValueError("window must be in [1, total_queries]")
        if self.optimization_interval <= 0:
            raise ValueError("optimization_interval must be positive")


@dataclass
class DynamicSeries:
    """Windowed per-query averages over a dynamic run."""

    window: int
    traffic_points: List[float] = field(default_factory=list)
    response_points: List[float] = field(default_factory=list)
    success_points: List[float] = field(default_factory=list)
    scope_points: List[float] = field(default_factory=list)
    total_queries: int = 0
    total_overhead: float = 0.0
    departures: int = 0
    duration: float = 0.0

    @property
    def mean_traffic(self) -> float:
        """Mean of the windowed traffic points."""
        pts = self.traffic_points
        return sum(pts) / len(pts) if pts else 0.0

    @property
    def mean_response(self) -> float:
        """Mean of the windowed response-time points."""
        pts = self.response_points
        return sum(pts) / len(pts) if pts else 0.0


def _build_churn(
    scenario: Scenario, config: DynamicConfig, rng: np.random.Generator
) -> ChurnModel:
    overlay = scenario.overlay
    used_hosts = {overlay.host_of(p) for p in overlay.peers()}
    pool = [
        h
        for h in scenario.physical.largest_component_nodes()
        if h not in used_hosts
    ]
    n_offline = int(config.offline_fraction * overlay.num_peers)
    n_offline = min(n_offline, len(pool))
    idx = rng.choice(len(pool), size=n_offline, replace=False) if n_offline else []
    next_id = max(overlay.peers(), default=-1) + 1
    offline_hosts = {next_id + i: pool[int(j)] for i, j in enumerate(idx)}
    return ChurnModel(overlay, offline_hosts, rng, config=config.churn)


def run_dynamic_experiment(
    scenario: Scenario,
    config: Optional[DynamicConfig] = None,
) -> DynamicSeries:
    """Simulate a churning Gnutella-like system, with or without ACE.

    The per-query traffic observation amortizes protocol overhead: the
    overhead of each optimization round is spread over the queries of the
    window it lands in (Figure 9 "the traffic cost includes the overhead
    needed by each ACE operation").

    The scenario's overlay is mutated in place; build a fresh scenario (or
    copy the overlay) per treatment arm.
    """
    config = config or DynamicConfig()
    rng = np.random.default_rng(scenario.config.seed + 0xD1CE)
    loop = EventLoop()
    churn = _build_churn(scenario, config, rng)
    churn.start_initial_sessions(now=0.0)
    overlay = scenario.overlay
    # Bulk-fill the edge-cost cache for the initial topology; churn and ACE
    # keep it consistent through the overlay's mutation hooks, and rewired
    # edges are re-warmed by each ACE round.
    overlay.warm_edge_costs()
    workload = QueryWorkload(scenario.catalog, rng)

    protocol: Optional[AceProtocol] = None
    if config.enable_ace:
        protocol = AceProtocol(overlay, config.ace, rng=rng)
    caches: Optional[IndexCacheStore] = None
    if config.enable_cache:
        caches = IndexCacheStore(config.cache_capacity)

    series = DynamicSeries(window=config.window)
    traffic_collector = SeriesCollector(config.window)
    response_collector = SeriesCollector(config.window)
    success_collector = SeriesCollector(config.window)
    scope_collector = SeriesCollector(config.window)
    pending_overhead = [0.0]
    queries_done = [0]

    # ---------------------------------------------------------------- churn
    def schedule_departure(peer: int) -> None:
        record = churn.records[peer]
        if record.departs_at is None:
            return
        when = max(record.departs_at, loop.now)

        def depart() -> None:
            if not overlay.has_peer(peer):
                return
            epoch_before = overlay.epoch
            affected = set(overlay.neighbors(peer))
            if protocol is not None:
                protocol.handle_peer_left(peer)
            if caches is not None:
                caches.drop_peer(peer)
                caches.invalidate_holder(peer)
            replacement = churn.depart(peer, loop.now)
            if protocol is not None:
                protocol.handle_peer_joined(replacement)
            churn.repair_isolated()
            if protocol is not None and kernel_active(protocol):
                # Vectorized churn driver: the whole mutation batch above
                # already sits in the array engine's edit buffer; re-warm
                # the touched cost rows once and re-extract the joiner plus
                # every affected peer in one batched closure sweep.  The
                # joiner's Phase-1 overhead is charged exactly as below.
                counters.churn_batch_mutations += overlay.epoch - epoch_before
                affected |= set(overlay.neighbors(replacement))
                affected.discard(replacement)
                overhead = churn_refresh(protocol, replacement, affected)
                pending_overhead[0] += overhead
                series.total_overhead += overhead
            elif protocol is not None:
                # A servent reacts to connection changes immediately.  The
                # joiner runs a full Phase 1 (its new links must be probed —
                # overhead charged); the ex-neighbors and new neighbors
                # merely rebuild their trees from cost information they
                # already hold, which costs CPU, not traffic.
                _state, phase1 = protocol.refresh_peer(replacement)
                pending_overhead[0] += phase1.total_overhead
                series.total_overhead += phase1.total_overhead
                affected |= set(overlay.neighbors(replacement))
                affected.discard(replacement)
                for p in affected:
                    if overlay.has_peer(p):
                        protocol.recompute_tree(p)
            # Re-warm the edges the churn event created, in the canonical
            # direction.  A lazily filled cost can differ in the last ulp
            # depending on which endpoint's delay vector happens to be
            # cached, and the scalar and batched engines fault edges in
            # different orders — warming here keeps the cost cache (and so
            # the figures) engine-independent.
            overlay.warm_edge_costs()
            series.departures += 1
            schedule_departure(replacement)

        loop.schedule_at(when, depart)

    for p in list(overlay.peers()):
        schedule_departure(p)

    # ----------------------------------------------------------- optimization
    if protocol is not None:

        def optimize() -> None:
            report = protocol.step()
            pending_overhead[0] += report.total_overhead
            series.total_overhead += report.total_overhead
            if queries_done[0] < config.total_queries:
                loop.schedule_in(config.optimization_interval, optimize)

        loop.schedule_in(config.optimization_interval, optimize)

    # ---------------------------------------------------------------- queries
    strategy = (
        ace_strategy(protocol) if protocol is not None
        else blind_flooding_strategy(overlay)
    )

    def issue_query() -> None:
        if queries_done[0] >= config.total_queries:
            return
        online = overlay.peers()
        if len(online) >= 2:
            event = workload.next_query(loop.now, online)
            holders = scenario.catalog.holders_of(event.object_id)
            if caches is not None:
                # stop_at flows stay on the scalar reference engine.
                result = cached_query(
                    overlay, event.source, event.object_id, holders,
                    strategy, caches, ttl=config.ttl,
                )
            else:
                # Batched kernel; the compiled graph is memoized per
                # overlay epoch / ACE state version, so the stretches of
                # queries between churn events and optimization rounds
                # share one compilation.
                (result,) = run_queries(
                    overlay, strategy, [(event.source, holders)],
                    ttl=config.ttl,
                )
            # Amortize accumulated optimization overhead over this query.
            observed = result.traffic_cost + pending_overhead[0]
            pending_overhead[0] = 0.0
            traffic_collector.add(observed)
            scope_collector.add(float(result.search_scope))
            success_collector.add(1.0 if result.success else 0.0)
            if result.first_response_time is not None:
                response_collector.add(result.first_response_time)
            queries_done[0] += 1
        if queries_done[0] < config.total_queries:
            loop.schedule_in(workload.next_interarrival(max(1, len(online))), issue_query)

    loop.schedule_in(workload.next_interarrival(max(1, overlay.num_peers)), issue_query)

    # Run until the query budget is exhausted (drain events as they come).
    while queries_done[0] < config.total_queries and loop.step():
        pass

    series.total_queries = queries_done[0]
    series.duration = loop.now
    traffic_collector.flush()
    response_collector.flush()
    success_collector.flush()
    scope_collector.flush()
    series.traffic_points = traffic_collector.points
    series.response_points = response_collector.points
    series.success_points = success_collector.points
    series.scope_points = scope_collector.points
    return series


def _dynamic_trial(
    payload: Tuple[ScenarioConfig, Optional[DynamicConfig]],
) -> DynamicSeries:
    """Worker entry point: build the arm's world from seed and simulate it.

    The scenario is rebuilt per arm — over the process's attached
    shared-memory underlay when one matches, from the seeded generator
    otherwise — because :func:`run_dynamic_experiment` mutates the overlay
    in place.  Seeding comes entirely from the (picklable) configs, so an
    arm's result does not depend on which process ran it.
    """
    scenario_config, dynamic_config = payload
    scenario = build_scenario(scenario_config)
    return run_dynamic_experiment(scenario, dynamic_config)


def run_dynamic_trials(
    trials: Sequence[Tuple[ScenarioConfig, Optional[DynamicConfig]]],
    max_workers: Optional[int] = None,
) -> List[DynamicSeries]:
    """Run one dynamic experiment per ``(scenario, dynamic)`` config pair.

    The Figure 9/10 arms (gnutella / ace / ace+cache) are independent, so
    they fan out over worker processes exactly like the static trials:
    *max_workers* defaults to the ``REPRO_WORKERS`` environment knob, the
    underlay crosses the process boundary via shared memory (never by
    regeneration or pickling), per-arm seeding is deterministic from the
    configs, and results come back in submission order — byte-identical to
    a serial run.  Worker perf counters are merged into the parent's.
    """
    payloads = list(trials)
    return run_trials(
        _dynamic_trial,
        payloads,
        shared_underlays=[scenario for scenario, _ in payloads],
        max_workers=max_workers,
    )
