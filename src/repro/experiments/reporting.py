"""Plain-text reporting for experiment results.

The benchmark harness regenerates the paper's tables and figures as aligned
text tables and series listings printed to stdout (and captured in
``bench_output.txt``), so "who wins, by how much, where the crossover falls"
can be read directly off the run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["format_table", "format_series", "format_percent"]

Cell = Union[str, int, float, None]


def _render(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render several aligned series sharing one x-axis (a figure as text)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[Cell] = [x]
        for label in series:
            values = series[label]
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


def format_percent(value: float, precision: int = 1) -> str:
    """Render a fraction or percent value as ``'12.3%'``."""
    return f"{value:.{precision}f}%"
