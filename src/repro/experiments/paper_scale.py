"""Paper-scale configuration presets.

The paper's simulations use 10 physical topologies of 20,000 nodes with
logical overlays of up to 8,000 peers.  The default harness is laptop-sized;
these presets provide the faithful configurations for when the compute is
available, plus honest cost estimates so a user knows what they are signing
up for before launching an hours-long run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from .setup import ScenarioConfig

__all__ = [
    "PAPER_PHYSICAL_NODES",
    "PAPER_PEERS",
    "PAPER_TOPOLOGY_COUNT",
    "paper_scenario",
    "paper_seed_family",
    "estimate_static_run_cost",
]

#: Section 4.1: "10 physical topologies each with 20,000 nodes".
PAPER_PHYSICAL_NODES = 20_000
#: Section 5: "we representatively present the results based on 8,000 peers".
PAPER_PEERS = 8_000
#: The number of independent physical topologies the paper averages over.
PAPER_TOPOLOGY_COUNT = 10


def paper_scenario(
    avg_degree: float = 8.0,
    seed: int = 0,
    peers: int = PAPER_PEERS,
    physical_nodes: int = PAPER_PHYSICAL_NODES,
) -> ScenarioConfig:
    """A faithful paper-scale scenario configuration.

    Building the underlay alone takes tens of seconds; one ACE step over
    8,000 peers takes minutes in pure Python.  Use
    :func:`estimate_static_run_cost` before launching.
    """
    return ScenarioConfig(
        physical_nodes=physical_nodes,
        peers=peers,
        avg_degree=avg_degree,
        seed=seed,
    )


def paper_seed_family(base_seed: int = 0) -> List[int]:
    """Seeds for the paper's 10 independent physical topologies."""
    return [base_seed + 1000 * i for i in range(PAPER_TOPOLOGY_COUNT)]


@dataclass(frozen=True)
class RunCostEstimate:
    """Back-of-envelope cost model for one static experiment."""

    peers: int
    physical_nodes: int
    steps: int
    query_samples: int
    estimated_seconds: float

    def format(self) -> str:
        """Human-readable rendering."""
        minutes = self.estimated_seconds / 60.0
        return (
            f"~{minutes:.0f} min for {self.steps} ACE steps + "
            f"{self.query_samples} query samples on {self.peers} peers "
            f"({self.physical_nodes}-node underlay)"
        )


def estimate_static_run_cost(
    config: ScenarioConfig,
    steps: int = 10,
    query_samples: int = 32,
    per_peer_step_us: float = 2_000.0,
    per_peer_query_us: float = 25.0,
    dijkstra_us_per_node: float = 1.2,
) -> RunCostEstimate:
    """Estimate the wall time of a static experiment at the given scale.

    The model: one ACE step costs ~*per_peer_step_us* per peer (closure +
    MST + probes), one full-coverage query costs ~*per_peer_query_us* per
    peer reached, and each distinct query source pays one underlay Dijkstra
    (~*dijkstra_us_per_node* per physical node).  Constants were fit on the
    default laptop harness; treat the output as an order of magnitude.
    """
    step_cost = steps * config.peers * per_peer_step_us
    query_cost = (steps + 1) * query_samples * config.peers * per_peer_query_us
    dijkstra_cost = (
        min(query_samples + config.peers, config.peers)
        * config.physical_nodes
        * dijkstra_us_per_node
    )
    total_us = step_cost + query_cost + dijkstra_cost
    return RunCostEstimate(
        peers=config.peers,
        physical_nodes=config.physical_nodes,
        steps=steps,
        query_samples=query_samples,
        estimated_seconds=total_us / 1e6,
    )
