"""Optimization-rate figures (13-16): pure transforms of the depth sweep.

Figures 13/14 plot optimization rate versus closure depth h for several
frequency ratios R at a fixed average degree (C=10 and C=4); Figures 15/16
plot it versus R for several depths.  All four are functions of the
(C, h) trade-off measurements produced by
:func:`repro.experiments.depth_sweep.run_depth_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.optimization import OptimizationTradeoff, minimal_depth_for_gain
from .depth_sweep import DepthSweepResult

__all__ = [
    "rate_vs_depth",
    "rate_vs_frequency_ratio",
    "minimal_depths_table",
    "PAPER_R_VALUES_C10",
    "PAPER_R_VALUES_C4",
    "REPRO_R_VALUES",
]

#: R values on the paper's Figure 13 (C = 10).
PAPER_R_VALUES_C10: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
#: R values on the paper's Figure 14 (C = 4) extend further right.
PAPER_R_VALUES_C4: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0)
#: R values for this reproduction's benches.  Our cost model charges the
#: full periodic table gossip as overhead and our laptop-scale networks have
#: a smaller per-query traffic base than the paper's 8000-peer systems, so
#: the rate-crossing-1 frequency ratios land higher than the paper's 1.5-2;
#: the *shape* claims (R=1 never profitable, minimal h falls as R or C
#: grows) are unchanged.  See EXPERIMENTS.md.
REPRO_R_VALUES: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0)


def rate_vs_depth(
    sweep: DepthSweepResult,
    degree: int,
    r_values: Sequence[float],
) -> Dict[float, List[Tuple[int, float]]]:
    """Figure 13/14 series: for each R, (h, optimization rate) points."""
    tradeoffs = sweep.for_degree(degree)
    if not tradeoffs:
        raise ValueError(f"sweep holds no data for degree {degree}")
    return {
        r: [(t.depth, t.rate(r)) for t in tradeoffs]
        for r in r_values
    }


def rate_vs_frequency_ratio(
    sweep: DepthSweepResult,
    degree: int,
    r_values: Sequence[float],
    depths: Optional[Sequence[int]] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Figure 15/16 series: for each depth h, (R, optimization rate) points."""
    tradeoffs = {t.depth: t for t in sweep.for_degree(degree)}
    if not tradeoffs:
        raise ValueError(f"sweep holds no data for degree {degree}")
    if depths is None:
        depths = sorted(tradeoffs)
    out: Dict[int, List[Tuple[float, float]]] = {}
    for h in depths:
        t = tradeoffs.get(h)
        if t is None:
            raise ValueError(f"sweep holds no depth {h} for degree {degree}")
        out[h] = [(r, t.rate(r)) for r in r_values]
    return out


def minimal_depths_table(
    sweep: DepthSweepResult,
    r_values: Sequence[float],
) -> Dict[int, Dict[float, Optional[int]]]:
    """Minimal h with optimization rate > 1 for every (degree, R).

    The paper's headline observations: at R=1 no depth pays off; the minimal
    h shrinks as R grows; and denser overlays (larger C) need a smaller
    minimal h for the same R.
    """
    out: Dict[int, Dict[float, Optional[int]]] = {}
    for degree in sweep.degrees():
        tradeoffs = sweep.for_degree(degree)
        out[degree] = {
            r: minimal_depth_for_gain(tradeoffs, r) for r in r_values
        }
    return out
