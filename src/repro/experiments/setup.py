"""Common experiment scaffolding: scenario construction from a seeded config.

Every experiment in Section 5 starts from the same ingredients — a physical
topology, a logical overlay of a given average degree on top of it, a query
workload — differing only in parameters.  :func:`build_scenario` constructs
all of it reproducibly from one seed, and :class:`ScenarioConfig.scaled`
honors the ``REPRO_SCALE`` environment knob so the benchmark harness can run
laptop-sized by default and paper-sized on demand.

Worker processes do not regenerate the underlay.  The parallel harness
(:mod:`repro.experiments.parallel`) exports each distinct underlay to shared
memory once and initializes every worker with
:func:`attach_shared_underlays`; :func:`build_scenario` then finds the
attached topology in the per-process registry (keyed by
:func:`underlay_key`) and only builds the cheap per-trial layers — overlay,
catalog, RNG streams — on top of it.  The RNG seed-spawning is identical on
both paths, so a scenario built over an attached underlay is byte-identical
to one built from scratch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..oracle import DelayOracle, make_oracle, parse_oracle_spec
from ..oracle.landmark import LandmarkEmbeddingHandle, LandmarkOracle
from ..perf import counters
from ..sim.workload import ObjectCatalog, QueryWorkload, WorkloadConfig
from ..topology import generators
from ..topology.overlay import (
    Overlay,
    power_law_overlay,
    random_overlay,
    small_world_overlay,
)
from ..topology.physical import PhysicalTopology
from ..topology.shm import SharedTopologyHandle
from ..topology.soa import ArrayOverlay

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "build_underlay",
    "build_oracle",
    "underlay_key",
    "oracle_key",
    "UnderlayKey",
    "OracleKey",
    "attach_shared_underlays",
    "attach_shared_oracles",
    "attach_shared_worlds",
    "attached_underlay_count",
    "attached_oracle_count",
    "clear_attached_underlays",
    "repro_scale",
    "repro_workers",
]

_UNDERLAY_CACHE = 512  # single-source Dijkstra results kept per underlay

_UNDERLAYS = {
    "ba": lambda n, rng: generators.barabasi_albert(
        n, m=2, rng=rng, cache_size=_UNDERLAY_CACHE
    ),
    "waxman": lambda n, rng: generators.waxman(n, rng=rng, cache_size=_UNDERLAY_CACHE),
    "glp": lambda n, rng: generators.glp(n, rng=rng, cache_size=_UNDERLAY_CACHE),
    "ws": lambda n, rng: generators.watts_strogatz(
        n, rng=rng, cache_size=_UNDERLAY_CACHE
    ),
}

_OVERLAYS = {
    "random": random_overlay,
    "power_law": power_law_overlay,
    "small_world": small_world_overlay,
}


def repro_scale(default: float = 1.0) -> float:
    """The ``REPRO_SCALE`` multiplier (>= 1 grows toward paper scale)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def repro_workers(default: int = 1) -> int:
    """The ``REPRO_WORKERS`` knob: worker processes for per-trial fan-out.

    ``1`` (the default) runs trials inline in this process — deterministic
    and fork-free, the right choice for tests.  Larger values let the
    experiment drivers spread independent trials over a process pool; each
    worker rebuilds its world from the (small, picklable)
    :class:`ScenarioConfig`, so no topology is ever pickled.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError("REPRO_WORKERS must be >= 1")
    return value


@dataclass(frozen=True)
class ScenarioConfig:
    """Reproducible description of one simulated world.

    The paper's full configuration is ``physical_nodes=20000`` and
    ``peers=8000``; defaults here are laptop-sized with the same shape.
    """

    physical_nodes: int = 2000
    peers: int = 256
    avg_degree: float = 6.0
    underlay: str = "ba"
    overlay_kind: str = "small_world"
    seed: int = 0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Delay backend spec: ``"exact"`` (default, byte-identical to the
    #: pre-oracle engine) or ``"landmark[:k[:strategy[:estimator]]]"`` (see
    #: :func:`repro.oracle.parse_oracle_spec`).
    oracle: str = "exact"
    #: Overlay engine: ``"object"`` (dict-of-sets reference implementation)
    #: or ``"array"`` (struct-of-arrays :class:`~repro.topology.soa.ArrayOverlay`
    #: for large peer counts).  Both produce byte-identical figures.
    engine: str = "object"

    def scaled(self, factor: Optional[float] = None) -> "ScenarioConfig":
        """Scale node counts by *factor* (default: the REPRO_SCALE env)."""
        f = repro_scale() if factor is None else factor
        return replace(
            self,
            physical_nodes=max(64, int(self.physical_nodes * f)),
            peers=max(16, int(self.peers * f)),
        )


@dataclass
class Scenario:
    """A constructed world: underlay, overlay, workload, and RNG streams."""

    config: ScenarioConfig
    physical: PhysicalTopology
    overlay: Overlay
    catalog: ObjectCatalog
    rng: np.random.Generator

    def fresh_overlay(self) -> Overlay:
        """Deep copy of the initial overlay for an independent treatment arm."""
        return self.overlay.copy()

    def sample_sources(self, n: int) -> List[int]:
        """Draw *n* query sources (with replacement) from live peers."""
        peers = self.overlay.peers()
        idx = self.rng.integers(0, len(peers), size=n)
        return [peers[int(i)] for i in idx]


#: Identity of an underlay independent of overlay/workload parameters: two
#: configs with the same key deterministically generate the same graph.
UnderlayKey = Tuple[str, int, int]

#: Identity of a (non-exact) oracle: the underlay it embeds plus the
#: canonical spec string.  Selection draws come from a stream spawned off
#: the scenario seed (part of the underlay key), so configs sharing this
#: key deterministically build the identical oracle.
OracleKey = Tuple[UnderlayKey, str]

#: Per-process registry of shared-memory handles offered to this process
#: (pool initializer) and of the underlays actually attached from them.
#: Attachment is lazy — a worker maps only the underlays its trials touch —
#: and cached, so each segment set is mapped at most once per process.
_SHARED_HANDLES: Dict[UnderlayKey, SharedTopologyHandle] = {}
_ATTACHED_UNDERLAYS: Dict[UnderlayKey, PhysicalTopology] = {}

#: Same lazy registry pattern for exported landmark embeddings.
_SHARED_ORACLE_HANDLES: Dict[OracleKey, LandmarkEmbeddingHandle] = {}
_ATTACHED_ORACLES: Dict[OracleKey, DelayOracle] = {}


def underlay_key(config: ScenarioConfig) -> UnderlayKey:
    """The underlay identity of *config* (generator kind, size, seed).

    The underlay RNG stream is spawned from the scenario seed independently
    of the overlay/workload streams, so every config sharing this key builds
    the identical physical graph — which is what makes one shared-memory
    export reusable across e.g. a sweep over average degrees.
    """
    return (config.underlay, config.physical_nodes, config.seed)


def build_underlay(config: ScenarioConfig) -> PhysicalTopology:
    """Generate just the physical underlay of *config*, deterministically.

    Uses the same spawned seed stream as :func:`build_scenario`, so the
    graph is identical to the one a full scenario build would produce.
    """
    if config.underlay not in _UNDERLAYS:
        raise ValueError(
            f"unknown underlay {config.underlay!r}; choose from {sorted(_UNDERLAYS)}"
        )
    underlay_seed = np.random.SeedSequence(config.seed).spawn(4)[0]
    counters.underlay_builds += 1
    return _UNDERLAYS[config.underlay](
        config.physical_nodes, np.random.default_rng(underlay_seed)
    )


def oracle_key(config: ScenarioConfig) -> OracleKey:
    """The oracle identity of *config* (underlay key + canonical spec).

    The spec is canonicalized first, so ``"landmark"`` and
    ``"landmark:16:maxmin:midpoint"`` share one key (they build the same
    oracle) and one shared-memory export serves both.
    """
    return (underlay_key(config), parse_oracle_spec(config.oracle).canonical())


def _oracle_rng(config: ScenarioConfig) -> np.random.Generator:
    """The seeded stream feeding oracle landmark selection.

    Stream #4 of the scenario seed — spawned *after* the four historical
    streams, whose values a ``SeedSequence`` derives purely from their
    spawn position, so adding this stream leaves underlay/overlay/workload/
    run draws untouched and ``oracle="exact"`` scenarios byte-identical.
    """
    return np.random.default_rng(np.random.SeedSequence(config.seed).spawn(5)[4])


def build_oracle(config: ScenarioConfig, physical: PhysicalTopology) -> DelayOracle:
    """Build just the delay oracle of *config* over an existing underlay.

    Deterministic: the landmark selection stream is spawned from the
    scenario seed, so every call with equal config and equal underlay
    produces the identical oracle (same landmarks, same embedding bytes) —
    which is what makes a parent-exported embedding interchangeable with a
    worker-built one.
    """
    return make_oracle(config.oracle, physical, rng=_oracle_rng(config))


def attach_shared_underlays(
    handles: Mapping[UnderlayKey, SharedTopologyHandle],
) -> None:
    """Process-pool initializer: register exported underlays for this worker.

    Registration is cheap (the handles are a few hundred bytes each); the
    actual segment mapping happens lazily, the first time
    :func:`build_scenario` needs a given key, and is cached for the rest of
    the process's life.  A worker therefore maps only the underlays its
    trials touch, never regenerates one, and — because the attach happens
    inside a trial — the attach shows up in that trial's perf snapshot and
    survives the merge back into the parent's fleet-wide counters.
    """
    _SHARED_HANDLES.update(handles)


def attach_shared_oracles(
    handles: Mapping[OracleKey, LandmarkEmbeddingHandle],
) -> None:
    """Register exported landmark embeddings for this worker (lazy attach).

    The counterpart of :func:`attach_shared_underlays` for the oracle
    layer: actual segment mapping happens the first time
    :func:`build_scenario` needs a given key, so a worker maps only the
    embeddings its trials touch and never re-runs the embedding solves.
    """
    _SHARED_ORACLE_HANDLES.update(handles)


def attach_shared_worlds(
    underlays: Mapping[UnderlayKey, SharedTopologyHandle],
    oracles: Mapping[OracleKey, LandmarkEmbeddingHandle],
) -> None:
    """Process-pool initializer registering both shared layers at once."""
    attach_shared_underlays(underlays)
    attach_shared_oracles(oracles)


def _attached_underlay(key: UnderlayKey) -> Optional[PhysicalTopology]:
    """The attached underlay for *key*, mapping its segments on first use."""
    physical = _ATTACHED_UNDERLAYS.get(key)
    if physical is None:
        handle = _SHARED_HANDLES.get(key)
        if handle is not None:
            physical = PhysicalTopology.attach_shared(handle)
            _ATTACHED_UNDERLAYS[key] = physical
    return physical


def _attached_oracle(
    key: OracleKey, physical: PhysicalTopology
) -> Optional[DelayOracle]:
    """The attached oracle for *key* over *physical*, mapped on first use.

    The cached instance is only reused while it answers for the same
    underlay object; a different resolved underlay (e.g. an explicitly
    passed one) gets a fresh zero-copy attach around the same embedding.
    """
    oracle = _ATTACHED_ORACLES.get(key)
    if oracle is not None and oracle.physical is physical:
        return oracle
    handle = _SHARED_ORACLE_HANDLES.get(key)
    if handle is None:
        return None
    oracle = LandmarkOracle.attach_shared(handle, physical)
    _ATTACHED_ORACLES[key] = oracle
    return oracle


def attached_underlay_count() -> int:
    """How many shared underlays this process has attached (for tests)."""
    return len(_ATTACHED_UNDERLAYS)


def attached_oracle_count() -> int:
    """How many shared embeddings this process has attached (for tests)."""
    return len(_ATTACHED_ORACLES)


def clear_attached_underlays() -> None:
    """Drop this process's shared-handle and attached-instance registries.

    Covers both layers (underlays and oracle embeddings).  Dropping the
    registries releases the attached instances and thereby this process's
    segment mappings; the exporter's segments are untouched.
    """
    _SHARED_HANDLES.clear()
    _ATTACHED_UNDERLAYS.clear()
    _SHARED_ORACLE_HANDLES.clear()
    _ATTACHED_ORACLES.clear()


def build_scenario(
    config: ScenarioConfig, physical: Optional[PhysicalTopology] = None
) -> Scenario:
    """Construct a scenario deterministically from its config.

    Independent RNG streams (via ``numpy`` seed sequences) are used for the
    underlay, overlay, workload and runtime randomness, so changing e.g. the
    overlay degree does not perturb the underlay.

    The underlay itself is resolved in priority order: an explicitly passed
    *physical* (caller asserts it matches the config), this process's
    attached shared-memory registry, and finally the seeded generator.  All
    three paths yield the identical graph, so results do not depend on which
    one served the scenario.
    """
    if config.underlay not in _UNDERLAYS:
        raise ValueError(
            f"unknown underlay {config.underlay!r}; choose from {sorted(_UNDERLAYS)}"
        )
    if config.overlay_kind not in _OVERLAYS:
        raise ValueError(
            f"unknown overlay kind {config.overlay_kind!r}; "
            f"choose from {sorted(_OVERLAYS)}"
        )
    if config.engine not in ("object", "array"):
        raise ValueError(
            f"unknown engine {config.engine!r}; choose 'object' or 'array'"
        )
    oracle_spec = parse_oracle_spec(config.oracle)  # fail fast on typos
    seeds = np.random.SeedSequence(config.seed).spawn(4)
    underlay_rng, overlay_rng, workload_rng, run_rng = (
        np.random.default_rng(s) for s in seeds
    )
    if physical is None:
        physical = _attached_underlay(underlay_key(config))
    if physical is None:
        counters.underlay_builds += 1
        physical = _UNDERLAYS[config.underlay](config.physical_nodes, underlay_rng)
    overlay = _OVERLAYS[config.overlay_kind](
        physical, config.peers, avg_degree=config.avg_degree, rng=overlay_rng
    )
    if oracle_spec.kind != "exact":
        # The default ExactOracle installed by the Overlay constructor is
        # already correct for "exact" (and swapping would needlessly drop
        # cost memos); only non-exact backends are resolved — attached from
        # shared memory when the pool initializer offered one, built from
        # the seeded oracle stream otherwise.  Both paths yield identical
        # embeddings, so results do not depend on which one served.
        oracle = _attached_oracle(oracle_key(config), physical)
        if oracle is None:
            oracle = build_oracle(config, physical)
        overlay.use_oracle(oracle)
    if config.engine == "array":
        # Generation always runs on the object engine (identical RNG draws),
        # then the finished overlay is lowered into flat arrays.  The oracle
        # and epoch carry over, so downstream code sees the same world.
        overlay = ArrayOverlay.from_overlay(overlay)
    catalog = ObjectCatalog(overlay.peers(), config.workload, workload_rng)
    return Scenario(
        config=config,
        physical=physical,
        overlay=overlay,
        catalog=catalog,
        rng=run_rng,
    )
