"""The paper's worked six-peer example (Figures 5-6, Tables 1-2).

Section 3.4 walks a query from peer F through overlay trees built in
1-neighbor and 2-neighbor closures on a six-peer overlay (A..F), showing that

* blind flooding traverses three paths twice,
* with h = 1 the unnecessary messages drop "from 3 to 1", and
* with h = 2 "no path is traversed twice" and the total cost drops further
  (the paper's Table 2 totals 39 cost units on its link weights).

The scanned source's figures are not fully recoverable, so this module
builds a six-peer instance with the same *structure* — a mismatched overlay
whose logical links have explicit underlay delays — and exposes the
walkthrough programmatically.  The three headline relations above are
asserted by the test suite and reproduced by
``benchmarks/bench_table1_table2.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.ace import AceConfig, AceProtocol
from ..search.batch import propagate_single
from ..search.flooding import blind_flooding_strategy
from ..search.tree_routing import ace_strategy
from ..topology.overlay import Overlay
from ..topology.physical import PhysicalTopology

__all__ = [
    "PEER_NAMES",
    "build_example_overlay",
    "ExampleWalkthrough",
    "run_walkthrough",
]

#: The paper labels its six peers A through F; we map them to ids 0-5.
PEER_NAMES: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F")

# Logical links with their underlay delays.  The A-B link is deliberately
# mismatched: its direct delay (10) exceeds the A-C-B route (4 + 2), the
# Figure 2 situation where one logical hop crosses a long physical path that
# cheaper hops could cover.
_EXAMPLE_LINKS: Tuple[Tuple[str, str, float], ...] = (
    ("A", "B", 10.0),
    ("A", "C", 4.0),
    ("B", "C", 2.0),
    ("B", "D", 7.0),
    ("C", "E", 3.0),
    ("D", "E", 2.0),
    ("D", "F", 8.0),
    ("E", "F", 6.0),
)


def _name_to_id(name: str) -> int:
    return PEER_NAMES.index(name)


def build_example_overlay() -> Overlay:
    """Construct the six-peer example.

    The underlay *is* the drawn weighted graph (each peer on its own host);
    logical link costs are therefore underlay shortest-path delays, which is
    how the measured cost of the mismatched A-B connection (6, via C) ends
    up below its drawn physical length — the mismatch ACE exploits.
    """
    edges = [(_name_to_id(u), _name_to_id(v)) for u, v, _ in _EXAMPLE_LINKS]
    delays = [d for _, _, d in _EXAMPLE_LINKS]
    physical = PhysicalTopology(len(PEER_NAMES), edges, delays)
    overlay = Overlay(physical, {i: i for i in range(len(PEER_NAMES))})
    for (u, v), _d in zip(edges, delays):
        overlay.connect(u, v)
    return overlay


@dataclass(frozen=True)
class ExampleWalkthrough:
    """Result of replaying the Figure 5/6 query for one routing scheme."""

    scheme: str
    source: str
    query_paths: Tuple[Tuple[str, str], ...]
    total_cost: float
    messages: int
    duplicate_messages: int
    reached: Tuple[str, ...]
    trees: Mapping[str, Tuple[str, ...]]

    def rows(self) -> List[Tuple[str, str, float]]:
        """(from, to, cost) rows in the style of the paper's Tables 1-2."""
        overlay = build_example_overlay()
        return [
            (u, v, overlay.cost(_name_to_id(u), _name_to_id(v)))
            for u, v in self.query_paths
        ]


def run_walkthrough(
    depth: Optional[int] = None, source: str = "F"
) -> ExampleWalkthrough:
    """Replay the example query from *source*.

    ``depth=None`` runs blind flooding; ``depth=h`` builds every peer's
    overlay tree in its h-neighbor closure first (Phase 2 only — the
    walkthrough illustrates routing, not Phase-3 rewiring).
    """
    if source not in PEER_NAMES:
        raise ValueError(f"unknown peer {source!r}")
    overlay = build_example_overlay()
    src = _name_to_id(source)

    trees: Dict[str, Tuple[str, ...]] = {}
    if depth is None:
        strategy = blind_flooding_strategy(overlay)
        scheme = "blind-flooding"
        for name in PEER_NAMES:
            nbrs = overlay.neighbors(_name_to_id(name))
            trees[name] = tuple(sorted(PEER_NAMES[n] for n in nbrs))
    else:
        protocol = AceProtocol(
            overlay, AceConfig(depth=depth), rng=np.random.default_rng(0)
        )
        protocol.rebuild_all_trees()
        strategy = ace_strategy(protocol)
        scheme = f"ace-h{depth}"
        for name in PEER_NAMES:
            flooding = protocol.flooding_neighbors(_name_to_id(name))
            trees[name] = tuple(sorted(PEER_NAMES[n] for n in flooding))

    prop = propagate_single(overlay, src, strategy, ttl=None)
    paths = []
    for peer, parent in sorted(prop.parent.items()):
        paths.append((PEER_NAMES[parent], PEER_NAMES[peer]))
    return ExampleWalkthrough(
        scheme=scheme,
        source=source,
        query_paths=tuple(paths),
        total_cost=prop.traffic_cost,
        messages=prop.messages,
        duplicate_messages=prop.duplicate_messages,
        reached=tuple(sorted(PEER_NAMES[p] for p in prop.reached)),
        trees=trees,
    )
