"""Terminal plotting: sparklines and multi-series line charts in text.

The benches and examples print their series as tables; for eyeballing the
*shape* of a convergence curve or a sweep, a picture helps.  These helpers
render series with plain Unicode so figure shapes are visible directly in
``bench_output.txt`` and CLI output, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["sparkline", "line_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a one-line sparkline.

    Values are min-max normalized over the series; ``width`` (optional)
    downsamples long series by averaging buckets.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(vals[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(_SPARK_LEVELS[int(round((v - lo) * scale))] for v in vals)


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    width: Optional[int] = None,
    y_label_width: int = 10,
) -> str:
    """Render one or more series as a text line chart.

    All series share the y-axis (global min/max).  Each series gets a
    distinct marker; a legend line follows the chart.  ``width`` truncates
    or pads the x-axis to a fixed number of columns (defaults to the
    longest series).
    """
    if height < 2:
        raise ValueError("height must be >= 2")
    if not series:
        return ""
    markers = "*o+x#@%&"
    lengths = [len(v) for v in series.values()]
    n = width or max(lengths)
    if n == 0:
        return ""

    all_values = [float(v) for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo

    grid: List[List[str]] = [[" "] * n for _ in range(height)]
    for idx, (_name, vs) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for x, v in enumerate(list(vs)[:n]):
            if span == 0:
                row = height - 1
            else:
                frac = (float(v) - lo) / span
                row = height - 1 - int(round(frac * (height - 1)))
            grid[row][x] = marker

    lines: List[str] = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:.3g}".rjust(y_label_width)
        elif r == height - 1:
            label = f"{lo:.3g}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_label_width + "+" + "-" * n)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (y_label_width + 1) + legend)
    return "\n".join(lines)
