"""Landmark-based topology matching (related work [21], Xu et al.).

"Researchers have also proposed to measure the latency between each peer to
multiple stable Internet servers called landmarks.  The measured latency is
used to determine the distance between peers.  This measurement is conducted
in a global P2P domain and needs the support of additional landmarks."

The paper criticizes the approach: the landmark-vector *estimate* of
peer-to-peer distance is inaccurate, and the global measurement does not
scale.  This module implements the scheme so the criticism is measurable:

* each peer's landmark delay vector comes from a
  :class:`~repro.oracle.landmark.LandmarkOracle` embedding (random
  selection, Euclidean estimator — the exact configuration this module
  historically computed privately, including the seeded draw order);
* the estimated distance between two peers is the Euclidean distance of
  their landmark vectors (global network positioning's standard proxy);
* :class:`LandmarkMatcher` rewires each peer toward its estimated-nearest
  candidates, analogous to ACE Phase 3 but driven by estimates instead of
  direct probes;
* :meth:`LandmarkMatcher.estimation_error` quantifies the mapping
  inaccuracy the paper's Section 2 points out.

Since the vector/estimate machinery moved into :mod:`repro.oracle`, this
module is a thin adapter: ``estimation_error()`` and the pluggable
:class:`~repro.oracle.landmark.LandmarkOracle` backend can never diverge,
because they are the same code.  Assigning ``matcher.landmarks`` directly
(the old white-box override) still works through a deprecation shim that
rebuilds the oracle around the given hosts.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..oracle.landmark import LandmarkOracle
from ..rng import ensure_rng
from ..topology.overlay import Overlay

__all__ = ["LandmarkReport", "LandmarkMatcher"]


@dataclass
class LandmarkReport:
    """Outcome of one landmark-based optimization round."""

    step_index: int
    rewires: int = 0
    probe_overhead: float = 0.0


class LandmarkMatcher:
    """Rewire an overlay using landmark-vector distance estimates."""

    def __init__(
        self,
        overlay: Overlay,
        n_landmarks: int = 8,
        rng: Optional[np.random.Generator] = None,
        candidates_per_step: int = 3,
        min_degree: int = 2,
        oracle: Optional[LandmarkOracle] = None,
    ) -> None:
        if n_landmarks < 1:
            raise ValueError("need at least one landmark")
        self.overlay = overlay
        self.rng = ensure_rng(rng)
        self.candidates_per_step = candidates_per_step
        self.min_degree = min_degree
        if oracle is None:
            # random + euclidean is the historical configuration of this
            # module, and the oracle's random strategy consumes the RNG with
            # the identical draw — same seed, same landmark set as ever.
            oracle = LandmarkOracle(
                overlay.physical,
                n_landmarks=n_landmarks,
                strategy="random",
                estimator="euclidean",
                rng=self.rng,
            )
        elif oracle.physical is not overlay.physical:
            raise ValueError("oracle answers for a different underlay")
        self._oracle = oracle
        self._vectors: Dict[int, np.ndarray] = {}
        self._steps_run = 0

    # ------------------------------------------------------------------

    @property
    def steps_run(self) -> int:
        """Completed optimization rounds."""
        return self._steps_run

    @property
    def oracle(self) -> LandmarkOracle:
        """The landmark oracle whose embedding backs the estimates."""
        return self._oracle

    @property
    def landmarks(self) -> List[int]:
        """Landmark host ids (a copy — the oracle's embedding is immutable)."""
        return list(self._oracle.landmarks)

    @landmarks.setter
    def landmarks(self, hosts: Sequence[int]) -> None:
        """Deprecated white-box override: rebuilds the oracle around *hosts*.

        Kept for one release so code that historically assigned
        ``matcher.landmarks`` directly keeps working; construct with an
        explicit ``oracle=LandmarkOracle(..., landmarks=hosts)`` instead.
        """
        warnings.warn(
            "assigning LandmarkMatcher.landmarks is deprecated; pass "
            "oracle=LandmarkOracle(..., landmarks=...) to the constructor",
            DeprecationWarning,
            stacklevel=2,
        )
        self._oracle = LandmarkOracle(
            self.overlay.physical,
            landmarks=list(hosts),
            strategy=self._oracle.strategy,
            estimator=self._oracle.estimator,
        )
        self._vectors.clear()

    def vector_of(self, peer: int) -> np.ndarray:
        """The peer's landmark delay vector (embedding column, cached)."""
        vec = self._vectors.get(peer)
        if vec is None:
            host = self.overlay.host_of(peer)
            vec = np.array(self._oracle.vector_of(host), dtype=float)
            self._vectors[peer] = vec
        return vec

    def estimated_distance(self, a: int, b: int) -> float:
        """Landmark-space estimate of the a-b delay (normalized Euclidean)."""
        va, vb = self.vector_of(a), self.vector_of(b)
        return float(np.linalg.norm(va - vb) / math.sqrt(len(self.landmarks)))

    def probe_cost_of(self, peer: int) -> float:
        """Traffic of measuring one peer's landmark vector (round trips)."""
        return 2.0 * float(np.sum(self.vector_of(peer)))

    # ------------------------------------------------------------------

    def estimation_error(self, samples: int = 64) -> float:
        """Mean relative error of the estimate vs. the true delay.

        This is the "mapping accuracy is not guaranteed" criticism made
        quantitative: 0 would be a perfect embedding; real values are
        substantial because landmark distance is only a lower bound on the
        true (shortest-path) delay.
        """
        peers = self.overlay.peers()
        if len(peers) < 2:
            return 0.0
        # Draw all sample pairs first, then resolve the true delays in
        # batched sweeps grouped by source peer (one underlay query per
        # distinct source instead of one per sample).
        pairs = [
            (peers[int(i)], peers[int(j)])
            for i, j in (
                self.rng.integers(0, len(peers), size=2) for _ in range(samples)
            )
        ]
        by_source: Dict[int, List[int]] = {}
        for a, b in pairs:
            if a != b:
                by_source.setdefault(a, []).append(b)
        true_costs = {
            a: self.overlay.costs_from(a, sorted(set(bs)))
            for a, bs in by_source.items()
        }
        total, count = 0.0, 0
        for a, b in pairs:
            if a == b:
                continue
            true = true_costs[a][b]
            if true <= 0:
                continue
            est = self.estimated_distance(a, b)
            total += abs(est - true) / true
            count += 1
        return total / count if count else 0.0

    # ------------------------------------------------------------------

    def optimize_peer(self, peer: int, report: LandmarkReport) -> bool:
        """Replace the peer's estimated-farthest neighbor if a random
        candidate looks closer *in landmark space*."""
        neighbors = sorted(self.overlay.neighbors(peer))
        if not neighbors:
            return False
        report.probe_overhead += self.probe_cost_of(peer)
        worst = max(neighbors, key=lambda n: (self.estimated_distance(peer, n), n))
        if self.overlay.degree(worst) <= self.min_degree:
            return False
        exclude = set(neighbors) | {peer}
        pool = [p for p in self.overlay.peers() if p not in exclude]
        if not pool:
            return False
        k = min(self.candidates_per_step, len(pool))
        idx = self.rng.choice(len(pool), size=k, replace=False)
        threshold = self.estimated_distance(peer, worst)
        best: Optional[int] = None
        best_est = threshold
        for i in idx:
            cand = pool[int(i)]
            est = self.estimated_distance(peer, cand)
            if est < best_est:
                best, best_est = cand, est
        if best is None:
            return False
        self.overlay.connect(peer, best)
        self.overlay.disconnect(peer, worst)
        report.rewires += 1
        return True

    def step(self) -> LandmarkReport:
        """One optimization round at every peer, random order."""
        order = self.overlay.peers()
        self.rng.shuffle(order)
        report = LandmarkReport(step_index=self._steps_run)
        for peer in order:
            if self.overlay.has_peer(peer) and self.overlay.degree(peer) > 0:
                self.optimize_peer(peer, report)
        self._steps_run += 1
        return report

    def run(self, steps: int) -> List[LandmarkReport]:
        """Run several rounds."""
        return [self.step() for _ in range(steps)]
