"""LTM — Location-aware Topology Matching (simplified comparator).

Reference [9] of the paper: "each peer issues a detector in a small region so
that the peers receiving the detector can record relative delay information.
Based on the delay information, a receiver can detect and cut most of the
inefficient and redundant logical links, and add closer nodes as its direct
neighbors."  The paper positions LTM as its own earlier alternative that
"creates slightly more overhead and requires that the clocks in all peers be
synchronized."

This module implements the scheme's core mechanism at the same abstraction
level as our ACE: each peer floods a TTL-2 detector, learns the delays of
the logical triangles it sits in, and **cuts the most expensive link of each
triangle it is an endpoint of** (the link a query would traverse redundantly
— Section 3.1's L-M situation in Figure 1).  Cutting the triangle's longest
edge can never disconnect the overlay and never shrinks the search scope,
because the two shorter sides remain.

The clock-synchronization requirement and the probabilistic
connection-adding of the full LTM are out of scope; the comparison
benchmarks therefore pair LTM's cutting with blind flooding, which is how
its traffic saving materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from ..rng import ensure_rng
from ..topology.overlay import Overlay

__all__ = ["LtmReport", "LtmProtocol"]

#: Detector scope: the original scheme floods detectors with TTL 2.
DETECTOR_TTL = 2


@dataclass
class LtmReport:
    """Outcome of one LTM round."""

    step_index: int
    cuts: int = 0
    detector_overhead: float = 0.0
    triangles_seen: int = 0


class LtmProtocol:
    """Triangle-cutting topology matcher (simplified LTM)."""

    def __init__(
        self,
        overlay: Overlay,
        rng: Optional[np.random.Generator] = None,
        min_degree: int = 2,
        round_trip_factor: float = 1.0,
    ) -> None:
        self.overlay = overlay
        self.rng = ensure_rng(rng)
        self.min_degree = min_degree
        self.round_trip_factor = round_trip_factor
        self._steps_run = 0

    @property
    def steps_run(self) -> int:
        """Number of completed LTM rounds."""
        return self._steps_run

    def _detector_overhead(self, peer: int) -> float:
        """Traffic of one TTL-2 detector flood from *peer*.

        The detector travels every logical link out of the peer and is
        re-flooded once by each direct neighbor (TTL 2), so the charge is
        the peer's link costs plus its neighbors' link costs.
        """
        nbrs = sorted(self.overlay.neighbors(peer))
        total = sum(self.overlay.costs_from(peer, nbrs).values())
        for nbr in nbrs:
            seconds = [s for s in sorted(self.overlay.neighbors(nbr)) if s != peer]
            if seconds:
                total += sum(self.overlay.costs_from(nbr, seconds).values())
        return total * self.round_trip_factor

    def optimize_peer(self, peer: int, report: LtmReport) -> int:
        """One peer's detection round: cut its worst triangle edges.

        The peer only ever cuts links it is an endpoint of (the protocol is
        distributed); it cuts link (peer, b) when some triangle
        peer-a-b exists in which (peer, b) is strictly the most expensive
        side, and the cut respects the degree floor.
        """
        report.detector_overhead += self._detector_overhead(peer)
        cuts = 0
        neighbors = sorted(self.overlay.neighbors(peer))
        d_peer = self.overlay.costs_from(peer, neighbors)
        # Batch the closing-side costs up front: the peer only ever cuts its
        # own links, so (a, b) edges — and their costs — are invariant for
        # the whole round.  One costs_from sweep per apex replaces a scalar
        # cost() fault per triangle.
        d_close: dict = {}
        for i, a in enumerate(neighbors):
            closing = [b for b in neighbors[i + 1 :] if self.overlay.has_edge(a, b)]
            if closing:
                row = self.overlay.costs_from(a, closing)
                for b in closing:
                    d_close[(a, b)] = row[b]
        for i, a in enumerate(neighbors):
            if not self.overlay.has_edge(peer, a):
                continue
            for b in neighbors[i + 1 :]:
                if not self.overlay.has_edge(peer, b):
                    continue
                if (a, b) not in d_close:
                    continue
                report.triangles_seen += 1
                d_pa = d_peer[a]
                d_pb = d_peer[b]
                d_ab = d_close[(a, b)]
                # Cut the strictly longest side if it is incident to us.
                if d_pb > d_pa and d_pb > d_ab:
                    victim = b
                elif d_pa > d_pb and d_pa > d_ab:
                    victim = a
                else:
                    continue
                if (
                    self.overlay.degree(peer) > self.min_degree
                    and self.overlay.degree(victim) > self.min_degree
                ):
                    self.overlay.disconnect(peer, victim)
                    cuts += 1
        report.cuts += cuts
        return cuts

    def step(self) -> LtmReport:
        """One LTM round at every peer, in random order."""
        order = self.overlay.peers()
        self.rng.shuffle(order)
        report = LtmReport(step_index=self._steps_run)
        for peer in order:
            if self.overlay.has_peer(peer):
                self.optimize_peer(peer, report)
        self._steps_run += 1
        return report

    def run(self, steps: int) -> List[LtmReport]:
        """Run several rounds; returns one report per round."""
        return [self.step() for _ in range(steps)]
