"""Comparison schemes and extensions from the paper's related work.

* :mod:`~repro.extensions.aoto` — the AOTO precursor of ACE ([8]).
* :mod:`~repro.extensions.ltm` — simplified Location-aware Topology
  Matching ([9]), a triangle-cutting comparator.
* :mod:`~repro.extensions.hpf` — Hybrid Periodical Flooding ([23]),
  weighted partial flooding.
* :mod:`~repro.extensions.gia` — Gia capacity-aware adaptation ([4]),
  which fixes a *different* matching problem.
* :mod:`~repro.extensions.landmark` — landmark-vector topology matching
  ([21]), including the mapping-inaccuracy measurement the paper's
  criticism rests on.
"""

from .aoto import AotoProtocol, aoto_config
from .gia import GiaAdaptation, GiaReport, assign_capacities
from .hpf import HPF_WEIGHTINGS, hpf_strategy
from .landmark import LandmarkMatcher, LandmarkReport
from .ltm import LtmProtocol, LtmReport

__all__ = [
    "AotoProtocol",
    "aoto_config",
    "LtmProtocol",
    "LtmReport",
    "hpf_strategy",
    "HPF_WEIGHTINGS",
    "LandmarkMatcher",
    "LandmarkReport",
    "GiaAdaptation",
    "GiaReport",
    "assign_capacities",
]
