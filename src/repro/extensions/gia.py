"""Gia-style capacity-aware topology adaptation (related work [4]).

Chawathe, Ratnasamy, Breslau, Lanham & Shenker, "Making Gnutella-like P2P
Systems Scalable" (SIGCOMM 2003): a topology adaptation algorithm ensures
"that high capacity nodes are indeed the ones with high degree and low
capacity nodes are within short reach of high capacity nodes".

The paper's Section 2 positions Gia precisely: "It addresses a different
matching problem in overlay networks, but does not address the topology
mismatching problem between the overlay and physical networks."  This
module implements the adaptation so that the benches can show both halves
of that sentence: Gia raises the capacity-degree correlation (its goal) but
leaves the underlay cost of the overlay — and hence flooding traffic —
essentially untouched, while ACE does the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rng import ensure_rng
from ..topology.overlay import Overlay

__all__ = ["GiaReport", "GiaAdaptation", "assign_capacities"]


def assign_capacities(
    peers: Sequence[int],
    rng: np.random.Generator,
    levels: Sequence[float] = (1.0, 10.0, 100.0, 1000.0),
    weights: Sequence[float] = (0.2, 0.45, 0.3, 0.05),
) -> Dict[int, float]:
    """Draw per-peer capacities from Gia's measured multi-level profile.

    The default levels/weights follow the Saroiu-measurement-derived
    distribution used in the Gia paper (capacities spanning three orders of
    magnitude).
    """
    if len(levels) != len(weights):
        raise ValueError("levels and weights must align")
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    draws = rng.choice(len(levels), size=len(peers), p=probs)
    return {p: float(levels[int(d)]) for p, d in zip(peers, draws)}


@dataclass
class GiaReport:
    """Outcome of one adaptation round."""

    step_index: int
    rewires: int = 0
    satisfied_peers: int = 0


class GiaAdaptation:
    """Capacity-driven neighbor adaptation (simplified Gia).

    Each peer has a capacity and wants ``degree <= capacity_share``; an
    unsatisfied peer (degree too high for its capacity, or capacity to
    spare) adapts by connecting toward higher-capacity candidates and
    dropping its lowest-capacity neighbor.  Physical locality plays no role
    — exactly why Gia does not repair the mismatch.
    """

    def __init__(
        self,
        overlay: Overlay,
        capacities: Optional[Dict[int, float]] = None,
        rng: Optional[np.random.Generator] = None,
        degree_per_capacity: float = 2.0,
        min_degree: int = 2,
        max_degree: int = 32,
    ) -> None:
        self.overlay = overlay
        self.rng = ensure_rng(rng)
        if capacities is None:
            capacities = assign_capacities(overlay.peers(), self.rng)
        self.capacities = capacities
        self.degree_per_capacity = degree_per_capacity
        self.min_degree = min_degree
        self.max_degree = max_degree
        self._steps_run = 0

    @property
    def steps_run(self) -> int:
        """Completed adaptation rounds."""
        return self._steps_run

    def target_degree(self, peer: int) -> int:
        """The degree the peer's capacity entitles it to."""
        raw = self.degree_per_capacity * np.log10(
            1.0 + self.capacities.get(peer, 1.0)
        )
        return int(np.clip(round(self.min_degree + raw), self.min_degree,
                           self.max_degree))

    def capacity_degree_correlation(self) -> float:
        """Pearson correlation between capacity and logical degree."""
        peers = self.overlay.peers()
        if len(peers) < 3:
            return 0.0
        caps = np.array([np.log10(self.capacities[p]) for p in peers])
        degs = np.array([float(self.overlay.degree(p)) for p in peers])
        if caps.std() == 0 or degs.std() == 0:
            return 0.0
        return float(np.corrcoef(caps, degs)[0, 1])

    def optimize_peer(self, peer: int, report: GiaReport) -> bool:
        """One adaptation attempt: move a link toward higher capacity."""
        degree = self.overlay.degree(peer)
        target = self.target_degree(peer)
        if degree >= target:
            report.satisfied_peers += 1
            # Over-subscribed: shed the lowest-capacity neighbor.
            if degree > target:
                victim = min(
                    self.overlay.neighbors(peer),
                    key=lambda n: (self.capacities.get(n, 0.0), n),
                )
                if (
                    self.overlay.degree(victim) > self.min_degree
                    and degree > self.min_degree
                ):
                    self.overlay.disconnect(peer, victim)
                    report.rewires += 1
                    return True
            return False
        # Capacity to spare: connect toward a high-capacity candidate.
        exclude = set(self.overlay.neighbors(peer)) | {peer}
        pool = [p for p in self.overlay.peers() if p not in exclude]
        if not pool:
            return False
        k = min(4, len(pool))
        idx = self.rng.choice(len(pool), size=k, replace=False)
        best = max(
            (pool[int(i)] for i in idx),
            key=lambda c: (self.capacities.get(c, 0.0), c),
        )
        if self.overlay.degree(best) >= self.max_degree:
            return False
        self.overlay.connect(peer, best)
        report.rewires += 1
        return True

    def step(self) -> GiaReport:
        """One adaptation round at every peer, random order."""
        order = self.overlay.peers()
        self.rng.shuffle(order)
        report = GiaReport(step_index=self._steps_run)
        for peer in order:
            if self.overlay.has_peer(peer):
                self.optimize_peer(peer, report)
        self._steps_run += 1
        return report

    def run(self, steps: int) -> List[GiaReport]:
        """Run several rounds."""
        return [self.step() for _ in range(steps)]
