"""AOTO — Adaptive Overlay Topology Optimization (the ACE precursor).

Reference [8] of the paper: "A preliminary design of ACE, which is called
AOTO, has been discussed in [Liu et al., GLOBECOM 2003]."  AOTO has two
components:

* **Selective flooding**: a minimum spanning tree over the peer and its
  immediate logical neighbors only (h = 1), exactly ACE's Phase 2; and
* **Active topology optimization**: a non-flooding neighbor C is replaced by
  one of C's neighbors when that candidate is strictly closer — the Figure
  4(b) swap — with *no* "keep both" branch (ACE's Figure 4(c) is the
  refinement that distinguishes the two schemes).

We therefore express AOTO as an :class:`~repro.core.ace.AceProtocol`
configuration: depth 1, keep-both disabled.  The benchmark comparing the
two (:mod:`benchmarks.bench_ablation_aoto_vs_ace`) is the ablation the
related-work section implies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..core.ace import AceConfig, AceProtocol
from ..topology.overlay import Overlay

__all__ = ["aoto_config", "AotoProtocol"]


def aoto_config(base: Optional[AceConfig] = None) -> AceConfig:
    """An :class:`AceConfig` restricted to AOTO's behaviour."""
    base = base or AceConfig()
    return replace(base, depth=1, allow_keep_both=False)


class AotoProtocol(AceProtocol):
    """ACE restricted to AOTO semantics (h=1, swap-only Phase 3)."""

    def __init__(
        self,
        overlay: Overlay,
        config: Optional[AceConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(overlay, aoto_config(config), rng=rng)
