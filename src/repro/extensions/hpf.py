"""Hybrid Periodical Flooding (the authors' reference [23], simplified).

Zhuang, Liu, Xiao & Ni, "Hybrid Periodical Flooding in Unstructured
Peer-to-Peer Networks" (ICPP 2003): instead of relaying a query to *all*
neighbors, a peer forwards to a weighted subset — a fraction of its
neighbor list, chosen uniformly at random, by degree (reach more peers per
message) or by cost (stay physically local).

HPF trades search scope for traffic: coverage becomes probabilistic.  It is
*orthogonal* to ACE (which keeps full scope); the benches combine the two
to show the mismatch repair also benefits partial-flooding schemes.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from ..search.flooding import ForwardingStrategy
from ..topology.overlay import Overlay

__all__ = ["hpf_strategy", "HPF_WEIGHTINGS"]

#: Supported neighbor-selection weightings.
HPF_WEIGHTINGS = ("random", "degree", "cost")


def hpf_strategy(
    overlay: Overlay,
    rng: np.random.Generator,
    fraction: float = 0.5,
    min_neighbors: int = 2,
    weighting: str = "random",
) -> ForwardingStrategy:
    """Partial-flooding strategy: forward to a weighted neighbor subset.

    Parameters
    ----------
    fraction:
        Target fraction of the neighbor list each relay forwards to.
    min_neighbors:
        Floor on the subset size (coverage collapses below ~2).
    weighting:
        ``"random"`` — uniform subset; ``"degree"`` — prefer high-degree
        neighbors (maximize reach); ``"cost"`` — prefer physically close
        neighbors (minimize underlay cost).

    The returned strategy is stochastic: each call re-draws the subset, so
    build one strategy per query for reproducibility.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if min_neighbors < 1:
        raise ValueError("min_neighbors must be >= 1")
    if weighting not in HPF_WEIGHTINGS:
        raise ValueError(
            f"unknown weighting {weighting!r}; choose from {HPF_WEIGHTINGS}"
        )

    def strategy(peer: int, came_from: Optional[int]) -> Iterable[int]:
        nbrs = sorted(overlay.neighbors(peer))
        if came_from in nbrs and len(nbrs) > 1:
            nbrs.remove(came_from)
        if not nbrs:
            return []
        k = min(len(nbrs), max(min_neighbors, math.ceil(fraction * len(nbrs))))
        if k >= len(nbrs):
            return nbrs
        if weighting == "random":
            idx = rng.choice(len(nbrs), size=k, replace=False)
            return [nbrs[int(i)] for i in idx]
        if weighting == "degree":
            weights = np.array([overlay.degree(n) for n in nbrs], dtype=float)
        else:  # cost: prefer cheap links
            weights = np.array(
                [1.0 / (1.0 + overlay.cost(peer, n)) for n in nbrs], dtype=float
            )
        probs = weights / weights.sum()
        idx = rng.choice(len(nbrs), size=k, replace=False, p=probs)
        return [nbrs[int(i)] for i in idx]

    return strategy
