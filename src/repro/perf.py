"""Process-wide performance counters for the delay/cost hot path.

Every metric in the paper's evaluation reduces to underlay shortest-path
delays, so simulation throughput is dominated by how often the delay engine
has to fall back to a real Dijkstra run.  This module provides cheap global
counters that the engine layers increment as they work:

* :class:`PhysicalTopology <repro.topology.physical.PhysicalTopology>` counts
  Dijkstra invocations (``dijkstra_runs``), how many single-source solves
  those invocations performed in total (``dijkstra_sources``, > runs when the
  batched path is used), and hits/misses of the per-source distance LRU.
* :class:`Overlay <repro.topology.overlay.Overlay>` counts hits/misses of the
  persistent logical edge-cost cache that ``propagate()`` reads in its inner
  loop.
* :func:`propagate <repro.search.flooding.propagate>` counts queries and
  accumulates wall-clock time, so ``queries_per_second`` reports end-to-end
  simulation throughput.

Counters are plain module-global state: increments are cheap and each
process owns its own bag.  Use :func:`reset_counters` (or
``counters.reset()``) at the start of a measurement region and
:meth:`PerfCounters.snapshot` / ``counters - before`` style deltas at the
end.

Snapshots are **mergeable**: a worker process measures its trial with
``before = counters.copy()`` / ``counters.delta(before)`` and ships the
delta dict home with its result, and the parent folds it in with
:meth:`PerfCounters.merge`.  Accumulators add, the ``largest_batch``
high-water mark maxes, and derived rates are recomputed — so ``--perf``
and the budget gates report fleet-wide totals instead of silently dropping
worker-side Dijkstra counts (see
:func:`repro.experiments.parallel.run_trials`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Union

__all__ = ["PerfCounters", "counters", "get_counters", "reset_counters"]


@dataclass
class PerfCounters:
    """Mutable bag of hot-path counters (see module docstring)."""

    #: Number of scipy ``dijkstra`` invocations (one per batch or single run).
    dijkstra_runs: int = 0
    #: Total single-source solves performed across all invocations.
    dijkstra_sources: int = 0
    #: Largest number of sources solved by one batched invocation.
    largest_batch: int = 0
    #: Distance-vector LRU hits (a ``delays_from``/``delay`` served cached).
    delay_cache_hits: int = 0
    #: Distance-vector LRU misses (a lookup that forced a Dijkstra run).
    delay_cache_misses: int = 0
    #: Logical edge costs served from the per-overlay edge-cost cache.
    edge_cost_hits: int = 0
    #: Logical edge costs that had to be computed (then memoized).
    edge_cost_misses: int = 0
    #: Completed :func:`~repro.search.flooding.propagate` simulations.
    queries: int = 0
    #: Wall-clock seconds spent inside ``propagate``.
    query_seconds: float = 0.0
    #: Underlay graphs built by running a generator from the seeded config.
    underlay_builds: int = 0
    #: Underlay graphs attached zero-copy from shared memory instead.
    underlay_attaches: int = 0
    #: Delay answers served from an approximate oracle's embedding.
    oracle_estimates: int = 0
    #: Approximate-oracle queries that spent exact-fallback budget instead.
    oracle_exact_fallbacks: int = 0
    #: Single-source solves spent building landmark embeddings.
    landmark_embed_sources: int = 0
    #: Forwarding strategies lowered to a CSR graph (cache misses only).
    compiled_strategies: int = 0
    #: Queries answered by the vectorized multi-source kernel.
    batched_queries: int = 0
    #: Settle rounds executed by the hop-bounded frontier kernel.
    frontier_rounds: int = 0
    #: CSR re-packs performed by the struct-of-arrays overlay engine.
    soa_compactions: int = 0
    #: Compactions that had buffered edits/tombstones to fold in.
    soa_edit_buffer_flushes: int = 0
    #: Flat ACE-state store re-packs of the membership snapshot arrays.
    array_state_syncs: int = 0
    #: Optimization steps executed by the batched ACE kernel.
    ace_batched_steps: int = 0
    #: Peer closures extracted by shared CSR frontier sweeps (kernel blocks).
    closure_batch_peers: int = 0
    #: Overlay mutations folded into batch-handled churn events.
    churn_batch_mutations: int = 0
    #: Closure extractions avoided by the ``(epoch, depth)`` reuse cache
    #: (scalar refresh/recompute sharing) or the kernel's rebuild shortcut.
    closure_reuses: int = 0
    #: Outbound socket connections opened by the live network runtime.
    net_connections: int = 0
    #: Frames transmitted by the live runtime (control + data planes).
    net_messages_sent: int = 0
    #: Bytes put on the wire by the live runtime (framed, encoded size).
    net_bytes_sent: int = 0
    #: Reconnect/RPC retry attempts made by the live runtime.
    net_retries: int = 0

    # ------------------------------------------------------------------

    @property
    def queries_per_second(self) -> float:
        """End-to-end propagation throughput (0 when nothing ran)."""
        if self.query_seconds <= 0.0:
            return 0.0
        return self.queries / self.query_seconds

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """Immutable copy of the current values (plus derived throughput)."""
        out: Dict[str, Union[int, float]] = dataclasses.asdict(self)
        out["queries_per_second"] = self.queries_per_second
        return out

    def delta(self, before: "PerfCounters") -> Dict[str, Union[int, float]]:
        """Field-wise difference ``self - before`` (for measurement regions).

        ``largest_batch`` is reported as the current value, not a difference
        (it is a high-water mark, not an accumulator).
        """
        out: Dict[str, Union[int, float]] = {}
        for f in dataclasses.fields(self):
            if f.name == "largest_batch":
                out[f.name] = getattr(self, f.name)
            else:
                out[f.name] = getattr(self, f.name) - getattr(before, f.name)
        return out

    def copy(self) -> "PerfCounters":
        """Independent copy of the current values."""
        return dataclasses.replace(self)

    def merge(self, snapshot: Mapping[str, Union[int, float]]) -> None:
        """Fold another process's snapshot/delta into this bag, in place.

        Accumulators add; ``largest_batch`` (a high-water mark) takes the
        max; derived keys like ``queries_per_second`` are ignored and
        recomputed from the merged totals.  Unknown keys are ignored so
        snapshots from newer/older workers stay compatible.
        """
        for f in dataclasses.fields(self):
            value = snapshot.get(f.name)
            if value is None:
                continue
            if f.name == "largest_batch":
                self.largest_batch = max(self.largest_batch, int(value))
            else:
                setattr(self, f.name, getattr(self, f.name) + value)

    def format(self) -> str:
        """Human-readable multi-line rendering for CLI/bench output."""
        lines = ["perf counters:"]
        lines.append(
            f"  dijkstra: {self.dijkstra_runs} runs, "
            f"{self.dijkstra_sources} sources solved "
            f"(largest batch {self.largest_batch})"
        )
        lines.append(
            f"  delay LRU: {self.delay_cache_hits} hits / "
            f"{self.delay_cache_misses} misses"
        )
        lines.append(
            f"  edge-cost cache: {self.edge_cost_hits} hits / "
            f"{self.edge_cost_misses} misses"
        )
        lines.append(
            f"  queries: {self.queries} in {self.query_seconds:.3f}s "
            f"({self.queries_per_second:.0f}/s)"
        )
        lines.append(
            f"  underlays: {self.underlay_builds} built, "
            f"{self.underlay_attaches} attached from shared memory"
        )
        lines.append(
            f"  oracle: {self.oracle_estimates} estimates, "
            f"{self.oracle_exact_fallbacks} exact fallbacks, "
            f"{self.landmark_embed_sources} landmark embed sources"
        )
        lines.append(
            f"  batched search: {self.batched_queries} queries, "
            f"{self.compiled_strategies} strategies compiled, "
            f"{self.frontier_rounds} frontier rounds"
        )
        lines.append(
            f"  array engine: {self.soa_compactions} compactions "
            f"({self.soa_edit_buffer_flushes} with buffered edits), "
            f"{self.array_state_syncs} state syncs"
        )
        lines.append(
            f"  ace kernel: {self.ace_batched_steps} batched steps, "
            f"{self.closure_batch_peers} closures batch-extracted, "
            f"{self.closure_reuses} closure reuses, "
            f"{self.churn_batch_mutations} churn mutations batched"
        )
        lines.append(
            f"  net: {self.net_connections} connections, "
            f"{self.net_messages_sent} frames / {self.net_bytes_sent} bytes "
            f"sent, {self.net_retries} retries"
        )
        return "\n".join(lines)


#: The process-wide counter instance every engine layer increments.
counters = PerfCounters()


def get_counters() -> PerfCounters:
    """The process-wide :data:`counters` instance."""
    return counters


def reset_counters() -> None:
    """Zero the process-wide counters."""
    counters.reset()
