"""Runtime invariant sanitizer: dynamic twin of the replint program rules.

``tools/replint`` proves the repository's reproducibility contracts
*statically* (REP009–REP012); this module asserts the same contracts
*dynamically*, on the objects a real run actually builds.  Enable it with
``REPRO_SANITIZE=1`` in the environment or ``--sanitize`` on the CLI; when
disabled (the default) nothing here is imported into the hot path and no
wrapper exists anywhere.

What it checks
==============

* **Epoch monotonicity / mutate-implies-bump** (REP011's contract).  Every
  structural mutator of :class:`~repro.topology.overlay.Overlay` and
  :class:`~repro.topology.soa.ArrayOverlay` must leave ``epoch`` no smaller
  than it found it, and a mutation that reports a change must have bumped
  it.  :class:`~repro.core.ace.AceProtocol` state writes owe the same to
  ``state_version``.
* **Cache coherence on invalidation.**  ``_edge_costs`` holds live logical
  edges only, so ``disconnect``/``remove_peer`` must leave no stale entry
  behind and ``invalidate_edge_costs`` must leave the cache empty.
* **Shared-memory leak accounting** (REP010's contract).  Every
  :class:`~repro.topology.shm.SharedSegments` owner must be unlinked
  explicitly (context manager or ``finally``); segments that survive to the
  ``atexit`` backstop were leaked by their owner and are reported.
* **RNG stream ledger** (REP009's contract).  Generators handed out by
  :func:`repro.rng.ensure_rng` / :func:`repro.rng.derive_rng` are wrapped
  to count draws per seed stream, and deriving the *same* ``(seed,
  stream)`` twice in one process — which would replay correlated draws —
  is a violation.

Sanitized runs are **byte-identical** to unsanitized ones: every wrapper
forwards arguments and results untouched, the ledgered generators share the
original bit generator, and all accounting is on the side.  Violations are
collected (not raised), printed to ``stderr`` at exit, and surfaced to the
CLI so ``repro --sanitize`` can fail the process without perturbing the
metrics stream on ``stdout``.
"""

from __future__ import annotations

import atexit
import functools
import os
import sys
import weakref
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "enabled",
    "maybe_install",
    "install",
    "installed",
    "record",
    "violations",
    "violation_count",
    "rng_ledger",
    "shm_ledger",
    "report",
    "reset",
]

_TRUTHY = ("1", "true", "yes", "on")


def enabled() -> bool:
    """Is the sanitizer requested via the ``REPRO_SANITIZE`` knob?"""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


class _State:
    """Process-wide sanitizer accounting (violations plus ledgers)."""

    def __init__(self) -> None:
        self.installed = False
        self.reported = False
        self.violations: List[str] = []
        #: draws per RNG stream key, e.g. ``("derive", 7, 2) -> 143``.
        self.rng_draws: Counter = Counter()
        #: generator instantiations per stream key.
        self.rng_derivations: Counter = Counter()
        #: live SharedSegments owners: id -> (weakref, description, pid).
        self.shm_owners: Dict[int, Tuple[Any, str, int]] = {}
        self.shm_created = 0
        self.shm_unlinked = 0


_STATE = _State()


def record(message: str) -> None:
    """Register one violation (collected, never raised)."""
    _STATE.violations.append(message)


def violations() -> List[str]:
    """The violations recorded so far (a copy)."""
    return list(_STATE.violations)


def violation_count() -> int:
    """How many violations have been recorded so far."""
    return len(_STATE.violations)


def rng_ledger() -> Dict[Tuple, Dict[str, int]]:
    """Per-stream accounting: ``{key: {"derivations": n, "draws": m}}``."""
    keys = set(_STATE.rng_derivations) | set(_STATE.rng_draws)
    return {
        key: {
            "derivations": _STATE.rng_derivations[key],
            "draws": _STATE.rng_draws[key],
        }
        for key in sorted(keys, key=repr)
    }


def shm_ledger() -> Dict[str, int]:
    """Segment-owner accounting: created / explicitly unlinked / live."""
    live = sum(1 for ref, _, _ in _STATE.shm_owners.values() if ref() is not None)
    return {
        "created": _STATE.shm_created,
        "unlinked": _STATE.shm_unlinked,
        "live": live,
    }


def reset() -> None:
    """Clear recorded violations and ledgers (hooks stay installed)."""
    _STATE.violations.clear()
    _STATE.rng_draws.clear()
    _STATE.rng_derivations.clear()
    _STATE.shm_owners.clear()
    _STATE.shm_created = 0
    _STATE.shm_unlinked = 0
    _STATE.reported = False


def installed() -> bool:
    """Have the hooks been installed in this process?"""
    return _STATE.installed


def report(out=None) -> int:
    """Print violations (if any) and return their count."""
    out = out or sys.stderr
    _STATE.reported = True
    if _STATE.violations:
        print(f"sanitize: {len(_STATE.violations)} violation(s)", file=out)
        for message in _STATE.violations:
            print(f"sanitize: {message}", file=out)
    return len(_STATE.violations)


def _atexit_report() -> None:
    # Runs after every SharedSegments backstop (those registered later,
    # hence earlier in atexit's LIFO order), so leak accounting is final.
    _finalize_shm_accounting()
    if not _STATE.reported and _STATE.violations:
        report(sys.stderr)


# ----------------------------------------------------------------------
# Epoch / state-version monotonicity and cache-coherence shadow checks
# ----------------------------------------------------------------------

def _wrap_versioned(
    cls: type,
    name: str,
    version_attr: str,
    *,
    changed: Optional[Callable[[Any, Any], bool]] = None,
    shadow: Optional[Callable[[Any, tuple], None]] = None,
) -> None:
    """Patch ``cls.name`` with monotonicity (+ optional bump/shadow) checks.

    *changed(result, self)* decides whether the call mutated structure and
    therefore owes a version bump; *shadow(self, args)* runs extra
    read-only coherence checks after a successful call.
    """
    orig = cls.__dict__[name]

    @functools.wraps(orig)
    def checked(self, *args, **kwargs):
        before = getattr(self, version_attr)
        result = orig(self, *args, **kwargs)
        after = getattr(self, version_attr)
        where = f"{cls.__name__}.{name}"
        if after < before:
            record(
                f"{where}: {version_attr} went backwards ({before} -> {after})"
            )
        if changed is not None and changed(result, self) and after == before:
            record(
                f"{where}: structure changed but {version_attr} "
                f"stayed at {before}"
            )
        if shadow is not None:
            shadow(self, args)
        return result

    setattr(cls, name, checked)


def _always_changed(result: Any, self: Any) -> bool:
    # None-returning mutators (add_peer/remove_peer) raise on no-op input,
    # so a normal return always means the structure changed.
    return True


def _truthy_changed(result: Any, self: Any) -> bool:
    return bool(result)


def _install_overlay_hooks() -> None:
    from .topology.overlay import Overlay

    def disconnect_shadow(self: Any, args: tuple) -> None:
        u, v = args[0], args[1]
        # replint: disable=REP002 — read-only shadow check of the contract
        if ((u, v) if u < v else (v, u)) in self._edge_costs:
            record(
                f"Overlay.disconnect({u}, {v}): stale _edge_costs entry "
                "survived the cut"
            )

    def remove_peer_shadow(self: Any, args: tuple) -> None:
        peer = args[0]
        # replint: disable=REP002 — read-only shadow check of the contract
        stale = [key for key in self._edge_costs if peer in key]
        if stale:
            record(
                f"Overlay.remove_peer({peer}): {len(stale)} stale "
                f"_edge_costs entr{'y' if len(stale) == 1 else 'ies'} "
                "survived removal"
            )

    def invalidate_shadow(self: Any, args: tuple) -> None:
        # replint: disable=REP002 — read-only shadow check of the contract
        if self._edge_costs:
            record(
                "Overlay.invalidate_edge_costs: cache non-empty after "
                "invalidation"
            )

    _wrap_versioned(Overlay, "add_peer", "_epoch", changed=_always_changed)
    _wrap_versioned(
        Overlay, "remove_peer", "_epoch",
        changed=_always_changed, shadow=remove_peer_shadow,
    )
    _wrap_versioned(Overlay, "connect", "_epoch", changed=_truthy_changed)
    _wrap_versioned(
        Overlay, "disconnect", "_epoch",
        changed=_truthy_changed, shadow=disconnect_shadow,
    )
    _wrap_versioned(
        Overlay, "invalidate_edge_costs", "_epoch", shadow=invalidate_shadow
    )


def _install_soa_hooks() -> None:
    from .topology.soa import ArrayOverlay

    def invalidate_shadow(self: Any, args: tuple) -> None:
        if self.cached_edge_costs() != 0:
            record(
                "ArrayOverlay.invalidate_edge_costs: "
                f"{self.cached_edge_costs()} cached cost(s) survived "
                "invalidation"
            )

    _wrap_versioned(ArrayOverlay, "add_peer", "_epoch", changed=_always_changed)
    _wrap_versioned(
        ArrayOverlay, "remove_peer", "_epoch", changed=_always_changed
    )
    _wrap_versioned(ArrayOverlay, "connect", "_epoch", changed=_truthy_changed)
    _wrap_versioned(
        ArrayOverlay, "disconnect", "_epoch", changed=_truthy_changed
    )
    _wrap_versioned(
        ArrayOverlay, "invalidate_edge_costs", "_epoch",
        shadow=invalidate_shadow,
    )


def _install_ace_hooks() -> None:
    from .core.ace import AceProtocol

    # _store_state always (re)writes a peer entry; the churn handlers bump
    # iff they actually dropped state, which monotonicity alone checks.
    _wrap_versioned(
        AceProtocol, "_store_state", "_state_version", changed=_always_changed
    )
    # The batched kernel bypasses _store_state and writes through _put_flat;
    # it must bump the version on every write just like the scalar path, and
    # a whole step() may never move the version backwards.
    _wrap_versioned(
        AceProtocol, "_put_flat", "_state_version", changed=_always_changed
    )
    _wrap_versioned(AceProtocol, "step", "_state_version")
    _wrap_versioned(AceProtocol, "handle_peer_joined", "_state_version")
    _wrap_versioned(AceProtocol, "handle_peer_left", "_state_version")


# ----------------------------------------------------------------------
# Shared-memory leak accounting
# ----------------------------------------------------------------------

def _install_shm_hooks() -> None:
    from .topology import shm

    orig_init = shm.SharedSegments.__init__
    orig_unlink = shm.SharedSegments.unlink
    orig_backstop = shm.SharedSegments._atexit_unlink

    @functools.wraps(orig_init)
    def init(self, handle, segments):
        orig_init(self, handle, segments)
        _STATE.shm_created += 1
        _STATE.shm_owners[id(self)] = (
            weakref.ref(self),
            f"{type(self).__name__}({len(segments)} segment(s))",
            os.getpid(),
        )

    @functools.wraps(orig_unlink)
    def unlink(self):
        if not self._unlinked and os.getpid() == self._owner_pid:
            _STATE.shm_unlinked += 1
            _STATE.shm_owners.pop(id(self), None)
        orig_unlink(self)

    @functools.wraps(orig_backstop)
    def backstop(self):
        if not self._unlinked and os.getpid() == self._owner_pid:
            entry = _STATE.shm_owners.get(id(self))
            what = entry[1] if entry else type(self).__name__
            record(
                f"shm: {what} reached the atexit backstop without an "
                "explicit unlink (owner leaked it)"
            )
        orig_backstop(self)

    shm.SharedSegments.__init__ = init
    shm.SharedSegments.unlink = unlink
    shm.SharedSegments._atexit_unlink = backstop


def _finalize_shm_accounting() -> None:
    """Flag owners that never unlinked at all (not even the backstop)."""
    pid = os.getpid()
    for ref, what, owner_pid in list(_STATE.shm_owners.values()):
        obj = ref()
        if obj is None or owner_pid != pid:
            continue
        if not obj._unlinked:
            record(f"shm: {what} still linked at interpreter exit")


# ----------------------------------------------------------------------
# RNG stream ledger
# ----------------------------------------------------------------------

#: Generator methods that consume the stream.  Wrapping these is enough to
#: account for every draw this repository makes; exotic distributions fall
#: through uncounted but still come from the same (shared) bit generator.
_DRAW_METHODS = (
    "random",
    "integers",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "bytes",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "geometric",
)


def _make_ledger_generator() -> type:
    class _LedgerGenerator(np.random.Generator):
        """Counts draws per seed stream; numerically a plain Generator."""

        _ledger_key: Tuple = ("unkeyed",)

    def _counted(name: str):
        orig = getattr(np.random.Generator, name)

        @functools.wraps(orig)
        def method(self, *args, **kwargs):
            _STATE.rng_draws[self._ledger_key] += 1
            return orig(self, *args, **kwargs)

        return method

    for name in _DRAW_METHODS:
        if hasattr(np.random.Generator, name):
            setattr(_LedgerGenerator, name, _counted(name))
    return _LedgerGenerator


def _seed_token(seed: Any) -> Any:
    """A hashable, stable token for an int or SeedSequence seed."""
    if isinstance(seed, np.random.SeedSequence):
        return ("seedseq", repr(seed.entropy), tuple(seed.spawn_key))
    return seed


def _install_rng_hooks() -> None:
    from . import rng as rng_module

    ledger_cls = _make_ledger_generator()

    def ledgered(base: np.random.Generator, key: Tuple) -> np.random.Generator:
        # Same BitGenerator instance -> byte-identical draw stream.
        wrapped = ledger_cls(base.bit_generator)
        wrapped._ledger_key = key
        _STATE.rng_derivations[key] += 1
        return wrapped

    orig_ensure = rng_module.ensure_rng
    orig_derive = rng_module.derive_rng

    @functools.wraps(orig_ensure)
    def ensure_rng(rng=None, seed=rng_module.DEFAULT_SEED):
        if rng is not None:
            return orig_ensure(rng, seed)
        return ledgered(orig_ensure(None, seed), ("ensure", _seed_token(seed)))

    @functools.wraps(orig_derive)
    def derive_rng(seed, stream=0):
        key = ("derive", _seed_token(seed), stream)
        if _STATE.rng_derivations[key]:
            record(
                f"rng: stream (seed={seed!r}, stream={stream}) derived "
                "again in this process; draws would repeat the earlier "
                "stream verbatim"
            )
        return ledgered(orig_derive(seed, stream), key)

    # Rebind in repro.rng *and* in every module that imported the
    # functions by name before the sanitizer was installed.
    for wrapped, orig in ((ensure_rng, orig_ensure), (derive_rng, orig_derive)):
        setattr(rng_module, wrapped.__name__, wrapped)
        for mod in list(sys.modules.values()):
            if mod is None or mod is rng_module:
                continue
            try:
                hit = getattr(mod, wrapped.__name__, None) is orig
            except Exception:  # pragma: no cover - exotic module proxies
                continue
            if hit:
                setattr(mod, wrapped.__name__, wrapped)


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------

def install() -> None:
    """Install every hook (idempotent; survives repeated calls)."""
    if _STATE.installed:
        return
    _STATE.installed = True
    _install_overlay_hooks()
    _install_soa_hooks()
    _install_ace_hooks()
    _install_shm_hooks()
    _install_rng_hooks()
    atexit.register(_atexit_report)


def maybe_install() -> bool:
    """Install iff ``REPRO_SANITIZE`` asks for it; returns installed()."""
    if enabled():
        install()
    return _STATE.installed
