"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------

``static``
    Figures 7-8: ACE convergence on a static overlay.
``dynamic``
    Figures 9-10: Gnutella-like vs. ACE (vs. ACE + cache) under churn.
``depth``
    Figures 11-16: closure-depth sweep with optimization rates.
``walkthrough``
    Tables 1-2: the six-peer worked example.
``topology``
    Section 4.1: generate and validate a topology pair.
``net``
    Live asyncio network runtime: real sockets, wire protocol, seed-node
    bootstrap, optional sim-vs-live convergence check (docs/NETWORK.md).

Every run is reproducible from ``--seed``.  Examples::

    python -m repro static --peers 128 --degree 8 --steps 10
    python -m repro dynamic --peers 120 --queries 600 --cache
    python -m repro depth --degrees 4 10 --depths 1 2 3
    python -m repro walkthrough --depth 2
    python -m repro topology --peers 200
    python -m repro net --peers 8 --check --perf
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Distributed Approach to Solving Overlay "
            "Mismatching Problem' (ICDCS 2004)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p, peers=128, degree=6.0):
        p.add_argument("--peers", type=int, default=peers,
                       help="number of overlay peers")
        p.add_argument("--physical-nodes", type=int, default=None,
                       help="underlay size (default: 8x peers)")
        p.add_argument("--degree", type=float, default=degree,
                       help="average logical degree")
        p.add_argument("--seed", type=int, default=1, help="RNG seed")
        p.add_argument("--oracle", default="exact",
                       help="delay backend: 'exact' (default) or "
                            "'landmark:<k>[:strategy[:estimator]]' for the "
                            "approximate k-landmark embedding")
        p.add_argument("--engine", default="object",
                       choices=["object", "array"],
                       help="overlay engine: the dict-of-sets reference "
                            "implementation ('object', default) or the "
                            "struct-of-arrays engine for large peer counts "
                            "('array'); figures are byte-identical")
        p.add_argument("--json", dest="json_path", default=None,
                       help="also write the result object to this JSON file")
        p.add_argument("--perf", action="store_true",
                       help="print engine perf counters (Dijkstra runs, "
                            "cache hit rates, queries/sec) after the run")
        p.add_argument("--scalar-queries", action="store_true",
                       help="disable the batched propagation kernel and run "
                            "every query through the scalar reference engine "
                            "(slower; results are identical)")
        p.add_argument("--scalar-ace", action="store_true",
                       help="disable the batched ACE optimization kernel and "
                            "run every peer's round through the scalar "
                            "reference protocol (slower; results are "
                            "identical; only the array engine batches)")
        p.add_argument("--sanitize", action="store_true",
                       help="enable the runtime invariant sanitizer (epoch "
                            "monotonicity, cache coherence, shm leak and RNG "
                            "stream accounting); figures are byte-identical "
                            "and any violation fails the run")

    p_static = sub.add_parser("static", help="Figures 7-8 (static convergence)")
    add_world_args(p_static)
    p_static.add_argument("--steps", type=int, default=10,
                          help="ACE optimization steps")
    p_static.add_argument("--depth", type=int, default=1,
                          help="h-neighbor closure depth")
    p_static.add_argument("--samples", type=int, default=16,
                          help="query samples per measurement")

    p_dyn = sub.add_parser("dynamic", help="Figures 9-10 (churning system)")
    add_world_args(p_dyn, degree=8.0)
    p_dyn.add_argument("--queries", type=int, default=600,
                       help="total queries to simulate")
    p_dyn.add_argument("--windows", type=int, default=6,
                       help="number of reporting windows")
    p_dyn.add_argument("--no-ace", action="store_true",
                       help="run the Gnutella-like arm only")
    p_dyn.add_argument("--cache", action="store_true",
                       help="also run the ACE + index cache arm")
    p_dyn.add_argument("--workers", type=int, default=None,
                       help="worker processes for the treatment arms "
                            "(default: the REPRO_WORKERS env knob); the "
                            "underlay is shared zero-copy across workers")

    p_depth = sub.add_parser("depth", help="Figures 11-16 (depth sweep)")
    add_world_args(p_depth, peers=96)
    p_depth.add_argument("--degrees", type=int, nargs="+", default=[4, 10],
                         help="average-degree values to sweep")
    p_depth.add_argument("--depths", type=int, nargs="+", default=[1, 2, 3],
                         help="closure depths to sweep")
    p_depth.add_argument("--steps", type=int, default=6,
                         help="convergence steps per configuration")

    p_walk = sub.add_parser("walkthrough", help="Tables 1-2 (worked example)")
    p_walk.add_argument("--depth", type=int, default=None,
                        help="closure depth (omit for blind flooding)")
    p_walk.add_argument("--source", default="F", help="query source peer")
    p_walk.add_argument("--perf", action="store_true",
                        help="print engine perf counters after the run")

    p_topo = sub.add_parser("topology", help="Section 4.1 validation")
    add_world_args(p_topo, peers=200)
    p_topo.add_argument("--underlay", default="ba",
                        choices=["ba", "waxman", "glp", "ws"])
    p_topo.add_argument("--overlay", dest="overlay_kind", default="small_world",
                        choices=["random", "power_law", "small_world"])

    p_net = sub.add_parser(
        "net", help="live asyncio network runtime (see docs/NETWORK.md)")
    add_world_args(p_net, peers=8, degree=4.0)
    p_net.add_argument("--steps", type=int, default=2,
                       help="ACE optimization steps over the live fleet")
    p_net.add_argument("--queries", type=int, default=6,
                       help="queries in the live workload")
    p_net.add_argument("--discipline", default="lockstep",
                       choices=["lockstep", "realtime"],
                       help="delivery discipline: 'lockstep' replays the "
                            "simulator's event order exactly; 'realtime' "
                            "delivers at wall-clock deadlines")
    p_net.add_argument("--latency-scale", type=float, default=0.0,
                       help="seconds per cost unit of injected latency "
                            "(realtime discipline only)")
    p_net.add_argument("--kill", type=int, default=None, metavar="PEER",
                       help="kill this peer's sockets after the first query "
                            "(degradation drill)")
    p_net.add_argument("--post-kill-steps", type=int, default=1,
                       help="extra ACE steps after the kill (exercises the "
                            "retry/dead-marking path)")
    p_net.add_argument("--check", action="store_true",
                       help="also run the discrete-event simulator on the "
                            "same scenario and fail unless the live run "
                            "matches it exactly")
    p_net.add_argument("--expect-hits", action="store_true",
                       help="fail unless the workload produced QueryHits")
    return parser


def _scenario_config(args, overrides=None):
    from .experiments.setup import ScenarioConfig

    physical = args.physical_nodes or max(8 * args.peers, 400)
    kwargs = dict(
        physical_nodes=physical,
        peers=args.peers,
        avg_degree=args.degree,
        seed=args.seed,
        oracle=getattr(args, "oracle", "exact"),
        engine=getattr(args, "engine", "object"),
    )
    kwargs.update(overrides or {})
    return ScenarioConfig(**kwargs)


def _cmd_static(args, out) -> int:
    from .core.ace import AceConfig
    from .experiments.reporting import format_series
    from .experiments.setup import build_scenario
    from .experiments.static_env import run_static_experiment

    scenario = build_scenario(_scenario_config(args))
    series = run_static_experiment(
        scenario,
        steps=args.steps,
        ace_config=AceConfig(depth=args.depth),
        query_samples=args.samples,
    )
    print(format_series(
        "step", series.steps,
        {
            "traffic/query": [round(t) for t in series.traffic_per_query],
            "response": [round(t) for t in series.response_time],
            "scope": series.search_scope,
        },
        title=f"Static convergence (peers={args.peers}, C={args.degree:g}, "
              f"h={args.depth})",
    ), file=out)
    print(f"traffic reduction: {series.traffic_reduction_percent:.1f}%  "
          f"response reduction: {series.response_reduction_percent:.1f}%",
          file=out)
    if args.json_path:
        from .experiments.results_io import save_result

        save_result(series, args.json_path,
                    metadata={"command": "static", "seed": args.seed})
        print(f"wrote {args.json_path}", file=out)
    return 0


def _cmd_dynamic(args, out) -> int:
    from .experiments.dynamic_env import DynamicConfig, run_dynamic_trials
    from .experiments.reporting import format_series

    window = max(1, args.queries // args.windows)
    total = window * args.windows
    arms = [("gnutella", dict(enable_ace=False))]
    if not args.no_ace:
        arms.append(("ace", dict(enable_ace=True)))
        if args.cache:
            arms.append(("ace+cache", dict(enable_ace=True, enable_cache=True)))
    # Independent arms fan out over REPRO_WORKERS / --workers processes; the
    # underlay is shared zero-copy and worker perf counters are merged, so
    # --perf reports the whole fleet.  Results are identical to serial.
    series_list = run_dynamic_trials(
        [
            (_scenario_config(args),
             DynamicConfig(total_queries=total, window=window, **kwargs))
            for _, kwargs in arms
        ],
        max_workers=args.workers,
    )
    results = {name: series for (name, _), series in zip(arms, series_list)}
    x = list(range(1, args.windows + 1))
    print(format_series(
        f"queries (x{window})", x,
        {n: [round(p) for p in s.traffic_points] for n, s in results.items()},
        title="Avg traffic cost per query (ACE overhead included)",
    ), file=out)
    print(file=out)
    print(format_series(
        f"queries (x{window})", x,
        {n: [round(p) for p in s.response_points] for n, s in results.items()},
        title="Avg response time per query",
    ), file=out)
    if args.json_path:
        from .experiments.results_io import save_result

        primary = results.get("ace", results["gnutella"])
        save_result(primary, args.json_path,
                    metadata={"command": "dynamic", "seed": args.seed})
        print(f"wrote {args.json_path}", file=out)
    return 0


def _cmd_depth(args, out) -> int:
    from .experiments.depth_sweep import DepthSweepConfig, run_depth_sweep
    from .experiments.opt_rate import REPRO_R_VALUES, minimal_depths_table
    from .experiments.reporting import format_series, format_table

    sweep = run_depth_sweep(DepthSweepConfig(
        degrees=tuple(args.degrees),
        depths=tuple(args.depths),
        convergence_steps=args.steps,
        query_samples=12,
        base=_scenario_config(args),
    ))
    print(format_series(
        "h", list(args.depths),
        {
            f"C={c} reduction %": [
                round(t.reduction_percent, 1) for t in sweep.for_degree(c)
            ]
            for c in args.degrees
        },
        title="Query traffic reduction (Figure 11)",
    ), file=out)
    print(file=out)
    print(format_series(
        "h", list(args.depths),
        {
            f"C={c} overhead": [
                round(t.overhead_per_reconstruction)
                for t in sweep.for_degree(c)
            ]
            for c in args.degrees
        },
        title="Overhead per optimization round (Figure 12)",
    ), file=out)
    minima = minimal_depths_table(sweep, REPRO_R_VALUES)
    print(file=out)
    print(format_table(
        ["R", *(f"C={c} min h" for c in args.degrees)],
        [[f"{r:g}", *(minima[c][r] for c in args.degrees)]
         for r in REPRO_R_VALUES],
        title="Minimal depth with optimization rate > 1 (Figures 13-16)",
    ), file=out)
    if args.json_path:
        from .experiments.results_io import save_result

        save_result(sweep, args.json_path,
                    metadata={"command": "depth", "seed": args.seed})
        print(f"wrote {args.json_path}", file=out)
    return 0


def _cmd_walkthrough(args, out) -> int:
    from .experiments.paper_example import run_walkthrough
    from .experiments.reporting import format_table

    walk = run_walkthrough(args.depth, source=args.source)
    print(format_table(
        ["from", "to", "cost"], walk.rows(),
        title=f"{walk.scheme} from {walk.source}",
    ), file=out)
    print(f"total cost: {walk.total_cost:.0f}  messages: {walk.messages}  "
          f"duplicates: {walk.duplicate_messages}  "
          f"reached: {len(walk.reached)}", file=out)
    return 0


def _cmd_topology(args, out) -> int:
    from .experiments.setup import build_scenario
    from .topology.properties import analyze

    config = _scenario_config(
        args, overrides=dict(underlay=args.underlay,
                             overlay_kind=args.overlay_kind)
    )
    scenario = build_scenario(config)
    print(f"underlay ({args.underlay}): "
          f"{analyze(scenario.physical, samples=48).summary()}", file=out)
    print(f"overlay ({args.overlay_kind}): "
          f"{analyze(scenario.overlay, samples=96).summary()}", file=out)
    return 0


def _cmd_net(args, out) -> int:
    from .core.ace import AceConfig
    from .experiments.reporting import format_table
    from .experiments.setup import build_scenario
    from .net.launch import (
        compare_runs,
        plan_queries,
        run_live,
        run_sim_reference,
    )
    from .net.runtime import NetConfig

    ace = AceConfig()
    net = NetConfig(
        discipline=args.discipline, latency_scale=args.latency_scale
    )
    scenario = build_scenario(_scenario_config(args))
    plan = plan_queries(scenario, args.queries)
    live = run_live(
        build_scenario(_scenario_config(args)), ace,
        steps=args.steps, plan=plan, net=net,
        kill_peer=args.kill, kill_after_query=0,
        post_kill_steps=args.post_kill_steps if args.kill is not None else 0,
    )
    rows = []
    for i, q in enumerate(live.queries):
        if q.get("skipped"):
            rows.append([i, q["source"], "-", "-", "-", "-", "skipped"])
            continue
        rows.append([
            i, q["source"], q["query_messages"],
            round(q["query_traffic"]), len(q["responders"]),
            "-" if q["first_response_time"] is None
            else round(q["first_response_time"]),
            "ok" if q["drained"] else "late",
        ])
    print(format_table(
        ["#", "source", "msgs", "traffic", "hits", "response", "drain"],
        rows,
        title=f"Live query workload ({args.discipline}, "
              f"{args.peers} peers, {args.steps} ACE steps)",
    ), file=out)
    print(f"wire: {live.messages_sent} frames, {live.bytes_sent} bytes, "
          f"{live.connections} connections, {live.retries} retries, "
          f"{live.lost_frames} lost frames", file=out)
    if live.dead:
        print(f"dead peers: {live.dead}", file=out)
    code = 0
    if args.check:
        ref = run_sim_reference(
            build_scenario(_scenario_config(args)), ace, args.steps, plan
        )
        problems = compare_runs(
            live, ref, check_queries=(args.discipline == "lockstep")
        )
        if args.kill is not None:
            print("check: skipped (kill runs diverge by design)", file=out)
        elif problems:
            for p in problems:
                print(f"MISMATCH {p}", file=out)
            code = 4
        else:
            print("check: live run matches the simulation exactly", file=out)
    if args.expect_hits and live.total_hits == 0:
        print("FAIL: no QueryHits received", file=out)
        code = code or 5
    return code


_COMMANDS = {
    "static": _cmd_static,
    "dynamic": _cmd_dynamic,
    "depth": _cmd_depth,
    "walkthrough": _cmd_walkthrough,
    "topology": _cmd_topology,
    "net": _cmd_net,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    from .perf import counters

    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    counters.reset()
    if getattr(args, "sanitize", False):
        import os

        # Worker processes re-read the knob from the environment, so the
        # sanitizer reaches spawned trial workers too.
        os.environ["REPRO_SANITIZE"] = "1"
    from .sanitize import maybe_install, report, violation_count

    maybe_install()
    if getattr(args, "scalar_queries", False):
        import os

        from .search.batch import set_batched_queries

        set_batched_queries(False)
        # Worker processes re-read the knob from the environment, so the
        # flag reaches spawned trial workers too.
        os.environ["REPRO_SCALAR_QUERIES"] = "1"
    if getattr(args, "scalar_ace", False):
        import os

        from .core.batch_ace import set_batched_ace

        set_batched_ace(False)
        # Worker processes re-read the knob from the environment, so the
        # flag reaches spawned trial workers too.
        os.environ["REPRO_SCALAR_ACE"] = "1"
    code = _COMMANDS[args.command](args, out)
    if getattr(args, "perf", False):
        print(counters.format(), file=out)
    if violation_count():
        # Violations go to stderr so the metrics stream on *out* stays
        # byte-identical to an unsanitized run.
        report(sys.stderr)
        return code or 3
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
