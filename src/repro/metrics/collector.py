"""Windowed statistics collection for the dynamic-environment experiments.

Figures 9 and 10 plot the evolution of per-query averages over the stream of
queries in a churning system.  :class:`SeriesCollector` buckets observations
into fixed-size windows (e.g. one point per 10^5 queries, the figures'
x-axis unit) and reports per-window means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Summary", "summarize", "SeriesCollector"]


@dataclass(frozen=True)
class Summary:
    """Basic descriptive statistics of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @classmethod
    def empty(cls) -> "Summary":
        """Summary of an empty sample (all-zero)."""
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of *values* (empty-safe)."""
    n = len(values)
    if n == 0:
        return Summary.empty()
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    ordered = sorted(values)
    mid = n // 2
    median = ordered[mid] if n % 2 == 1 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


class SeriesCollector:
    """Accumulate per-query observations into fixed-size windows.

    Each ``add`` records one observation; once *window* observations have
    accumulated, the window's mean is appended to :attr:`points` and a new
    window starts.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._current: List[float] = []
        self._points: List[float] = []

    @property
    def window(self) -> int:
        """Number of observations per emitted point."""
        return self._window

    @property
    def points(self) -> List[float]:
        """Means of the completed windows so far."""
        return list(self._points)

    @property
    def pending(self) -> int:
        """Observations in the not-yet-complete window."""
        return len(self._current)

    def add(self, value: float) -> Optional[float]:
        """Record an observation; returns the window mean if one completed."""
        self._current.append(value)
        if len(self._current) >= self._window:
            mean = sum(self._current) / len(self._current)
            self._points.append(mean)
            self._current = []
            return mean
        return None

    def flush(self) -> Optional[float]:
        """Close a partial window (if any) and return its mean."""
        if not self._current:
            return None
        mean = sum(self._current) / len(self._current)
        self._points.append(mean)
        self._current = []
        return mean
