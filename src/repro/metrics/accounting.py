"""Traffic accounting (paper Section 4.2).

"We define the traffic cost as network resource used in an information
search process of P2P systems" — in this reproduction, the cost unit of a
message is the underlay shortest-path delay of the logical hop it crosses
(exactly the unit of the paper's Tables 1 and 2).

:class:`TrafficAccount` separates *query* traffic (the search itself) from
*overhead* traffic (ACE probes and cost-table exchanges), because the
optimization-rate analysis (Figures 11-16) weighs one against the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TrafficAccount", "reduction_rate"]


@dataclass
class TrafficAccount:
    """Running totals of query and overhead traffic, in cost units."""

    query_traffic: float = 0.0
    overhead_traffic: float = 0.0
    queries: int = 0
    query_messages: int = 0
    duplicate_messages: int = 0

    def record_query(
        self,
        traffic_cost: float,
        messages: int = 0,
        duplicates: int = 0,
    ) -> None:
        """Add one query's traffic."""
        self.query_traffic += traffic_cost
        self.queries += 1
        self.query_messages += messages
        self.duplicate_messages += duplicates

    def record_overhead(self, cost: float) -> None:
        """Add protocol overhead traffic (probes, table exchanges)."""
        self.overhead_traffic += cost

    @property
    def total_traffic(self) -> float:
        """Query plus overhead traffic."""
        return self.query_traffic + self.overhead_traffic

    def per_query_traffic(self, include_overhead: bool = False) -> float:
        """Average traffic per query; optionally amortize overhead in.

        Figure 9 reports the ACE curve *including* "the overhead needed by
        each ACE operation", so the dynamic-environment experiments pass
        ``include_overhead=True``.
        """
        if self.queries == 0:
            return 0.0
        total = self.total_traffic if include_overhead else self.query_traffic
        return total / self.queries

    def merged_with(self, other: "TrafficAccount") -> "TrafficAccount":
        """Sum of two accounts (for aggregating across runs)."""
        return TrafficAccount(
            query_traffic=self.query_traffic + other.query_traffic,
            overhead_traffic=self.overhead_traffic + other.overhead_traffic,
            queries=self.queries + other.queries,
            query_messages=self.query_messages + other.query_messages,
            duplicate_messages=self.duplicate_messages + other.duplicate_messages,
        )


def reduction_rate(baseline: float, optimized: float) -> float:
    """Fractional reduction of *optimized* relative to *baseline* (0..1).

    The paper's Figure 11 reports this as a percentage over blind flooding.
    Returns 0 for a non-positive baseline.
    """
    if baseline <= 0:
        return 0.0
    return (baseline - optimized) / baseline
