"""Performance metrics (paper Section 4.2).

Traffic cost, search scope and response time come straight out of
:class:`~repro.search.flooding.QueryResult`; this package adds the
bookkeeping around them: traffic accounting, optimization-rate analysis and
windowed series collection for the dynamic experiments.
"""

from .accounting import TrafficAccount, reduction_rate
from .collector import SeriesCollector, Summary, summarize
from .optimization import (
    OptimizationTradeoff,
    minimal_depth_for_gain,
    optimization_rate,
)

__all__ = [
    "TrafficAccount",
    "reduction_rate",
    "SeriesCollector",
    "Summary",
    "summarize",
    "OptimizationTradeoff",
    "optimization_rate",
    "minimal_depth_for_gain",
]
