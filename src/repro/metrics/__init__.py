"""Performance metrics (paper Section 4.2).

Traffic cost, search scope and response time come straight out of
:class:`~repro.search.flooding.QueryResult`; this package adds the
bookkeeping around them: traffic accounting, optimization-rate analysis and
windowed series collection for the dynamic experiments.  The engine-level
performance counters (Dijkstra runs, cache hit rates, queries/sec — see
:mod:`repro.perf` and ``docs/PERFORMANCE.md``) are re-exported here as
:data:`perf_counters` so metric consumers can read simulation throughput
alongside the paper's metrics.
"""

from ..perf import PerfCounters, counters as perf_counters
from .accounting import TrafficAccount, reduction_rate
from .collector import SeriesCollector, Summary, summarize
from .optimization import (
    OptimizationTradeoff,
    minimal_depth_for_gain,
    optimization_rate,
)

__all__ = [
    "TrafficAccount",
    "reduction_rate",
    "SeriesCollector",
    "Summary",
    "summarize",
    "OptimizationTradeoff",
    "optimization_rate",
    "minimal_depth_for_gain",
    "PerfCounters",
    "perf_counters",
]
