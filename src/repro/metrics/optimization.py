"""Optimization rate — the paper's gain/penalty analysis (Section 4.2).

"Optimization rate is defined as gain/penalty ratio, i.e., the ratio of query
traffic reduction and overhead traffic increment ...  We define frequency
ratio, R, as the ratio of query frequency to ... the frequency of cost
information changes.  ACE is worth to use only if the gain/penalty ratio is
larger than 1."

Between two reconstructions of the overlay trees (one "cost information
change" period), the system issues ``R`` queries per peer-optimization; the
gain of that period is the per-query traffic saved times the number of
queries, the penalty is the overhead traffic of one reconstruction.  Figures
13-16 sweep the closure depth *h* and the frequency ratio *R* to find the
minimal *h* with optimization rate > 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "optimization_rate",
    "OptimizationTradeoff",
    "minimal_depth_for_gain",
]


def optimization_rate(
    traffic_saved_per_query: float,
    overhead_per_reconstruction: float,
    frequency_ratio: float,
) -> float:
    """Gain/penalty ratio for one reconstruction period.

    Parameters
    ----------
    traffic_saved_per_query:
        Blind-flooding traffic minus optimized query traffic, cost units.
    overhead_per_reconstruction:
        Phase 1-3 traffic of one optimization round, cost units.
    frequency_ratio:
        R = query frequency / cost-information change frequency, i.e. the
        number of queries amortizing one reconstruction.
    """
    if frequency_ratio < 0:
        raise ValueError("frequency_ratio must be non-negative")
    if overhead_per_reconstruction <= 0:
        return float("inf") if traffic_saved_per_query > 0 else 0.0
    return frequency_ratio * traffic_saved_per_query / overhead_per_reconstruction


@dataclass(frozen=True)
class OptimizationTradeoff:
    """Measured gain/penalty inputs for one (topology, depth) configuration.

    Produced by the depth-sweep experiment; Figures 13-16 are pure functions
    of a collection of these.
    """

    depth: int
    avg_degree: float
    baseline_traffic_per_query: float
    optimized_traffic_per_query: float
    overhead_per_reconstruction: float

    @property
    def traffic_saved_per_query(self) -> float:
        """Per-query traffic reduction over blind flooding."""
        return self.baseline_traffic_per_query - self.optimized_traffic_per_query

    @property
    def reduction_percent(self) -> float:
        """Query-traffic reduction rate (%) — Figure 11's y-axis."""
        if self.baseline_traffic_per_query <= 0:
            return 0.0
        return 100.0 * self.traffic_saved_per_query / self.baseline_traffic_per_query

    def rate(self, frequency_ratio: float) -> float:
        """Optimization rate at a given R — Figures 13-16's y-axis."""
        return optimization_rate(
            self.traffic_saved_per_query,
            self.overhead_per_reconstruction,
            frequency_ratio,
        )


def minimal_depth_for_gain(
    tradeoffs: Sequence[OptimizationTradeoff],
    frequency_ratio: float,
) -> Optional[int]:
    """Smallest closure depth whose optimization rate exceeds 1 at *R*.

    The paper: "The minimal value of h is defined as the value of h that
    leads to an optimization rate of 1."  Returns ``None`` when no swept
    depth achieves a rate above 1 (e.g. R = 1 in Figure 13).
    """
    qualifying = [t.depth for t in tradeoffs if t.rate(frequency_ratio) > 1.0]
    return min(qualifying) if qualifying else None
