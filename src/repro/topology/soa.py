"""Struct-of-arrays overlay engine for 100k+-peer experiments.

:class:`ArrayOverlay` is a drop-in :class:`~repro.topology.overlay.Overlay`
replacement that keeps the peer/edge state in flat numpy arrays instead of
Python dict-of-set objects:

* per-slot arrays — peer id, physical host, live logical degree — indexed by
  a dense *slot* number (``_index`` maps peer id -> slot);
* a CSR adjacency over slots (``_indptr`` / ``_nbr``) with a parallel
  ``float64`` per-edge cost array (``NaN`` = cost not yet known, the array
  form of the object engine's per-edge cost cache);
* an **incremental edit buffer**: mutations never rewrite the CSR in place.
  :meth:`disconnect` tombstones base entries (``_dead``), :meth:`connect`
  buffers new edges in a small dict-of-dicts overlay (``_extra``), and once
  the buffered edit count crosses a threshold the structure re-packs into a
  fresh compact CSR (slots reassigned in sorted-peer order, rows sorted).
  Compactions and buffer flushes are counted in
  :data:`repro.perf.counters` (``soa_compactions`` /
  ``soa_edit_buffer_flushes``).

Semantics — epoch bumps, cost-cache layering (shared host-pair cache over a
per-edge memo), counter accounting, and error behaviour — mirror the object
engine exactly, so the two engines produce byte-identical experiment figures
from the same seed (pinned in ``tests/experiments/test_reproducibility.py``).
The payoff is bulk state:

* :meth:`warm_edge_costs` is O(1) when the overlay is already warm (the
  object engine re-scans every edge per call — the dominant cost of large
  ACE steps), and a vectorized NaN scan otherwise;
* :meth:`flooding_csr` lowers the adjacency straight into the compiled
  query kernel's CSR form (:mod:`repro.search.batch`) without materializing
  per-peer neighbor sets.

:meth:`neighbors` returns a fresh *snapshot* set per call (the object engine
returns its live internal set); all in-repo consumers either copy or re-fetch
around mutations, so the two behaviours are indistinguishable.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from ..oracle.base import DelayOracle
from ..oracle.exact import ExactOracle
from ..perf import counters
from .overlay import Overlay
from .physical import PhysicalTopology

__all__ = ["ArrayOverlay"]


class ArrayOverlay(Overlay):
    """Flat-array overlay engine (see module docstring)."""

    def __init__(
        self,
        physical: PhysicalTopology,
        hosts: Optional[Dict[int, int]] = None,
        oracle: Optional[DelayOracle] = None,
        compact_threshold: Optional[int] = None,
    ) -> None:
        # Deliberately does NOT call Overlay.__init__: the dict structures
        # (_hosts/_adjacency/_edge_costs) are never created, so any inherited
        # method that was missed in the override sweep fails loudly instead
        # of silently reading empty state.
        self._physical = physical
        if oracle is not None and oracle.physical is not physical:
            raise ValueError("oracle answers for a different underlay")
        self._oracle = oracle if oracle is not None else ExactOracle(physical)
        self._cost_cache: Dict[Tuple[int, int], float] = {}
        self._epoch = 0
        self._compact_threshold = compact_threshold

        self._index: Dict[int, int] = {}
        self._slot_peer: np.ndarray = np.empty(0, dtype=np.int64)
        self._slot_host: np.ndarray = np.empty(0, dtype=np.int64)
        self._slot_degree: np.ndarray = np.empty(0, dtype=np.int64)
        self._nslots = 0
        self._free: List[int] = []

        self._indptr: np.ndarray = np.zeros(1, dtype=np.int64)
        self._nbr: np.ndarray = np.empty(0, dtype=np.int64)
        self._ncost: np.ndarray = np.empty(0, dtype=np.float64)
        self._dead: np.ndarray = np.zeros(0, dtype=bool)
        self._nbase = 0

        self._extra: Dict[int, Dict[int, float]] = {}
        self._edits = 0
        self._nedges = 0
        self._missing = 0
        self._peers_cache: Optional[List[int]] = None
        #: Slots still exactly the sorted-peer layout of the last repack
        #: (no peer added/removed since): re-packs can skip re-deriving the
        #: slot order and index.
        self._slots_canonical = False

        if hosts:
            for peer, host in hosts.items():
                self.add_peer(peer, host)

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def from_overlay(
        cls, source: Overlay, compact_threshold: Optional[int] = None
    ) -> "ArrayOverlay":
        """Convert any overlay into a compact array engine.

        Known per-edge costs and the host-pair memo are snapshotted (into
        *private* copies — unlike :meth:`copy`, the conversion decouples the
        cache state so the two engines evolve independently); the epoch
        carries over.
        """
        if isinstance(source, ArrayOverlay):
            clone = source.copy()
            clone._cost_cache = dict(source._cost_cache)
            clone._compact_threshold = compact_threshold
            return clone
        out = cls(
            source.physical, oracle=source.oracle,
            compact_threshold=compact_threshold,
        )
        order = source.peers()
        n = len(order)
        index = {p: i for i, p in enumerate(order)}
        host = np.empty(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        nbr: List[int] = []
        cost: List[float] = []
        # replint: disable=REP002 — engine conversion snapshots the sibling
        # engine's memo wholesale; coherence is preserved because the costs
        # transfer together with the epoch and host-pair cache below.
        edge_costs = source._edge_costs
        for i, p in enumerate(order):
            host[i] = source.host_of(p)
            row = sorted(source.neighbors(p))
            for q in row:
                nbr.append(index[q])
                key = (p, q) if p < q else (q, p)
                cost.append(edge_costs.get(key, math.nan))
            indptr[i + 1] = indptr[i] + len(row)
        out._install_base(order, index, host, indptr, nbr, cost)
        out._cost_cache = dict(source._cost_cache)
        out._epoch = source.epoch
        return out

    def _install_base(
        self,
        order: List[int],
        index: Dict[int, int],
        host: np.ndarray,
        indptr: np.ndarray,
        nbr: Union[List[int], np.ndarray],
        cost: Union[List[float], np.ndarray],
    ) -> None:
        """Install a freshly packed base CSR (slots in sorted-peer order)."""
        n = len(order)
        nnz = int(indptr[n])
        self._index = index
        self._slot_peer = np.array(order, dtype=np.int64)
        self._slot_host = host
        self._slot_degree = np.diff(indptr).astype(np.int64)
        self._nslots = n
        self._free = []
        self._indptr = indptr
        self._nbr = (
            np.array(nbr, dtype=np.int64) if nnz else np.empty(0, dtype=np.int64)
        )
        self._ncost = (
            np.array(cost, dtype=np.float64)
            if nnz
            else np.empty(0, dtype=np.float64)
        )
        self._dead = np.zeros(nnz, dtype=bool)
        self._nbase = n
        self._extra = {}
        self._edits = 0
        self._nedges = nnz // 2
        self._missing = (
            int(np.count_nonzero(np.isnan(self._ncost))) // 2 if nnz else 0
        )
        self._peers_cache = order
        self._slots_canonical = True

    def _compact(self) -> None:
        """Re-pack the CSR: merge the edit buffer, drop tombstones.

        Slots are reassigned in sorted-peer order and every row is sorted by
        neighbor peer id — the canonical layout :meth:`flooding_csr` lowers
        from.  Structure (and therefore the epoch) is unchanged.
        """
        counters.soa_compactions += 1
        if self._edits or self._extra:
            counters.soa_edit_buffer_flushes += 1
        identity = self._slots_canonical
        if identity:
            # Peer set untouched since the last repack: slots already ARE the
            # canonical sorted-peer layout, so the order, index and host
            # arrays carry over and the whole remap collapses to a live-entry
            # mask over the base CSR.
            order = self._peers_cache
            if order is None:  # pragma: no cover - canonical implies cached
                order = self._slot_peer[: self._nbase].tolist()
            n = self._nbase
            index = self._index
            host = self._slot_host[:n].astype(np.int64)
            new_of = None
        else:
            order = sorted(self._index)
            n = len(order)
            index = {p: i for i, p in enumerate(order)}
            old_index = self._index
            if n:
                old_slots = np.fromiter(
                    (old_index[p] for p in order), count=n, dtype=np.int64
                )
            else:
                old_slots = np.empty(0, dtype=np.int64)
            new_of = np.full(max(self._nslots, 1), -1, dtype=np.int64)
            new_of[old_slots] = np.arange(n, dtype=np.int64)
            host = self._slot_host[old_slots].astype(np.int64)

        # Live base entries of every surviving row, gathered in one shot.
        if identity:
            live = ~self._dead
            deg_all = (self._indptr[1:] - self._indptr[:-1]) if n else (
                np.empty(0, dtype=np.int64)
            )
            e_row = np.repeat(np.arange(n, dtype=np.int64), deg_all)[live]
            e_nbr = self._nbr[live]
            e_cost = self._ncost[live]
        else:
            has_base = old_slots < self._nbase
            so = old_slots[has_base]
            base_rows = np.nonzero(has_base)[0]
            deg = self._indptr[so + 1] - self._indptr[so]
            total = int(deg.sum())
            if total:
                ends = np.cumsum(deg)
                eidx = (
                    np.repeat(self._indptr[so] - (ends - deg), deg)
                    + np.arange(total)
                )
                live = ~self._dead[eidx]
                eidx = eidx[live]
                e_row = np.repeat(base_rows, deg)[live]
                e_nbr = new_of[self._nbr[eidx]]
                e_cost = self._ncost[eidx]
            else:
                e_row = e_nbr = np.empty(0, dtype=np.int64)
                e_cost = np.empty(0, dtype=np.float64)

        # Buffered extra edges (small; entries on freed slots are skipped
        # exactly like the per-row .get() of the scalar layout pass).
        ex_row: List[int] = []
        ex_nbr: List[int] = []
        ex_cost: List[float] = []
        for slot, ex in self._extra.items():
            r = slot if new_of is None else int(new_of[slot])
            if r < 0 or not ex:
                continue
            for sv, c in ex.items():
                ex_row.append(r)
                ex_nbr.append(sv if new_of is None else int(new_of[sv]))
                ex_cost.append(c)
        if ex_row:
            e_row = np.concatenate([e_row, np.array(ex_row, dtype=np.int64)])
            e_nbr = np.concatenate([e_nbr, np.array(ex_nbr, dtype=np.int64)])
            e_cost = np.concatenate(
                [e_cost, np.array(ex_cost, dtype=np.float64)]
            )

        # Canonical layout: rows in sorted-peer order, each row sorted by
        # neighbor slot (== neighbor peer id; (row, nbr) pairs are unique,
        # so this matches the scalar per-row pair sort exactly).  Under the
        # identity fast path with no buffered extras the masked base rows
        # are already in that order, so the sort is a no-op we skip.
        if not (identity and not ex_row):
            perm = np.lexsort((e_nbr, e_row))
            e_nbr = e_nbr[perm]
            e_cost = e_cost[perm]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(e_row, minlength=n), out=indptr[1:])
        self._install_base(order, index, host, indptr, e_nbr, e_cost)

    def _maybe_compact(self) -> None:
        limit = self._compact_threshold
        if limit is None:
            limit = max(64, self._nedges // 4)
        if self._edits > limit:
            self._compact()

    # ------------------------------------------------------------------
    # Slot helpers
    # ------------------------------------------------------------------

    def _new_slot(self, peer: int, host: int) -> int:
        if self._free:
            slot = self._free.pop()
        else:
            cap = len(self._slot_peer)
            if self._nslots == cap:
                grow = max(8, cap)
                pad_i = np.full(grow, -1, dtype=np.int64)
                self._slot_peer = np.concatenate([self._slot_peer, pad_i])
                self._slot_host = np.concatenate([self._slot_host, pad_i])
                self._slot_degree = np.concatenate(
                    [self._slot_degree, np.zeros(grow, dtype=np.int64)]
                )
            slot = self._nslots
            self._nslots += 1
        self._slot_peer[slot] = peer
        self._slot_host[slot] = host
        self._slot_degree[slot] = 0
        self._index[peer] = slot
        return slot

    def _base_find(self, su: int, sv: int) -> int:
        """Index of the base CSR entry su -> sv, or -1 (rows sorted by slot)."""
        if su >= self._nbase:
            return -1
        s = int(self._indptr[su])
        e = int(self._indptr[su + 1])
        i = s + int(np.searchsorted(self._nbr[s:e], sv))
        if i < e and int(self._nbr[i]) == sv:
            return i
        return -1

    def _edge_live(self, su: int, sv: int) -> bool:
        ex = self._extra.get(su)
        if ex is not None and sv in ex:
            return True
        i = self._base_find(su, sv)
        return i >= 0 and not bool(self._dead[i])

    def _fill_edge_cost(self, su: int, sv: int, d: float) -> None:
        """Record the now-known cost of a live edge (both directions)."""
        ex = self._extra.get(su)
        if ex is not None and sv in ex:
            ex[sv] = d
            self._extra[sv][su] = d
        else:
            i = self._base_find(su, sv)
            j = self._base_find(sv, su)
            self._ncost[i] = d
            self._ncost[j] = d
        self._missing -= 1

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Number of live peers."""
        return len(self._index)

    @property
    def num_edges(self) -> int:
        """Number of logical connections."""
        return self._nedges

    def peers(self) -> List[int]:
        """Sorted list of live peer ids."""
        if self._peers_cache is None:
            self._peers_cache = sorted(self._index)
        return list(self._peers_cache)

    def has_peer(self, peer: int) -> bool:
        """Whether *peer* is currently in the overlay."""
        return peer in self._index

    def host_of(self, peer: int) -> int:
        """Physical host a peer lives on."""
        return int(self._slot_host[self._index[peer]])

    def add_peer(self, peer: int, host: int) -> None:
        """Add a (disconnected) peer residing on physical node *host*."""
        if peer in self._index:
            raise ValueError(f"peer {peer} already exists")
        if not (0 <= host < self._physical.num_nodes):
            raise ValueError(f"host {host} out of range")
        self._new_slot(peer, host)
        self._peers_cache = None
        self._slots_canonical = False
        self._epoch += 1

    def remove_peer(self, peer: int) -> None:
        """Remove a peer and all its logical connections."""
        slot = self._index[peer]
        ex = self._extra.pop(slot, None)
        if ex:
            for sv, c in ex.items():
                other = self._extra[sv]
                del other[slot]
                if not other:
                    del self._extra[sv]
                self._slot_degree[sv] -= 1
                self._nedges -= 1
                if math.isnan(c):
                    self._missing -= 1
        if slot < self._nbase:
            s = int(self._indptr[slot])
            e = int(self._indptr[slot + 1])
            for j in range(s, e):
                if self._dead[j]:
                    continue
                sv = int(self._nbr[j])
                self._dead[j] = True
                self._dead[self._base_find(sv, slot)] = True
                self._slot_degree[sv] -= 1
                self._nedges -= 1
                if math.isnan(float(self._ncost[j])):
                    self._missing -= 1
                self._edits += 2
        del self._index[peer]
        self._slot_peer[slot] = -1
        self._slot_host[slot] = -1
        self._slot_degree[slot] = 0
        self._free.append(slot)
        self._peers_cache = None
        self._slots_canonical = False
        self._epoch += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def neighbors(self, peer: int) -> Set[int]:
        """The peer's current logical neighbors (a fresh snapshot set)."""
        slot = self._index[peer]
        out: Set[int] = set()
        if slot < self._nbase:
            s = int(self._indptr[slot])
            e = int(self._indptr[slot + 1])
            if e > s:
                seg = self._nbr[s:e]
                alive = ~self._dead[s:e]
                if alive.all():
                    out.update(self._slot_peer[seg].tolist())
                else:
                    out.update(self._slot_peer[seg[alive]].tolist())
        ex = self._extra.get(slot)
        if ex:
            sp = self._slot_peer
            out.update(int(sp[sv]) for sv in ex)
        return out

    def degree(self, peer: int) -> int:
        """Number of logical connections of *peer*."""
        return int(self._slot_degree[self._index[peer]])

    def average_degree(self) -> float:
        """Mean logical degree over live peers."""
        if not self._index:
            return 0.0
        return 2.0 * self.num_edges / self.num_peers

    def has_edge(self, u: int, v: int) -> bool:
        """Whether a logical connection u-v exists."""
        su = self._index.get(u)
        sv = self._index.get(v)
        if su is None or sv is None:
            return False
        return self._edge_live(su, sv)

    def connect(self, u: int, v: int) -> bool:
        """Establish the logical connection u-v (see object engine)."""
        if u == v:
            raise ValueError("a peer cannot connect to itself")
        su = self._index.get(u)
        sv = self._index.get(v)
        if su is None or sv is None:
            raise KeyError(f"unknown peer in connect({u}, {v})")
        if self._edge_live(su, sv):
            return False
        hu = int(self._slot_host[su])
        hv = int(self._slot_host[sv])
        if hu == hv:
            c = 0.0
        else:
            hkey = (hu, hv) if hu < hv else (hv, hu)
            cached = self._cost_cache.get(hkey)
            c = cached if cached is not None else math.nan
        self._extra.setdefault(su, {})[sv] = c
        self._extra.setdefault(sv, {})[su] = c
        self._slot_degree[su] += 1
        self._slot_degree[sv] += 1
        self._nedges += 1
        if math.isnan(c):
            self._missing += 1
        self._edits += 1
        self._epoch += 1
        self._maybe_compact()
        return True

    def disconnect(self, u: int, v: int) -> bool:
        """Cut the logical connection u-v.  Returns ``True`` if it existed."""
        su = self._index.get(u)
        sv = self._index.get(v)
        if su is None or sv is None:
            raise KeyError(f"unknown peer in disconnect({u}, {v})")
        ex = self._extra.get(su)
        if ex is not None and sv in ex:
            c = ex.pop(sv)
            if not ex:
                del self._extra[su]
            other = self._extra[sv]
            del other[su]
            if not other:
                del self._extra[sv]
        else:
            i = self._base_find(su, sv)
            if i < 0 or self._dead[i]:
                return False
            c = float(self._ncost[i])
            self._dead[i] = True
            self._dead[self._base_find(sv, su)] = True
            self._edits += 2
        self._slot_degree[su] -= 1
        self._slot_degree[sv] -= 1
        self._nedges -= 1
        if math.isnan(c):
            self._missing -= 1
        self._epoch += 1
        self._maybe_compact()
        return True

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over logical edges as ``(u, v)`` with ``u < v``."""
        sp = self._slot_peer
        if len(self._nbr):
            live = np.nonzero(~self._dead)[0]
            rows = np.searchsorted(self._indptr, live, side="right") - 1
            for i, su in zip(live.tolist(), rows.tolist()):
                u = int(sp[su])
                v = int(sp[int(self._nbr[i])])
                if u < v:
                    yield (u, v)
        for su in sorted(self._extra):
            u = int(sp[su])
            for sv in sorted(self._extra[su]):
                v = int(sp[sv])
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------

    def use_oracle(self, oracle: DelayOracle) -> None:
        """Swap the delay backend, dropping every cost memo."""
        if oracle.physical is not self._physical:
            raise ValueError("oracle answers for a different underlay")
        self._oracle = oracle
        self._cost_cache = {}
        if len(self._ncost):
            self._ncost[:] = math.nan
        for ex in self._extra.values():
            for sv in ex:
                ex[sv] = math.nan
        self._missing = self._nedges
        self._epoch += 1

    def cost(self, u: int, v: int) -> float:
        """Cost of a (potential) logical link — object-engine semantics."""
        su = self._index[u]
        sv = self._index[v]
        live = False
        ex = self._extra.get(su)
        if ex is not None and sv in ex:
            live = True
            c = ex[sv]
            if not math.isnan(c):
                counters.edge_cost_hits += 1
                return c
        else:
            i = self._base_find(su, sv)
            if i >= 0 and not bool(self._dead[i]):
                live = True
                c = float(self._ncost[i])
                if not math.isnan(c):
                    counters.edge_cost_hits += 1
                    return c
        hu = int(self._slot_host[su])
        hv = int(self._slot_host[sv])
        if hu == hv:
            d = 0.0
        else:
            hkey = (hu, hv) if hu < hv else (hv, hu)
            got = self._cost_cache.get(hkey)
            if got is None:
                got = self._oracle.delay(hu, hv)
                self._cost_cache[hkey] = got
            d = got
        if live:
            counters.edge_cost_misses += 1
            self._fill_edge_cost(su, sv, d)
        return d

    def _live_neighbor_costs(self, slot: int) -> Dict[int, float]:
        """peer id -> cached cost (NaN = unknown) for the slot's live edges."""
        out: Dict[int, float] = {}
        if slot < self._nbase:
            s = int(self._indptr[slot])
            e = int(self._indptr[slot + 1])
            if e > s:
                seg = self._nbr[s:e]
                alive = ~self._dead[s:e]
                if not alive.all():
                    seg = seg[alive]
                    costs = self._ncost[s:e][alive]
                else:
                    costs = self._ncost[s:e]
                out.update(zip(self._slot_peer[seg].tolist(), costs.tolist()))
        ex = self._extra.get(slot)
        if ex:
            sp = self._slot_peer
            for sv, c in ex.items():
                out[int(sp[sv])] = c
        return out

    def costs_from(self, u: int, targets: Iterable[int]) -> Dict[int, float]:
        """Costs from *u* to several peers with at most one underlay query."""
        su = self._index[u]
        hu = int(self._slot_host[su])
        nbr_costs = self._live_neighbor_costs(su)
        out: Dict[int, float] = {}
        missing: List[int] = []
        for t in targets:
            c = nbr_costs.get(t)
            if c is not None and not math.isnan(c):
                counters.edge_cost_hits += 1
                out[t] = c
                continue
            st = self._index[t]
            ht = int(self._slot_host[st])
            if ht == hu:
                out[t] = 0.0
                if c is not None:
                    self._fill_edge_cost(su, st, 0.0)
                    nbr_costs[t] = 0.0
                continue
            hkey = (hu, ht) if hu < ht else (ht, hu)
            cached = self._cost_cache.get(hkey)
            if cached is None:
                missing.append(t)
            else:
                out[t] = cached
                if c is not None:
                    self._fill_edge_cost(su, st, cached)
                    nbr_costs[t] = cached
        if missing:
            vals: Optional[np.ndarray] = None
            vec: Optional[np.ndarray] = None
            if self._oracle.pairwise_cheap:
                # Embedding backend: resolve only the pairs actually asked
                # for; delay_pairs matches the vector entries bit for bit.
                hosts = [
                    int(self._slot_host[self._index[t]]) for t in missing
                ]
                vals = self._oracle.delay_pairs([hu] * len(missing), hosts)
            else:
                vec = self._oracle.delays_from(hu)
            for k, t in enumerate(missing):
                st = self._index[t]
                ht = int(self._slot_host[st])
                if vals is not None:
                    d = float(vals[k])
                else:
                    assert vec is not None
                    d = float(vec[ht])
                hkey = (hu, ht) if hu < ht else (ht, hu)
                self._cost_cache[hkey] = d
                out[t] = d
                c = nbr_costs.get(t)
                if c is not None and math.isnan(c):
                    counters.edge_cost_misses += 1
                    self._fill_edge_cost(su, st, d)
                    nbr_costs[t] = d
        return out

    def _iter_unknown_edges(self) -> Iterator[Tuple[int, int]]:
        """Live edges (as slot pairs, lower peer id first) lacking a cost."""
        if len(self._ncost):
            unknown = np.nonzero(np.isnan(self._ncost) & ~self._dead)[0]
            if len(unknown):
                rows = np.searchsorted(self._indptr, unknown, side="right") - 1
                sp = self._slot_peer
                for i, su in zip(unknown.tolist(), rows.tolist()):
                    sv = int(self._nbr[i])
                    if int(sp[su]) < int(sp[sv]):
                        yield su, sv
        sp = self._slot_peer
        for su in sorted(self._extra):
            pu = int(sp[su])
            for sv, c in self._extra[su].items():
                if math.isnan(c) and pu < int(sp[sv]):
                    yield su, sv

    def warm_edge_costs(self, chunk_size: int = 256) -> int:
        """Bulk-fill the per-edge costs — O(1) when already warm.

        The object engine re-scans every edge per call; here a running
        missing-cost counter short-circuits the warm case, and the cold case
        finds the NaN entries with one vectorized scan.  The oracle call
        pattern (grouping, direction, chunking) matches the object engine
        exactly, so both engines compute bit-identical costs.
        """
        if self._missing == 0:
            return 0
        pending: Dict[int, List[Tuple[int, int, int, Tuple[int, int]]]] = {}
        for su, sv in list(self._iter_unknown_edges()):
            hu = int(self._slot_host[su])
            hv = int(self._slot_host[sv])
            if hu == hv:
                self._fill_edge_cost(su, sv, 0.0)
                continue
            hkey = (hu, hv) if hu < hv else (hv, hu)
            cached = self._cost_cache.get(hkey)
            if cached is not None:
                self._fill_edge_cost(su, sv, cached)
                continue
            pending.setdefault(hu, []).append((su, sv, hv, hkey))
        if not pending:
            return 0
        filled = 0
        sources = sorted(pending)
        if self._oracle.pairwise_cheap:
            # Embedding backend: ask for exactly the missing pairs in the
            # same (source-sorted) order the chunked path fills them —
            # delay_pairs is bit-identical to the vector entries, so the
            # resulting costs match the object engine's exactly.
            flat = [(h, e) for h in sources for e in pending[h]]
            ds = self._oracle.delay_pairs(
                [h for h, _ in flat], [e[2] for _, e in flat]
            )
            for (h, (su, sv, hv, hkey)), d0 in zip(flat, ds.tolist()):
                d = float(d0)
                self._cost_cache[hkey] = d
                self._fill_edge_cost(su, sv, d)
                counters.edge_cost_misses += 1
                filled += 1
            return filled
        for start in range(0, len(sources), chunk_size):
            chunk = sources[start : start + chunk_size]
            rows = self._oracle.delays_from_many(chunk, cache=False)
            for h in chunk:
                row = rows[h]
                for su, sv, hv, hkey in pending[h]:
                    d = float(row[hv])
                    self._cost_cache[hkey] = d
                    self._fill_edge_cost(su, sv, d)
                    counters.edge_cost_misses += 1
                    filled += 1
        return filled

    def warm_sources(self, peers: Iterable[int]) -> int:
        """Prefetch underlay delay vectors for the given peers' hosts.

        A no-op for pairwise-cheap oracles: prefetching exists to batch
        full single-source solves, and an embedding backend answers the
        exact pairs later asked for directly — computing whole vectors
        here would be strictly wasted arithmetic.
        """
        if self._oracle.pairwise_cheap:
            return 0
        hosts = {
            int(self._slot_host[self._index[p]])
            for p in peers
            if p in self._index
        }
        return self._oracle.warm(hosts)

    @property
    def cached_edge_costs(self) -> int:
        """Number of logical edges with a resident cached cost."""
        return self._nedges - self._missing

    def invalidate_edge_costs(self) -> None:
        """Drop the whole per-edge cost cache (host-pair memos survive)."""
        if len(self._ncost):
            self._ncost[:] = math.nan
        for ex in self._extra.values():
            for sv in ex:
                ex[sv] = math.nan
        self._missing = self._nedges
        self._epoch += 1

    # ------------------------------------------------------------------
    # Bulk views
    # ------------------------------------------------------------------

    def adjacency_csr(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Compacted live-adjacency snapshot for bulk kernels.

        Returns ``(peer_ids, indptr, targets, costs)`` *views* over the base
        arrays: after compaction slot ``i`` holds the ``i``-th smallest peer
        id, so the slot-valued CSR doubles as a row-index CSR, ``peer_ids``
        is ascending, and every row is sorted by neighbor peer id.  Warms
        the edge costs first and compacts if the edit buffer is non-empty,
        so no row carries tombstones or NaN costs.  The views are read-only
        snapshots: consume them before the next structural mutation.
        """
        self.warm_edge_costs()
        if self._extra or self._edits or self._free or self._nbase != len(
            self._index
        ):
            self._compact()
        n = len(self._index)
        return (
            self._slot_peer[:n],
            self._indptr[: n + 1],
            self._nbr,
            self._ncost,
        )

    def flooding_csr(
        self,
    ) -> Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]:
        """Lower the live adjacency to compiled-CSR inputs.

        Returns ``(peer_ids, indptr, targets, costs)`` where ``targets`` are
        row indices into ``peer_ids`` (sorted within each row) — exactly the
        layout :class:`repro.search.batch.CompiledGraph` wants.  Warms the
        edge costs first and compacts if the edit buffer is non-empty, so
        the arrays can be handed over without per-edge Python iteration.
        """
        _, indptr, nbr, ncost = self.adjacency_csr()
        return (self.peers(), indptr.copy(), nbr.copy(), ncost.copy())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def component_of(self, peer: int) -> Set[int]:
        """All peers reachable from *peer* over logical links."""
        seen = {peer}
        stack = [peer]
        while stack:
            cur = stack.pop()
            for nxt in self.neighbors(cur):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def components(self) -> List[Set[int]]:
        """All connected components, largest first."""
        remaining = set(self._index)
        out: List[Set[int]] = []
        while remaining:
            comp = self.component_of(next(iter(remaining)))
            out.append(comp)
            remaining -= comp
        out.sort(key=len, reverse=True)
        return out

    def is_connected(self) -> bool:
        """Whether all live peers form a single component."""
        if not self._index:
            return True
        return len(self.component_of(next(iter(self._index)))) == self.num_peers

    # ------------------------------------------------------------------

    def copy(self) -> "ArrayOverlay":
        """Deep copy of the logical layer (shares the underlay and oracle)."""
        clone = ArrayOverlay(
            self._physical,
            oracle=self._oracle,
            compact_threshold=self._compact_threshold,
        )
        clone._index = dict(self._index)
        clone._slot_peer = self._slot_peer.copy()
        clone._slot_host = self._slot_host.copy()
        clone._slot_degree = self._slot_degree.copy()
        clone._nslots = self._nslots
        clone._free = list(self._free)
        clone._indptr = self._indptr.copy()
        clone._nbr = self._nbr.copy()
        clone._ncost = self._ncost.copy()
        clone._dead = self._dead.copy()
        clone._nbase = self._nbase
        clone._extra = {s: dict(d) for s, d in self._extra.items()}
        clone._edits = self._edits
        clone._nedges = self._nedges
        clone._missing = self._missing
        clone._peers_cache = (
            list(self._peers_cache) if self._peers_cache is not None else None
        )
        clone._cost_cache = self._cost_cache  # shared, append-only cache
        clone._epoch = self._epoch  # compiled-graph caches key on identity
        return clone

    def to_networkx(self):  # type: ignore[no-untyped-def]
        """Export the logical graph (``cost`` edge attribute included)."""
        import networkx as nx

        g = nx.Graph()
        for p in self.peers():
            g.add_node(p, host=self.host_of(p))
        self.warm_edge_costs()  # one batched solve; the loop below only probes
        for u, v in self.edges():
            # replint: disable=REP004 — served from the just-warmed edge cache
            g.add_edge(u, v, cost=self.cost(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayOverlay(num_peers={self.num_peers}, "
            f"num_edges={self.num_edges})"
        )
