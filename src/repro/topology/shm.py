"""Zero-copy shared-memory transport for the immutable underlay.

The process-pool experiment fan-out used to rebuild the entire underlay from
its seeded config in every worker — at paper scale (20,000 nodes) that
per-worker generator run dominates wall-clock.  The underlay is *immutable*
after construction, so instead of recomputing it per process we place its
CSR arrays (``indptr``/``indices``/``data``) and node coordinates into named
``multiprocessing.shared_memory`` segments once, in the parent, and let each
worker map the same physical pages read-only:

* :meth:`PhysicalTopology.export_shared
  <repro.topology.physical.PhysicalTopology.export_shared>` copies the
  arrays into fresh segments and returns a :class:`SharedUnderlay` that
  *owns* them (the only object allowed to unlink);
* the small, picklable :class:`SharedTopologyHandle` travels to workers
  (pool initializer args);
* :meth:`PhysicalTopology.attach_shared
  <repro.topology.physical.PhysicalTopology.attach_shared>` maps the
  segments **zero-copy** — the attached numpy arrays are read-only views of
  the shared buffers, and the CSR matrix is rebuilt around them without
  copying.

Lifecycle discipline (the part that prevents ``/dev/shm`` leaks):

* The exporting process is the single owner.  :class:`SharedUnderlay` is a
  context manager whose exit *unlinks*; an ``atexit`` hook (guarded by the
  creating PID, so forked children can never fire it) catches hard exits,
  and :meth:`~SharedUnderlay.unlink` is idempotent.
* Attachers only ever *close* (unmap), never unlink.  Pool workers share
  the parent's ``resource_tracker`` process (the fd is inherited for both
  fork and spawn starts), so the attach-side registration Python < 3.13
  performs is a harmless duplicate in the tracker's name *set* — and it
  means a crashed fleet still gets its segments reaped by the tracker at
  shutdown.  Do **not** ``resource_tracker.unregister`` on attach: with a
  shared tracker that deletes the *creator's* registration and turns the
  later legitimate unlink into tracker noise.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from types import TracebackType
from typing import Dict, List, Mapping, Optional, Tuple, Type

import numpy as np

__all__ = [
    "SharedArraySpec",
    "SharedTopologyHandle",
    "SharedSegments",
    "SharedUnderlay",
    "export_arrays",
    "attach_array",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Location and layout of one numpy array in a shared segment."""

    #: Name of the ``multiprocessing.shared_memory`` segment.
    name: str
    #: Numpy dtype string (``arr.dtype.str``), preserving byte order.
    dtype: str
    #: Array shape; the attached view reproduces it exactly.
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class SharedTopologyHandle:
    """Picklable description of one exported underlay.

    Everything a worker needs to rebuild a functioning
    :class:`~repro.topology.physical.PhysicalTopology` around the shared
    CSR arrays — a few hundred bytes, whatever the underlay size.
    """

    num_nodes: int
    cache_size: int
    indptr: SharedArraySpec
    indices: SharedArraySpec
    data: SharedArraySpec
    coordinates: Optional[SharedArraySpec] = None


def _export_array(arr: np.ndarray) -> Tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy *arr* into a fresh shared segment, returning (segment, spec)."""
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    return seg, SharedArraySpec(name=seg.name, dtype=arr.dtype.str, shape=arr.shape)


def export_arrays(
    arrays: Mapping[str, np.ndarray],
) -> Tuple[List[shared_memory.SharedMemory], Dict[str, SharedArraySpec]]:
    """Export several arrays, unwinding cleanly if any allocation fails."""
    segments: List[shared_memory.SharedMemory] = []
    specs: Dict[str, SharedArraySpec] = {}
    try:
        for key, arr in arrays.items():
            seg, spec = _export_array(arr)
            segments.append(seg)
            specs[key] = spec
    except BaseException:
        for seg in segments:
            seg.close()
            seg.unlink()
        raise
    return segments, specs


def attach_array(
    spec: SharedArraySpec,
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map an exported array read-only, without copying.

    The returned segment must be kept alive as long as the array view is in
    use (the view borrows its buffer).  Attachers unmap (``close``); only
    the exporting :class:`SharedUnderlay` ever unlinks.
    """
    seg = shared_memory.SharedMemory(name=spec.name)
    view: np.ndarray = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return seg, view


class SharedSegments:
    """Owner of a set of shared-memory segments plus their picklable handle.

    The lifecycle contract is payload-agnostic, so any immutable array bundle
    — the underlay CSR (:class:`SharedUnderlay`), a landmark embedding
    (:class:`repro.oracle.landmark.SharedEmbedding`) — rides the same owner:
    use as a context manager or call :meth:`unlink` in a ``finally``; either
    way the segments are removed exactly once.  An ``atexit`` guard backstops
    hard exits; it is keyed to the creating PID so a forked worker that
    inherited this object can never destroy the parent's segments.
    """

    def __init__(
        self,
        handle: object,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self._handle = handle
        self._segments = segments
        self._owner_pid = os.getpid()
        self._unlinked = False
        atexit.register(self._atexit_unlink)

    @property
    def segment_names(self) -> List[str]:
        """Names of the owned segments (for leak checks in tests)."""
        return [seg.name for seg in self._segments]

    def _atexit_unlink(self) -> None:
        if os.getpid() == self._owner_pid:
            self.unlink()

    def unlink(self) -> None:
        """Unmap and remove every owned segment (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        atexit.unregister(self._atexit_unlink)
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass
        self._segments = []

    def __enter__(self) -> "SharedSegments":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "unlinked" if self._unlinked else f"{len(self._segments)} segments"
        return f"{type(self).__name__}({state})"


class SharedUnderlay(SharedSegments):
    """Owner of one exported underlay's shared-memory segments.

    Created by :meth:`PhysicalTopology.export_shared
    <repro.topology.physical.PhysicalTopology.export_shared>`; see
    :class:`SharedSegments` for the ownership/unlink contract.
    """

    def __init__(
        self,
        handle: SharedTopologyHandle,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        super().__init__(handle, segments)
        self._topology_handle = handle

    @property
    def handle(self) -> SharedTopologyHandle:
        """The picklable handle workers attach from."""
        return self._topology_handle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "unlinked" if self._unlinked else f"{len(self._segments)} segments"
        return f"SharedUnderlay(num_nodes={self._topology_handle.num_nodes}, {state})"
