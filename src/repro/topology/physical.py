"""Physical (underlay) network topology.

The paper simulates Gnutella-like overlays on top of Internet-like physical
topologies generated with BRITE.  :class:`PhysicalTopology` is our equivalent
substrate: an undirected weighted graph whose edge weights are link delays
(Euclidean distances in a BRITE-style coordinate plane, see
:mod:`repro.topology.generators`).

The quantity every other layer needs from the underlay is the *shortest-path
delay* between two hosts: the cost of one logical-overlay transmission is the
underlay shortest-path delay between the two endpoints (paper Section 3.3,
Tables 1 and 2).  Shortest paths are computed with scipy's sparse Dijkstra and
cached per source node with an LRU, which keeps 20,000-node underlays
tractable on a laptop.

Two access patterns are supported:

* **single source** (:meth:`delays_from` / :meth:`delay`) — one Dijkstra run
  per LRU miss, the original on-demand path;
* **batched** (:meth:`delays_from_many` / :meth:`warm`) — all uncached
  sources of a known working set are solved by *one* vectorized scipy call
  (``indices=[...]``), amortizing the python/scipy dispatch overhead and
  letting callers prefetch exactly the source set they are about to touch
  instead of faulting one run at a time.

All paths update the shared :data:`repro.perf.counters` so experiments can
assert cache behavior (e.g. "zero Dijkstra runs during query propagation on
a warmed overlay").

The topology is immutable once built, which enables a third construction
path: :meth:`export_shared` places the CSR arrays and coordinates into named
shared-memory segments, and :meth:`attach_shared` rebuilds a fully
functional topology around **zero-copy read-only views** of those segments
in another process — no per-worker graph regeneration, no pickling of
megabyte-scale arrays (see :mod:`repro.topology.shm`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from ..perf import counters
from .shm import SharedTopologyHandle, SharedUnderlay, attach_array, export_arrays

__all__ = ["PhysicalTopology"]


class PhysicalTopology:
    """An undirected weighted graph modelling the physical Internet.

    Parameters
    ----------
    num_nodes:
        Number of hosts/routers in the underlay.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < num_nodes``.
    delays:
        Per-edge link delays, aligned with *edges*.  Must be positive.
    coordinates:
        Optional ``(num_nodes, 2)`` array of plane coordinates (kept for
        inspection and for generators that derive delays from geometry).
    cache_size:
        Maximum number of single-source Dijkstra results kept in the LRU.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        delays: Iterable[float],
        coordinates: Optional[np.ndarray] = None,
        cache_size: int = 128,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        edge_list = [(int(u), int(v)) for u, v in edges]
        delay_list = [float(d) for d in delays]
        if len(edge_list) != len(delay_list):
            raise ValueError("edges and delays must have the same length")
        for (u, v), d in zip(edge_list, delay_list):
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if d <= 0:
                raise ValueError(f"link delay must be positive, got {d} on ({u}, {v})")

        self._num_nodes = int(num_nodes)
        edge_delays: Dict[Tuple[int, int], float] = {}
        adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        for (u, v), d in zip(edge_list, delay_list):
            key = (u, v) if u < v else (v, u)
            if key in edge_delays:
                # Keep the cheaper of duplicate links (multigraphs collapse).
                edge_delays[key] = min(edge_delays[key], d)
                continue
            edge_delays[key] = d
            adjacency[u].append(v)
            adjacency[v].append(u)
        self._edge_delays: Optional[Dict[Tuple[int, int], float]] = edge_delays
        self._adjacency: Optional[List[Tuple[int, ...]]] = [
            tuple(sorted(a)) for a in adjacency
        ]

        if coordinates is not None:
            coordinates = np.asarray(coordinates, dtype=float)
            if coordinates.shape != (num_nodes, 2):
                raise ValueError(
                    f"coordinates must have shape ({num_nodes}, 2), got {coordinates.shape}"
                )
        self._coordinates = coordinates

        self._matrix = self._build_matrix()
        self._cache_size = int(cache_size)
        self._dist_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._pred_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        #: Shared-memory segments an attached instance borrows its CSR
        #: buffers from; empty for locally-built topologies.
        self._attached_segments: List[object] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_matrix(self) -> csr_matrix:
        edge_delays = self._edge_map()
        m = len(edge_delays)
        rows = np.empty(2 * m, dtype=np.int64)
        cols = np.empty(2 * m, dtype=np.int64)
        data = np.empty(2 * m, dtype=float)
        for i, ((u, v), d) in enumerate(edge_delays.items()):
            rows[2 * i], cols[2 * i], data[2 * i] = u, v, d
            rows[2 * i + 1], cols[2 * i + 1], data[2 * i + 1] = v, u, d
        return csr_matrix((data, (rows, cols)), shape=(self._num_nodes, self._num_nodes))

    def _edge_map(self) -> Dict[Tuple[int, int], float]:
        """The ``{(u < v): delay}`` map, derived lazily when attached."""
        if self._edge_delays is None:
            self._materialize_edge_structures()
            assert self._edge_delays is not None
        return self._edge_delays

    def _adjacency_lists(self) -> List[Tuple[int, ...]]:
        """Per-node sorted neighbor tuples, derived lazily when attached."""
        if self._adjacency is None:
            self._materialize_edge_structures()
            assert self._adjacency is not None
        return self._adjacency

    def _materialize_edge_structures(self) -> None:
        """Derive the python-level edge map and adjacency from the CSR.

        Attached instances start with only the (shared) CSR arrays; the
        dict/tuple mirrors are rebuilt on first use.  CSR rows are sorted,
        so adjacency tuples come out identical to the eager constructor's.
        """
        m = self._matrix
        indptr, indices, data = m.indptr, m.indices, m.data
        n = self._num_nodes
        self._adjacency = [
            tuple(int(j) for j in indices[indptr[i] : indptr[i + 1]])
            for i in range(n)
        ]
        rows = np.repeat(np.arange(n), np.diff(indptr))
        upper = rows < indices
        self._edge_delays = {
            (int(u), int(v)): float(d)
            for u, v, d in zip(rows[upper], indices[upper], data[upper])
        }

    # ------------------------------------------------------------------
    # Shared-memory export / attach
    # ------------------------------------------------------------------

    def export_shared(self) -> SharedUnderlay:
        """Copy the CSR arrays (and coordinates) into shared memory.

        Returns a :class:`~repro.topology.shm.SharedUnderlay` that owns the
        segments; its picklable ``.handle`` is what worker processes pass to
        :meth:`attach_shared`.  The exporter must :meth:`unlink
        <repro.topology.shm.SharedUnderlay.unlink>` when the fleet is done
        (context manager / ``finally``); attached workers only unmap.
        """
        self._matrix.sort_indices()
        arrays: Dict[str, np.ndarray] = {
            "indptr": self._matrix.indptr,
            "indices": self._matrix.indices,
            "data": self._matrix.data,
        }
        if self._coordinates is not None:
            arrays["coordinates"] = self._coordinates
        segments, specs = export_arrays(arrays)
        handle = SharedTopologyHandle(
            num_nodes=self._num_nodes,
            cache_size=self._cache_size,
            indptr=specs["indptr"],
            indices=specs["indices"],
            data=specs["data"],
            coordinates=specs.get("coordinates"),
        )
        return SharedUnderlay(handle, segments)

    @classmethod
    def attach_shared(cls, handle: SharedTopologyHandle) -> "PhysicalTopology":
        """Rebuild a topology around an exported underlay, zero-copy.

        The CSR arrays are read-only views into the shared segments (no
        regeneration, no copying); the python-level edge map and adjacency
        are derived lazily on first structural access.  Delay/path caches
        start empty and are private to this process.  The attached instance
        keeps the segment mappings alive for its own lifetime and never
        unlinks them — the exporting process owns the segments.
        """
        self = cls.__new__(cls)
        self._num_nodes = int(handle.num_nodes)
        segments: List[object] = []
        arrays: Dict[str, np.ndarray] = {}
        specs = {
            "indptr": handle.indptr,
            "indices": handle.indices,
            "data": handle.data,
        }
        if handle.coordinates is not None:
            specs["coordinates"] = handle.coordinates
        try:
            for name, spec in specs.items():
                seg, view = attach_array(spec)
                segments.append(seg)
                arrays[name] = view
        except BaseException:
            for seg in segments:
                seg.close()  # type: ignore[attr-defined]
            raise
        matrix = csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=(self._num_nodes, self._num_nodes),
            copy=False,
        )
        matrix.has_sorted_indices = True
        self._matrix = matrix
        self._coordinates = arrays.get("coordinates")
        self._edge_delays = None
        self._adjacency = None
        self._cache_size = int(handle.cache_size)
        self._dist_cache = OrderedDict()
        self._pred_cache = OrderedDict()
        self._attached_segments = segments
        counters.underlay_attaches += 1
        return self

    @property
    def is_attached(self) -> bool:
        """Whether this instance borrows its CSR buffers from shared memory."""
        return bool(self._attached_segments)

    @classmethod
    def from_networkx(cls, graph, weight: str = "delay", **kwargs) -> "PhysicalTopology":
        """Build from a networkx graph whose nodes are ``0..n-1``.

        Missing edge weights default to 1.0.
        """
        n = graph.number_of_nodes()
        nodes = sorted(graph.nodes())
        if nodes != list(range(n)):
            raise ValueError("graph nodes must be exactly 0..n-1; relabel first")
        edges = []
        delays = []
        for u, v, data in graph.edges(data=True):
            edges.append((u, v))
            delays.append(float(data.get(weight, 1.0)))
        return cls(n, edges, delays, **kwargs)

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with ``delay`` edge attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._num_nodes))
        for (u, v), d in self._edge_map().items():
            g.add_edge(u, v, delay=d)
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of hosts in the underlay."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of physical links."""
        return len(self._edge_map())

    @property
    def coordinates(self) -> Optional[np.ndarray]:
        """Plane coordinates of the hosts, if the generator provided them."""
        return self._coordinates

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(range(self._num_nodes))

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, delay)`` triples with ``u < v``."""
        for (u, v), d in self._edge_map().items():
            yield u, v, d

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Physical neighbors of *node* (sorted, immutable)."""
        return self._adjacency_lists()[node]

    def degree(self, node: int) -> int:
        """Number of physical links attached to *node*."""
        return len(self._adjacency_lists()[node])

    def degrees(self) -> np.ndarray:
        """Degree of every node as an array."""
        return np.array([len(a) for a in self._adjacency_lists()], dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether a direct physical link u-v exists."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_map()

    def link_delay(self, u: int, v: int) -> float:
        """Delay of the direct physical link u-v.

        Raises ``KeyError`` if the link does not exist.
        """
        key = (u, v) if u < v else (v, u)
        return self._edge_map()[key]

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------

    def _evict(self) -> None:
        """Shrink both LRU caches to capacity, oldest sources first.

        The predecessor cache holds a subset of the distance cache's keys
        (batched solves skip predecessors), so eviction is driven by the
        distance cache and mirrored into the predecessor cache — the single
        place both are trimmed, so the two can never drift.
        """
        while len(self._dist_cache) > self._cache_size:
            old, _ = self._dist_cache.popitem(last=False)
            self._pred_cache.pop(old, None)

    def _run_dijkstra(self, source: int) -> None:
        counters.dijkstra_runs += 1
        counters.dijkstra_sources += 1
        dist, pred = dijkstra(
            self._matrix, directed=False, indices=source, return_predecessors=True
        )
        self._dist_cache[source] = dist
        self._pred_cache[source] = pred
        self._evict()

    def delays_from(self, source: int) -> np.ndarray:
        """Shortest-path delay from *source* to every node.

        Unreachable nodes get ``inf``.  The returned array is cached and must
        not be mutated by the caller.
        """
        if not (0 <= source < self._num_nodes):
            raise ValueError(f"source {source} out of range")
        if source not in self._dist_cache:
            counters.delay_cache_misses += 1
            self._run_dijkstra(source)
        else:
            counters.delay_cache_hits += 1
            self._dist_cache.move_to_end(source)
        return self._dist_cache[source]

    def delays_from_many(
        self, sources: Iterable[int], cache: bool = True
    ) -> Dict[int, np.ndarray]:
        """Shortest-path delay vectors for several sources at once.

        All sources missing from the LRU are solved by **one** vectorized
        scipy Dijkstra call (``indices=[...]``) instead of one call per
        source.  Returns ``{source: delay_vector}`` for every distinct
        source; vectors are cached (subject to the normal LRU capacity —
        use :meth:`warm` to also grow the cache around a working set) and
        must not be mutated by the caller.

        With ``cache=False`` the freshly solved vectors are returned but not
        retained, which bounds memory when streaming a large source set only
        to extract a few scalars per vector (see
        :meth:`Overlay.warm_edge_costs <repro.topology.overlay.Overlay.warm_edge_costs>`).
        """
        out: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        for raw in sources:
            s = int(raw)
            if not (0 <= s < self._num_nodes):
                raise ValueError(f"source {s} out of range")
            if s in out or s in missing:
                continue
            vec = self._dist_cache.get(s)
            if vec is not None:
                counters.delay_cache_hits += 1
                self._dist_cache.move_to_end(s)
                out[s] = vec
            else:
                counters.delay_cache_misses += 1
                missing.append(s)
        if missing:
            counters.dijkstra_runs += 1
            counters.dijkstra_sources += len(missing)
            counters.largest_batch = max(counters.largest_batch, len(missing))
            dist = dijkstra(self._matrix, directed=False, indices=missing)
            dist = np.atleast_2d(dist)
            for i, s in enumerate(missing):
                # Copy each row out so the (k, n) solve block can be freed.
                vec = np.array(dist[i], copy=True)
                out[s] = vec
                if cache:
                    self._dist_cache[s] = vec
            if cache:
                self._evict()
        return out

    def warm(self, sources: Iterable[int], chunk_size: int = 512) -> int:
        """Prefetch delay vectors for a working set of sources.

        Grows the LRU capacity so the whole set stays resident, then solves
        all uncached sources in batched Dijkstra calls of at most
        *chunk_size* sources each (bounding the transient ``(k, n)`` scipy
        output).  Returns the number of sources actually solved; warming an
        already-resident set is free.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        wanted: List[int] = []
        seen = set()
        for raw in sources:
            s = int(raw)
            if not (0 <= s < self._num_nodes):
                raise ValueError(f"source {s} out of range")
            if s not in seen:
                seen.add(s)
                wanted.append(s)
        if len(wanted) > self._cache_size:
            self._cache_size = len(wanted)
        computed = 0
        pending = [s for s in wanted if s not in self._dist_cache]
        for start in range(0, len(pending), chunk_size):
            chunk = pending[start : start + chunk_size]
            computed += len(chunk)
            self.delays_from_many(chunk, cache=True)
        return computed

    def cached_sources(self) -> List[int]:
        """Sources whose delay vectors are currently resident (LRU order)."""
        return list(self._dist_cache)

    @property
    def dijkstra_cache_size(self) -> int:
        """Current LRU capacity (grows when :meth:`warm` needs room)."""
        return self._cache_size

    def delay(self, u: int, v: int) -> float:
        """Shortest-path delay between hosts *u* and *v* (0 when ``u == v``)."""
        if u == v:
            return 0.0
        # Serve from whichever endpoint is already cached to avoid extra
        # runs, refreshing LRU recency so hot sources stay resident.
        if u in self._dist_cache:
            counters.delay_cache_hits += 1
            self._dist_cache.move_to_end(u)
            return float(self._dist_cache[u][v])
        if v in self._dist_cache:
            counters.delay_cache_hits += 1
            self._dist_cache.move_to_end(v)
            return float(self._dist_cache[v][u])
        counters.delay_cache_misses += 1
        self._run_dijkstra(u)
        return float(self._dist_cache[u][v])

    def path(self, u: int, v: int) -> List[int]:
        """One shortest path from *u* to *v* as a node list (inclusive).

        Raises ``ValueError`` if *v* is unreachable from *u*.
        """
        if u == v:
            return [u]
        if u not in self._pred_cache:
            self._run_dijkstra(u)
        pred = self._pred_cache[u]
        if pred[v] < 0:
            raise ValueError(f"node {v} is unreachable from {u}")
        out = [v]
        node = v
        while node != u:
            node = int(pred[node])
            out.append(node)
        out.reverse()
        return out

    def path_delay(self, path: Sequence[int]) -> float:
        """Total delay along an explicit node path."""
        return sum(self.link_delay(a, b) for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the underlay is a single connected component."""
        n, _ = connected_components(self._matrix, directed=False)
        return n == 1

    def component_labels(self) -> np.ndarray:
        """Connected-component label of every node."""
        _, labels = connected_components(self._matrix, directed=False)
        return labels

    def largest_component_nodes(self) -> List[int]:
        """Node ids of the largest connected component (sorted)."""
        labels = self.component_labels()
        counts = np.bincount(labels)
        best = int(np.argmax(counts))
        return [int(i) for i in np.flatnonzero(labels == best)]

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalTopology(num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges})"
        )
