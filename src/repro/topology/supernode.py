"""Two-tier (supernode) overlays — the paper's KaZaA configuration.

Section 1: "In unstructured P2P systems, queries are flooded among peers
(such as in Gnutella) or among supernodes (such as in KaZaA)."  ACE applies
unchanged to the supernode tier: the backbone *is* an
:class:`~repro.topology.overlay.Overlay`, so
:class:`~repro.core.ace.AceProtocol` optimizes it directly while leaves
stay attached to their supernodes.

Model
-----
* a capacity is drawn per peer (Zipf-like, as measured by Saroiu et al.);
  the top fraction by capacity becomes supernodes;
* each leaf attaches to one random supernode (the same locality-oblivious
  bootstrap that causes the mismatch) and publishes its object index there;
* a query travels leaf -> supernode, floods the backbone, and every reached
  supernode answers from the indices of its leaves — so the *search scope*
  is the number of peers whose content was searched (supernodes plus
  covered leaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..rng import ensure_rng
from .overlay import Overlay
from .physical import PhysicalTopology

if TYPE_CHECKING:  # avoid a topology -> search -> core import cycle
    from ..search.flooding import ForwardingStrategy

__all__ = ["TwoTierOverlay", "TwoTierQueryResult", "build_two_tier", "two_tier_query"]


@dataclass
class TwoTierOverlay:
    """A supernode backbone plus leaf attachments."""

    backbone: Overlay
    leaf_parent: Dict[int, int]
    leaf_hosts: Dict[int, int]
    capacities: Dict[int, float]

    @property
    def num_supernodes(self) -> int:
        """Peers on the flooding tier."""
        return self.backbone.num_peers

    @property
    def num_leaves(self) -> int:
        """Peers attached below the flooding tier."""
        return len(self.leaf_parent)

    @property
    def num_peers(self) -> int:
        """All participants."""
        return self.num_supernodes + self.num_leaves

    def is_supernode(self, peer: int) -> bool:
        """Whether *peer* sits on the backbone."""
        return self.backbone.has_peer(peer)

    def supernode_of(self, peer: int) -> int:
        """The supernode responsible for *peer* (itself if a supernode)."""
        if self.backbone.has_peer(peer):
            return peer
        return self.leaf_parent[peer]

    def leaves_of(self, supernode: int) -> List[int]:
        """Leaves attached to a supernode (sorted)."""
        return sorted(
            leaf for leaf, parent in self.leaf_parent.items() if parent == supernode
        )

    def leaf_link_cost(self, leaf: int) -> float:
        """Underlay delay of the leaf's uplink to its supernode."""
        return self.backbone.physical.delay(
            self.leaf_hosts[leaf],
            self.backbone.host_of(self.leaf_parent[leaf]),
        )

    def capacity_degree_correlation(self) -> float:
        """Pearson correlation between supernode capacity and degree.

        The Gia-style health metric: positive values mean high-capacity
        nodes carry the load.
        """
        peers = self.backbone.peers()
        if len(peers) < 3:
            return 0.0
        caps = np.array([self.capacities[p] for p in peers], dtype=float)
        degs = np.array([self.backbone.degree(p) for p in peers], dtype=float)
        if caps.std() == 0 or degs.std() == 0:
            return 0.0
        return float(np.corrcoef(caps, degs)[0, 1])


def build_two_tier(
    physical: PhysicalTopology,
    n_peers: int,
    supernode_fraction: float = 0.25,
    backbone_degree: float = 6.0,
    rng: Optional[np.random.Generator] = None,
    capacity_zipf: float = 1.2,
) -> TwoTierOverlay:
    """Elect supernodes by capacity and wire a two-tier overlay.

    Capacities follow a Zipf-like heavy tail; the top
    ``supernode_fraction`` of peers form a small-world backbone and every
    remaining peer attaches to one uniformly random supernode.
    """
    if not 0.0 < supernode_fraction < 1.0:
        raise ValueError("supernode_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    n_super = max(3, int(round(supernode_fraction * n_peers)))
    if n_super >= n_peers:
        raise ValueError("need at least one leaf; lower supernode_fraction")

    hosts_pool = physical.largest_component_nodes()
    if n_peers > len(hosts_pool):
        raise ValueError("not enough physical hosts")
    picked = rng.choice(len(hosts_pool), size=n_peers, replace=False)
    hosts = [hosts_pool[int(i)] for i in picked]

    ranks = rng.permutation(n_peers) + 1
    capacities = {p: float(ranks[p] ** (-capacity_zipf)) for p in range(n_peers)}
    by_capacity = sorted(range(n_peers), key=lambda p: -capacities[p])
    supernodes = sorted(by_capacity[:n_super])
    leaves = sorted(by_capacity[n_super:])

    from .overlay import small_world_overlay  # local import to avoid cycles

    # Build the backbone among the elected supernodes: reuse the
    # small-world generator on a sub-mapping, then relabel to peer ids.
    backbone = Overlay(physical, {p: hosts[p] for p in supernodes})
    template = small_world_overlay(
        physical,
        n_super,
        avg_degree=backbone_degree,
        rng=rng,
    )
    # template peers are 0..n_super-1 on random hosts; re-use only its
    # *edge structure* over our supernode ids (hosts stay as elected).
    for u, v in template.edges():
        backbone.connect(supernodes[u], supernodes[v])

    leaf_parent = {
        leaf: supernodes[int(rng.integers(n_super))] for leaf in leaves
    }
    leaf_hosts = {leaf: hosts[leaf] for leaf in leaves}
    return TwoTierOverlay(
        backbone=backbone,
        leaf_parent=leaf_parent,
        leaf_hosts=leaf_hosts,
        capacities=capacities,
    )


@dataclass(frozen=True)
class TwoTierQueryResult:
    """Outcome of one query through the supernode tier."""

    source: int
    entry_supernode: int
    supernodes_reached: FrozenSet[int]
    peers_covered: int
    traffic_cost: float
    uplink_cost: float
    first_response_time: Optional[float]
    holders_found: Tuple[int, ...]

    @property
    def search_scope(self) -> int:
        """Peers whose content was searched."""
        return self.peers_covered

    @property
    def success(self) -> bool:
        """Whether a replica was found."""
        return self.first_response_time is not None


def two_tier_query(
    overlay: TwoTierOverlay,
    source: int,
    holders: Iterable[int],
    strategy: Optional["ForwardingStrategy"] = None,
    ttl: Optional[int] = None,
) -> TwoTierQueryResult:
    """Run one query: uplink, backbone flood, indexed answers.

    *strategy* routes the backbone flood (blind flooding by default; pass
    :func:`repro.search.tree_routing.ace_strategy` of a protocol running on
    ``overlay.backbone`` for the ACE-enabled system).
    """
    from ..search.batch import propagate_single
    from ..search.flooding import blind_flooding_strategy

    backbone = overlay.backbone
    entry = overlay.supernode_of(source)
    physical = backbone.physical

    uplink = 0.0
    if source != entry:
        uplink = physical.delay(
            overlay.leaf_hosts[source], backbone.host_of(entry)
        )

    if strategy is None:
        strategy = blind_flooding_strategy(backbone)
    prop = propagate_single(backbone, entry, strategy, ttl=ttl)

    covered = len(prop.reached) + sum(
        len(overlay.leaves_of(sn)) for sn in prop.reached
    )

    holder_set = {h for h in holders if h != source}
    responses: List[float] = []
    found: Set[int] = set()
    for holder in holder_set:
        responsible = overlay.supernode_of(holder)
        if responsible in prop.arrival_time:
            found.add(holder)
            # Response returns along the reverse path, plus the source
            # uplink both ways.
            responses.append(2.0 * (uplink + prop.arrival_time[responsible]))
    return TwoTierQueryResult(
        source=source,
        entry_supernode=entry,
        supernodes_reached=frozenset(prop.reached),
        peers_covered=covered,
        traffic_cost=prop.traffic_cost + uplink,
        uplink_cost=uplink,
        first_response_time=min(responses) if responses else None,
        holders_found=tuple(sorted(found)),
    )
