"""Graphviz DOT export for overlays and underlays.

For inspecting small worlds by eye: exports the logical overlay (optionally
colored by autonomous system and annotated with link costs) or the physical
underlay in plain DOT, renderable with ``dot -Tsvg`` or any Graphviz
viewer.  No Graphviz dependency — the writer emits the text format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from .overlay import Overlay
from .physical import PhysicalTopology

__all__ = ["overlay_to_dot", "physical_to_dot", "write_dot"]

# A categorical palette cycled over AS ids.
_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b5", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', r"\"") + '"'


def overlay_to_dot(
    overlay: Overlay,
    name: str = "overlay",
    as_labels: Optional[np.ndarray] = None,
    show_costs: bool = True,
    highlight_edges: Optional[Sequence] = None,
) -> str:
    """Render the logical overlay as a DOT graph.

    Parameters
    ----------
    as_labels:
        Optional per-host AS ids (e.g. from
        :func:`~repro.topology.autonomous_systems.transit_stub`); peers are
        then filled with one color per AS.
    show_costs:
        Annotate each logical link with its measured cost.
    highlight_edges:
        Edges (as ``(u, v)`` pairs) drawn bold red — e.g. a spanning tree.
    """
    highlight = {
        (min(u, v), max(u, v)) for u, v in (highlight_edges or ())
    }
    lines = [f"graph {_quote(name)} {{"]
    lines.append("  node [shape=circle, style=filled, fillcolor=white];")
    for peer in overlay.peers():
        attrs = [f"label={_quote(peer)}"]
        if as_labels is not None:
            as_id = int(as_labels[overlay.host_of(peer)])
            color = _PALETTE[as_id % len(_PALETTE)]
            attrs.append(f"fillcolor={_quote(color)}")
            attrs.append(f"tooltip={_quote(f'AS {as_id}')}")
        lines.append(f"  {peer} [{', '.join(attrs)}];")
    if show_costs:
        # One batched underlay solve for every edge label, then dict probes.
        overlay.warm_edge_costs()
    edge_costs = (
        {(u, v): overlay.cost(u, v) for u, v in overlay.edges()}
        if show_costs
        else {}
    )
    for u, v in sorted(overlay.edges()):
        attrs = []
        if show_costs:
            attrs.append(f"label={_quote(round(edge_costs[(u, v)], 1))}")
        if (u, v) in highlight:
            attrs.append("color=red")
            attrs.append("penwidth=2.5")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {u} -- {v}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def physical_to_dot(
    physical: PhysicalTopology,
    name: str = "underlay",
    max_nodes: int = 400,
) -> str:
    """Render the physical underlay as a DOT graph.

    Refuses graphs beyond *max_nodes* (DOT layouts of 20,000-node underlays
    are neither useful nor tractable); raise the cap explicitly if needed.
    """
    if physical.num_nodes > max_nodes:
        raise ValueError(
            f"underlay has {physical.num_nodes} nodes > max_nodes={max_nodes}; "
            "export a subgraph or raise the cap"
        )
    lines = [f"graph {_quote(name)} {{"]
    lines.append("  node [shape=point];")
    coords = physical.coordinates
    for node in physical.nodes():
        if coords is not None:
            x, y = coords[node]
            lines.append(
                f"  {node} [pos={_quote(f'{x / 72:.3f},{y / 72:.3f}!')}];"
            )
        else:
            lines.append(f"  {node};")
    for u, v, delay in sorted(physical.edges()):
        lines.append(f"  {u} -- {v} [label={_quote(round(delay, 1))}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(text: str, path: Union[str, Path]) -> Path:
    """Write DOT text to a file; returns the path."""
    path = Path(path)
    path.write_text(text, encoding="utf-8")
    return path
