"""BRITE-style physical topology generators.

The paper (Section 4.1) generates its 20,000-node physical topologies with
BRITE, using a model whose output exhibits both *power-law* degree
distributions and *small-world* path/clustering characteristics.  BRITE's two
classic flat router-level models are Waxman and Barabási–Albert (BA), both of
which place nodes on a coordinate plane; we implement those plus the GLP
(Generalized Linear Preference) power-law model and a Watts–Strogatz
small-world model for property studies.

All generators return a connected :class:`~repro.topology.physical.PhysicalTopology`
whose link delays are the Euclidean distances between endpoint coordinates
(the standard BRITE convention for delay), floored at ``min_delay``.

Randomness is always taken from an explicit :class:`numpy.random.Generator`
so that every experiment in the repository is reproducible from a seed.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

import numpy as np

from ..rng import ensure_rng
from .physical import PhysicalTopology

__all__ = [
    "waxman",
    "barabasi_albert",
    "glp",
    "watts_strogatz",
    "grid",
    "paper_underlay",
]

_PLANE_SIZE = 1000.0
_MIN_DELAY = 1.0


def _as_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    # Deterministic fallback: a forgotten rng still reproduces run-to-run.
    return ensure_rng(rng)


def _place_nodes(n: int, rng: np.random.Generator, plane_size: float) -> np.ndarray:
    return rng.uniform(0.0, plane_size, size=(n, 2))


def _euclidean_delay(coords: np.ndarray, u: int, v: int, min_delay: float) -> float:
    d = float(np.hypot(*(coords[u] - coords[v])))
    return max(d, min_delay)


def _connect_components(
    edges: Set[Tuple[int, int]],
    n: int,
    coords: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Add shortest geometric links until the edge set forms one component.

    Generators with probabilistic attachment can leave the graph
    disconnected; BRITE repairs this the same way, by joining components
    with extra links.  We join each smaller component to the largest one via
    the geometrically closest node pair, which keeps delays realistic.
    """
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)

    groups: dict = {}
    for node in range(n):
        groups.setdefault(find(node), []).append(node)
    components = sorted(groups.values(), key=len, reverse=True)
    main = components[0]
    main_arr = np.array(main)
    for comp in components[1:]:
        comp_arr = np.array(comp)
        # Closest pair between comp and the main component.
        diffs = coords[comp_arr][:, None, :] - coords[main_arr][None, :, :]
        dists = np.hypot(diffs[..., 0], diffs[..., 1])
        i, j = np.unravel_index(int(np.argmin(dists)), dists.shape)
        u, v = int(comp_arr[i]), int(main_arr[j])
        key = (u, v) if u < v else (v, u)
        edges.add(key)
        union(u, v)
        main_arr = np.concatenate([main_arr, comp_arr])


def _finalize(
    n: int,
    edges: Set[Tuple[int, int]],
    coords: np.ndarray,
    rng: np.random.Generator,
    min_delay: float,
    cache_size: int,
) -> PhysicalTopology:
    _connect_components(edges, n, coords, rng)
    edge_list = sorted(edges)
    delays = [_euclidean_delay(coords, u, v, min_delay) for u, v in edge_list]
    return PhysicalTopology(n, edge_list, delays, coordinates=coords, cache_size=cache_size)


def waxman(
    n: int,
    alpha: float = 0.15,
    beta: float = 0.2,
    rng: Optional[np.random.Generator] = None,
    plane_size: float = _PLANE_SIZE,
    min_delay: float = _MIN_DELAY,
    cache_size: int = 128,
) -> PhysicalTopology:
    """Waxman random graph: P(u~v) = alpha * exp(-d(u,v) / (beta * L)).

    *L* is the plane diagonal.  The classic BRITE flat-Waxman model.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = _as_rng(rng)
    coords = _place_nodes(n, rng, plane_size)
    diag = plane_size * math.sqrt(2.0)
    edges: Set[Tuple[int, int]] = set()
    # Vectorised edge sampling, one row at a time to bound memory.
    for u in range(n - 1):
        d = np.hypot(
            coords[u + 1 :, 0] - coords[u, 0], coords[u + 1 :, 1] - coords[u, 1]
        )
        prob = alpha * np.exp(-d / (beta * diag))
        hits = np.flatnonzero(rng.random(d.shape[0]) < prob)
        for h in hits:
            edges.add((u, u + 1 + int(h)))
    return _finalize(n, edges, coords, rng, min_delay, cache_size)


def barabasi_albert(
    n: int,
    m: int = 2,
    rng: Optional[np.random.Generator] = None,
    plane_size: float = _PLANE_SIZE,
    min_delay: float = _MIN_DELAY,
    cache_size: int = 128,
) -> PhysicalTopology:
    """Barabási–Albert preferential attachment on a coordinate plane.

    Each arriving node attaches to *m* existing nodes with probability
    proportional to their degree — BRITE's "BA" flat model, which yields the
    power-law degree distribution the paper relies on.
    """
    if n < m + 1:
        raise ValueError("need n > m")
    if m < 1:
        raise ValueError("m must be >= 1")
    rng = _as_rng(rng)
    coords = _place_nodes(n, rng, plane_size)
    edges: Set[Tuple[int, int]] = set()
    # Seed clique of m+1 nodes.
    targets_pool: List[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.add((u, v))
            targets_pool.extend((u, v))
    for new in range(m + 1, n):
        chosen: Set[int] = set()
        while len(chosen) < m:
            # Draw from the degree-weighted pool (each edge endpoint appears
            # once per incident edge — classic BA implementation trick).
            pick = targets_pool[int(rng.integers(len(targets_pool)))]
            chosen.add(pick)
        for t in chosen:
            edges.add((t, new) if t < new else (new, t))
            targets_pool.extend((t, new))
    return _finalize(n, edges, coords, rng, min_delay, cache_size)


def glp(
    n: int,
    m: int = 2,
    p: float = 0.45,
    beta_pref: float = 0.64,
    rng: Optional[np.random.Generator] = None,
    plane_size: float = _PLANE_SIZE,
    min_delay: float = _MIN_DELAY,
    cache_size: int = 128,
) -> PhysicalTopology:
    """Generalized Linear Preference (GLP) model (Bu & Towsley).

    With probability *p* each step adds *m* new links between existing nodes
    (preferentially), otherwise it adds a new node with *m* links.  The
    preference is ``degree - beta_pref``, which produces both power-law
    degrees and higher clustering than plain BA — the combination of
    power-law and small-world properties the paper's Section 4.1 cites.
    """
    if n < m + 2:
        raise ValueError("need n > m + 1")
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1)")
    rng = _as_rng(rng)
    coords = _place_nodes(n, rng, plane_size)
    edges: Set[Tuple[int, int]] = set()
    degree = np.zeros(n, dtype=float)

    def add_edge(a: int, b: int) -> bool:
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        if key in edges:
            return False
        edges.add(key)
        degree[a] += 1
        degree[b] += 1
        return True

    active = m + 1
    for u in range(active):
        for v in range(u + 1, active):
            add_edge(u, v)

    def pick_pref(count: int, exclude: Set[int]) -> List[int]:
        weights = degree[:active] - beta_pref
        weights = np.clip(weights, 0.05, None)
        for idx in exclude:
            if idx < active:
                weights[idx] = 0.0
        total = float(weights.sum())
        if total <= 0:
            pool = [i for i in range(active) if i not in exclude]
            rng.shuffle(pool)
            return pool[:count]
        out: List[int] = []
        w = weights.copy()
        for _ in range(min(count, active - len(exclude))):
            probs = w / w.sum()
            choice = int(rng.choice(active, p=probs))
            out.append(choice)
            w[choice] = 0.0
            if w.sum() <= 0:
                break
        return out

    while active < n:
        if rng.random() < p and active > m + 1:
            # Add m internal links between preferentially chosen nodes.
            for _ in range(m):
                a_list = pick_pref(1, set())
                if not a_list:
                    break
                a = a_list[0]
                b_list = pick_pref(1, {a})
                if not b_list:
                    break
                add_edge(a, b_list[0])
        else:
            new = active
            targets = pick_pref(m, set())
            active += 1
            for t in targets:
                add_edge(new, t)
            if degree[new] == 0:
                add_edge(new, int(rng.integers(active - 1)))
    return _finalize(n, edges, coords, rng, min_delay, cache_size)


def watts_strogatz(
    n: int,
    k: int = 4,
    rewire_p: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    plane_size: float = _PLANE_SIZE,
    min_delay: float = _MIN_DELAY,
    cache_size: int = 128,
) -> PhysicalTopology:
    """Watts–Strogatz small-world ring lattice with rewiring."""
    if k % 2 != 0 or k < 2:
        raise ValueError("k must be even and >= 2")
    if n <= k:
        raise ValueError("need n > k")
    rng = _as_rng(rng)
    coords = _place_nodes(n, rng, plane_size)
    edges: Set[Tuple[int, int]] = set()
    for u in range(n):
        for off in range(1, k // 2 + 1):
            v = (u + off) % n
            edges.add((u, v) if u < v else (v, u))
    rewired: Set[Tuple[int, int]] = set()
    for u, v in sorted(edges):
        if rng.random() < rewire_p:
            for _ in range(8):  # bounded retries to find a fresh endpoint
                w = int(rng.integers(n))
                key = (u, w) if u < w else (w, u)
                if w != u and key not in edges and key not in rewired:
                    rewired.add(key)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return _finalize(n, rewired, coords, rng, min_delay, cache_size)


def grid(
    rows: int,
    cols: int,
    delay: float = 10.0,
    cache_size: int = 128,
) -> PhysicalTopology:
    """Deterministic rows x cols grid with uniform link delay (for tests)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    n = rows * cols
    coords = np.zeros((n, 2))
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            coords[u] = (c * delay, r * delay)
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    delays = [delay] * len(edges)
    return PhysicalTopology(n, edges, delays, coordinates=coords, cache_size=cache_size)


def paper_underlay(
    n: int = 20000,
    rng: Optional[np.random.Generator] = None,
    cache_size: int = 128,
) -> PhysicalTopology:
    """The paper's physical-topology configuration.

    Section 4.1: topologies of *n* = 20,000 nodes generated with BRITE using a
    model that shows power-law and small-world properties.  We use the BA
    model with m=2 (BRITE's router-level default), which satisfies both.
    """
    return barabasi_albert(n, m=2, rng=rng, cache_size=cache_size)
