"""Topology property analysis: power-law and small-world checks.

Section 4.1 of the paper requires that generated topologies "accurately
reflect the topological properties of real networks": power-law degree
distributions (node degree) and small-world characteristics (short
characteristic path length together with high clustering coefficient).

This module provides the statistics used to validate our generators against
those requirements: a maximum-likelihood power-law exponent fit (Clauset,
Shalizi & Newman), the average local clustering coefficient, a sampled
characteristic path length, and the small-world coefficient sigma relative to
an Erdős–Rényi null model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .overlay import Overlay
from .physical import PhysicalTopology

__all__ = [
    "degree_histogram",
    "power_law_exponent",
    "clustering_coefficient",
    "characteristic_path_length",
    "small_world_sigma",
    "TopologyReport",
    "analyze",
]

GraphLike = Union[PhysicalTopology, Overlay]


def _adjacency(graph: GraphLike) -> Dict[int, Tuple[int, ...]]:
    if isinstance(graph, PhysicalTopology):
        return {n: graph.neighbors(n) for n in graph.nodes()}
    return {p: tuple(graph.neighbors(p)) for p in graph.peers()}


def degree_histogram(graph: GraphLike) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for nbrs in _adjacency(graph).values():
        d = len(nbrs)
        hist[d] = hist.get(d, 0) + 1
    return hist


def power_law_exponent(
    degrees: Iterable[int], d_min: int = 1
) -> float:
    """MLE estimate of the power-law exponent alpha of a degree sequence.

    Uses the discrete approximation of Clauset et al.:
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >= d_min.
    Returns ``nan`` when fewer than two qualifying degrees exist.
    """
    ds = [d for d in degrees if d >= d_min]
    if len(ds) < 2:
        return float("nan")
    denom = sum(math.log(d / (d_min - 0.5)) for d in ds)
    if denom <= 0:
        return float("nan")
    return 1.0 + len(ds) / denom


def clustering_coefficient(graph: GraphLike) -> float:
    """Average local clustering coefficient.

    For each node with degree >= 2, the fraction of neighbor pairs that are
    themselves connected; averaged over all nodes (degree < 2 contributes 0,
    the networkx convention).
    """
    adj = _adjacency(graph)
    adj_sets = {n: set(nbrs) for n, nbrs in adj.items()}
    total = 0.0
    count = 0
    for node, nbrs in adj.items():
        k = len(nbrs)
        count += 1
        if k < 2:
            continue
        links = 0
        nlist = list(nbrs)
        for i in range(k):
            si = adj_sets[nlist[i]]
            for j in range(i + 1, k):
                if nlist[j] in si:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / count if count else 0.0


def characteristic_path_length(
    graph: GraphLike,
    samples: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Average hop distance between reachable node pairs, by sampled BFS.

    Runs BFS from at most *samples* random sources and averages the hop
    counts to every reachable node.  Exact when ``samples >= n``.
    """
    rng = rng or np.random.default_rng(0)
    adj = _adjacency(graph)
    nodes = list(adj)
    if len(nodes) < 2:
        return 0.0
    if samples >= len(nodes):
        sources = nodes
    else:
        idx = rng.choice(len(nodes), size=samples, replace=False)
        sources = [nodes[int(i)] for i in idx]
    total = 0.0
    pairs = 0
    for s in sources:
        dist = {s: 0}
        frontier = [s]
        d = 0
        while frontier:
            d += 1
            nxt: List[int] = []
            for u in frontier:
                for v in adj[u]:
                    if v not in dist:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        total += sum(dist.values())
        pairs += len(dist) - 1
    return total / pairs if pairs else 0.0


def small_world_sigma(
    graph: GraphLike,
    samples: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Small-world coefficient sigma = (C/C_rand) / (L/L_rand).

    *C_rand* and *L_rand* are analytic Erdős–Rényi expectations for a graph
    with the same node and edge counts.  sigma >> 1 indicates a small world.
    """
    rng = rng or np.random.default_rng(0)
    adj = _adjacency(graph)
    n = len(adj)
    if n < 3:
        return float("nan")
    m = sum(len(v) for v in adj.values()) / 2.0
    k = 2.0 * m / n
    if k <= 1.0:
        return float("nan")
    c_rand = k / n
    l_rand = math.log(n) / math.log(k)
    c = clustering_coefficient(graph)
    l = characteristic_path_length(graph, samples=samples, rng=rng)
    if c_rand <= 0 or l_rand <= 0 or l <= 0:
        return float("nan")
    return (c / c_rand) / (l / l_rand)


@dataclass(frozen=True)
class TopologyReport:
    """Summary statistics of a topology's shape."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    power_law_alpha: float
    clustering: float
    path_length: float
    small_world_sigma: float

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"n={self.num_nodes} m={self.num_edges} "
            f"<k>={self.average_degree:.2f} kmax={self.max_degree} "
            f"alpha={self.power_law_alpha:.2f} C={self.clustering:.4f} "
            f"L={self.path_length:.2f} sigma={self.small_world_sigma:.2f}"
        )


def analyze(
    graph: GraphLike,
    samples: int = 64,
    power_law_dmin: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> TopologyReport:
    """Compute a :class:`TopologyReport` for a physical or overlay graph."""
    rng = rng or np.random.default_rng(0)
    adj = _adjacency(graph)
    degrees = [len(v) for v in adj.values()]
    n = len(adj)
    m = sum(degrees) // 2
    return TopologyReport(
        num_nodes=n,
        num_edges=m,
        average_degree=(2.0 * m / n) if n else 0.0,
        max_degree=max(degrees) if degrees else 0,
        power_law_alpha=power_law_exponent(degrees, d_min=power_law_dmin),
        clustering=clustering_coefficient(graph),
        path_length=characteristic_path_length(graph, samples=samples, rng=rng),
        small_world_sigma=small_world_sigma(graph, samples=samples, rng=rng),
    )
