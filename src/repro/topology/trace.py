"""Synthetic Gnutella-crawl overlay ("DSS Clip2 trace" substitute).

Section 5 of the paper reports simulating ACE on "a real-world P2P topology
(based on DSS Clip2 trace)" and obtaining results consistent with generated
topologies.  The Clip2 Distributed Search Solutions crawl data is no longer
obtainable, so this module provides the closest synthetic equivalent:

* :func:`synthesize_gnutella_snapshot` builds an overlay whose degree
  distribution follows the power law measured on Gnutella crawls
  (exponent around 2.3, maximum degree capped as crawlers observed), with a
  giant component covering all peers.
* :func:`save_snapshot` / :func:`load_snapshot` serialize the logical
  topology in a simple crawl-file format (one ``peer: neighbor ...`` line per
  peer), standing in for the trace-parsing path the authors had.

The substitution preserves what the experiment depends on: the degree skew
and small-world shape of a real crawl, fed through exactly the same
simulation pipeline as generated topologies.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..rng import ensure_rng
from .overlay import Overlay
from .physical import PhysicalTopology

__all__ = [
    "synthesize_gnutella_snapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_from_adjacency",
]


def _power_law_degrees(
    n: int,
    exponent: float,
    d_min: int,
    d_max: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a graphical power-law degree sequence (even total)."""
    ds = np.arange(d_min, d_max + 1, dtype=float)
    probs = ds ** (-exponent)
    probs /= probs.sum()
    seq = rng.choice(np.arange(d_min, d_max + 1), size=n, p=probs)
    if seq.sum() % 2 == 1:
        seq[int(rng.integers(n))] += 1
    return seq.astype(np.int64)


def synthesize_gnutella_snapshot(
    physical: PhysicalTopology,
    n_peers: int = 1000,
    exponent: float = 2.3,
    d_min: int = 1,
    d_max: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Overlay:
    """Build a Gnutella-crawl-shaped overlay on the given underlay.

    Uses a configuration-model pairing of a sampled power-law degree
    sequence, then removes self-loops/multi-edges and stitches the result
    into a single component (crawl snapshots are connected by construction —
    a crawler only reaches the giant component).
    """
    rng = ensure_rng(rng)
    if d_max is None:
        d_max = max(8, int(round(n_peers ** 0.5)))
    degrees = _power_law_degrees(n_peers, exponent, d_min, d_max, rng)

    candidates = physical.largest_component_nodes()
    if n_peers > len(candidates):
        raise ValueError("not enough physical hosts for the requested snapshot")
    host_idx = rng.choice(len(candidates), size=n_peers, replace=False)
    hosts = {i: candidates[int(h)] for i, h in enumerate(host_idx)}
    ov = Overlay(physical, hosts)

    stubs: List[int] = []
    for peer, d in enumerate(degrees):
        stubs.extend([peer] * int(d))
    stubs_arr = np.array(stubs)
    rng.shuffle(stubs_arr)
    for i in range(0, len(stubs_arr) - 1, 2):
        u, v = int(stubs_arr[i]), int(stubs_arr[i + 1])
        if u != v and not ov.has_edge(u, v):
            ov.connect(u, v)

    # Stitch smaller components onto the giant one (crawler reachability).
    comps = ov.components()
    giant = comps[0]
    giant_list = sorted(giant)
    for comp in comps[1:]:
        u = next(iter(comp))
        v = giant_list[int(rng.integers(len(giant_list)))]
        ov.connect(u, v)
        giant_list.extend(sorted(comp))
    return ov


def snapshot_from_adjacency(
    physical: PhysicalTopology,
    adjacency: Dict[int, Sequence[int]],
    hosts: Optional[Dict[int, int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Overlay:
    """Build an overlay from an explicit adjacency mapping.

    If *hosts* is omitted, peers are assigned random distinct hosts in the
    underlay's largest component.
    """
    rng = ensure_rng(rng)
    peers = sorted(set(adjacency) | {v for nbrs in adjacency.values() for v in nbrs})
    if hosts is None:
        candidates = physical.largest_component_nodes()
        if len(peers) > len(candidates):
            raise ValueError("not enough physical hosts")
        picked = rng.choice(len(candidates), size=len(peers), replace=False)
        hosts = {p: candidates[int(i)] for p, i in zip(peers, picked)}
    ov = Overlay(physical, {p: hosts[p] for p in peers})
    for u, nbrs in adjacency.items():
        for v in nbrs:
            if u != v and not ov.has_edge(u, v):
                ov.connect(u, v)
    return ov


def save_snapshot(overlay: Overlay, path: Union[str, Path]) -> None:
    """Write the logical topology in crawl-file format.

    Format: ``# peers: N`` header, then one ``peer: host n1 n2 ...`` line per
    peer (neighbors sorted, each edge appears on both endpoint lines).
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        f.write(f"# peers: {overlay.num_peers}\n")
        # replint: disable=REP008 — one-time serialization on a cold path
        for p in overlay.peers():
            nbrs = " ".join(str(n) for n in sorted(overlay.neighbors(p)))
            f.write(f"{p}: {overlay.host_of(p)} {nbrs}\n".rstrip() + "\n")


def load_snapshot(
    physical: PhysicalTopology, path: Union[str, Path]
) -> Overlay:
    """Read a crawl file written by :func:`save_snapshot`."""
    path = Path(path)
    adjacency: Dict[int, List[int]] = {}
    hosts: Dict[int, int] = {}
    with path.open("r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, _, rest = line.partition(":")
            peer = int(head)
            fields = rest.split()
            if not fields:
                raise ValueError(f"malformed snapshot line for peer {peer}")
            hosts[peer] = int(fields[0])
            adjacency[peer] = [int(x) for x in fields[1:]]
    return snapshot_from_adjacency(physical, adjacency, hosts=hosts)
