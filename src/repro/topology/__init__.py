"""Topology substrates: the physical underlay and the logical overlay.

The paper's simulation methodology (Section 4.1) needs both layers:

* :class:`~repro.topology.physical.PhysicalTopology` — BRITE-style Internet
  underlay with link delays and shortest-path queries.
* :class:`~repro.topology.overlay.Overlay` — the Gnutella-like logical
  network whose link costs are underlay shortest-path delays.
* :class:`~repro.topology.soa.ArrayOverlay` — struct-of-arrays overlay
  engine (flat CSR + edit buffer) for 100k+-peer experiments.
* :mod:`~repro.topology.generators` — Waxman / Barabási–Albert / GLP /
  Watts–Strogatz underlay generators.
* :mod:`~repro.topology.properties` — power-law and small-world validation.
* :mod:`~repro.topology.trace` — synthetic Clip2-style crawl snapshots.
"""

from .autonomous_systems import (
    AsTrafficReport,
    as_of_hosts,
    as_traffic_report,
    transit_stub,
)
from .dot_export import overlay_to_dot, physical_to_dot, write_dot
from .generators import (
    barabasi_albert,
    glp,
    grid,
    paper_underlay,
    watts_strogatz,
    waxman,
)
from .overlay import (
    Overlay,
    power_law_overlay,
    random_overlay,
    small_world_overlay,
)
from .physical import PhysicalTopology
from .soa import ArrayOverlay
from .supernode import (
    TwoTierOverlay,
    TwoTierQueryResult,
    build_two_tier,
    two_tier_query,
)
from .properties import TopologyReport, analyze
from .trace import (
    load_snapshot,
    save_snapshot,
    snapshot_from_adjacency,
    synthesize_gnutella_snapshot,
)

__all__ = [
    "PhysicalTopology",
    "Overlay",
    "ArrayOverlay",
    "random_overlay",
    "power_law_overlay",
    "small_world_overlay",
    "waxman",
    "barabasi_albert",
    "glp",
    "watts_strogatz",
    "grid",
    "paper_underlay",
    "transit_stub",
    "as_of_hosts",
    "as_traffic_report",
    "AsTrafficReport",
    "TwoTierOverlay",
    "TwoTierQueryResult",
    "build_two_tier",
    "two_tier_query",
    "TopologyReport",
    "analyze",
    "synthesize_gnutella_snapshot",
    "snapshot_from_adjacency",
    "save_snapshot",
    "load_snapshot",
    "overlay_to_dot",
    "physical_to_dot",
    "write_dot",
]
