"""Logical P2P overlay network on top of a physical topology.

An :class:`Overlay` is the abstract Gnutella-like network the paper studies:
peers (identified by integer ids) are mapped onto physical hosts, and logical
connections between peers are the overlay edges.  The *cost* of a logical
connection is the shortest-path delay between the two endpoint hosts in the
underlay — the measured "network delay between two nodes" used as the cost
metric in ACE Phase 1.

The overlay is mutable: ACE Phase 3 cuts and establishes connections, and the
churn model adds and removes peers.  All mutation goes through
:meth:`connect` / :meth:`disconnect` / :meth:`add_peer` / :meth:`remove_peer`
so invariants (symmetry, no self-loops, live endpoints) hold by construction.

Cost lookups are served from two layers of memoization:

All underlay delay lookups go through the overlay's
:class:`~repro.oracle.base.DelayOracle` (an
:class:`~repro.oracle.exact.ExactOracle` unless configured otherwise), so
the delay backend — exact batched Dijkstra or a landmark embedding — is a
constructor choice, not a code change.  On top of the oracle sit two layers
of memoization:

* a **host-pair cache** (append-only; a backend's answers never change),
  shared across :meth:`copy` clones, and
* a **per-edge cost cache** keyed by peer pair, covering exactly the (small,
  slowly-changing) logical edge set.  :meth:`warm_edge_costs` fills it in
  bulk through the underlay's batched Dijkstra, and the mutation methods
  keep it in sync: :meth:`disconnect` and :meth:`remove_peer` drop stale
  entries (this covers every cut site — ACE Phase 3 replacement, LTM/AOTO
  cuts, churn departures), :meth:`connect` fills the new edge from the
  host-pair cache when possible.  On a warmed static overlay the query
  engine's inner loop (:func:`repro.search.flooding.propagate`) therefore
  never touches scipy at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..oracle.base import DelayOracle
from ..oracle.exact import ExactOracle
from ..perf import counters
from ..rng import ensure_rng
from .physical import PhysicalTopology

__all__ = [
    "Overlay",
    "random_overlay",
    "power_law_overlay",
    "small_world_overlay",
]


class Overlay:
    """A logical overlay: peers on hosts, with symmetric logical links."""

    def __init__(
        self,
        physical: PhysicalTopology,
        hosts: Optional[Dict[int, int]] = None,
        oracle: Optional[DelayOracle] = None,
    ) -> None:
        self._physical = physical
        if oracle is not None and oracle.physical is not physical:
            raise ValueError("oracle answers for a different underlay")
        self._oracle: DelayOracle = (
            oracle if oracle is not None else ExactOracle(physical)
        )
        self._hosts: Dict[int, int] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        self._cost_cache: Dict[Tuple[int, int], float] = {}
        self._edge_costs: Dict[Tuple[int, int], float] = {}
        self._epoch = 0
        if hosts:
            for peer, host in hosts.items():
                self.add_peer(peer, host)

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------

    @property
    def physical(self) -> PhysicalTopology:
        """The underlay this overlay is built on."""
        return self._physical

    @property
    def oracle(self) -> DelayOracle:
        """The delay oracle answering this overlay's cost lookups."""
        return self._oracle

    def use_oracle(self, oracle: DelayOracle) -> None:
        """Swap the delay backend, dropping every cost memo.

        Cached costs are answers from the *previous* backend, so both the
        host-pair cache and the per-edge cost cache are invalidated (the
        host-pair cache is replaced rather than cleared — it may be shared
        with :meth:`copy` clones still on the old backend).
        """
        if oracle.physical is not self._physical:
            raise ValueError("oracle answers for a different underlay")
        self._oracle = oracle
        self._cost_cache = {}
        self._edge_costs.clear()
        self._epoch += 1

    @property
    def epoch(self) -> int:
        """Monotone structural version of the logical layer.

        Bumped by every mutation that can change the forwarding graph or its
        edge costs — :meth:`add_peer`, :meth:`remove_peer`, :meth:`connect`,
        :meth:`disconnect`, :meth:`use_oracle` and
        :meth:`invalidate_edge_costs` — so derived structures (notably the
        compiled CSR forwarding graphs in :mod:`repro.search.batch`) can be
        memoized per epoch and invalidated for free.
        """
        return self._epoch

    @property
    def num_peers(self) -> int:
        """Number of live peers."""
        return len(self._hosts)

    @property
    def num_edges(self) -> int:
        """Number of logical connections."""
        return sum(len(s) for s in self._adjacency.values()) // 2

    def peers(self) -> List[int]:
        """Sorted list of live peer ids."""
        return sorted(self._hosts)

    def has_peer(self, peer: int) -> bool:
        """Whether *peer* is currently in the overlay."""
        return peer in self._hosts

    def host_of(self, peer: int) -> int:
        """Physical host a peer lives on."""
        return self._hosts[peer]

    def add_peer(self, peer: int, host: int) -> None:
        """Add a (disconnected) peer residing on physical node *host*."""
        if peer in self._hosts:
            raise ValueError(f"peer {peer} already exists")
        if not (0 <= host < self._physical.num_nodes):
            raise ValueError(f"host {host} out of range")
        self._hosts[peer] = host
        self._adjacency[peer] = set()
        self._epoch += 1

    def remove_peer(self, peer: int) -> None:
        """Remove a peer and all its logical connections.

        Edge-cost cache entries of the removed connections are invalidated
        so a later re-join of the same peer id cannot observe stale costs.
        """
        for other in list(self._adjacency[peer]):
            self._adjacency[other].discard(peer)
            self._edge_costs.pop((peer, other) if peer < other else (other, peer), None)
        del self._adjacency[peer]
        del self._hosts[peer]
        self._epoch += 1

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def neighbors(self, peer: int) -> Set[int]:
        """The peer's current logical neighbors (a *copy-safe* live set).

        Callers that mutate the overlay while iterating must copy first.
        """
        return self._adjacency[peer]

    def degree(self, peer: int) -> int:
        """Number of logical connections of *peer*."""
        return len(self._adjacency[peer])

    def average_degree(self) -> float:
        """Mean logical degree over live peers."""
        if not self._hosts:
            return 0.0
        return 2.0 * self.num_edges / self.num_peers

    def has_edge(self, u: int, v: int) -> bool:
        """Whether a logical connection u-v exists."""
        return v in self._adjacency.get(u, ())

    def connect(self, u: int, v: int) -> bool:
        """Establish the logical connection u-v.

        Returns ``True`` if a new connection was created, ``False`` if it
        already existed.  Raises for unknown peers or self-connections.
        """
        if u == v:
            raise ValueError("a peer cannot connect to itself")
        if u not in self._hosts or v not in self._hosts:
            raise KeyError(f"unknown peer in connect({u}, {v})")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._epoch += 1
        # Seed the edge-cost cache without touching the underlay: the cost is
        # filled now if the host pair is already known, lazily (or by the
        # next warm_edge_costs sweep) otherwise.
        key = (u, v) if u < v else (v, u)
        hu, hv = self._hosts[u], self._hosts[v]
        if hu == hv:
            self._edge_costs[key] = 0.0
        else:
            hkey = (hu, hv) if hu < hv else (hv, hu)
            cached = self._cost_cache.get(hkey)
            if cached is not None:
                self._edge_costs[key] = cached
        return True

    def disconnect(self, u: int, v: int) -> bool:
        """Cut the logical connection u-v.  Returns ``True`` if it existed."""
        if u not in self._hosts or v not in self._hosts:
            raise KeyError(f"unknown peer in disconnect({u}, {v})")
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_costs.pop((u, v) if u < v else (v, u), None)
        self._epoch += 1
        return True

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over logical edges as ``(u, v)`` with ``u < v``."""
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------

    def cost(self, u: int, v: int) -> float:
        """Cost of a (potential) logical link: underlay shortest-path delay.

        Existing logical edges are served from the per-edge cost cache (one
        dict probe, no host lookups); other pairs fall back to the host-pair
        cache and, last, the underlay's Dijkstra engine.
        """
        pkey = (u, v) if u < v else (v, u)
        cached = self._edge_costs.get(pkey)
        if cached is not None:
            counters.edge_cost_hits += 1
            return cached
        hu, hv = self._hosts[u], self._hosts[v]
        if hu == hv:
            d = 0.0
        else:
            hkey = (hu, hv) if hu < hv else (hv, hu)
            d = self._cost_cache.get(hkey)
            if d is None:
                d = self._oracle.delay(hu, hv)
                self._cost_cache[hkey] = d
        if v in self._adjacency.get(u, ()):
            counters.edge_cost_misses += 1
            self._edge_costs[pkey] = d
        return d

    def costs_from(self, u: int, targets: Iterable[int]) -> Dict[int, float]:
        """Costs from *u* to several peers with at most one underlay query."""
        hu = self._hosts[u]
        nbrs = self._adjacency.get(u, ())
        out: Dict[int, float] = {}
        missing: List[int] = []
        for t in targets:
            pkey = (u, t) if u < t else (t, u)
            cached = self._edge_costs.get(pkey)
            if cached is not None:
                counters.edge_cost_hits += 1
                out[t] = cached
                continue
            ht = self._hosts[t]
            if ht == hu:
                out[t] = 0.0
                if t in nbrs:
                    self._edge_costs[pkey] = 0.0
                continue
            key = (hu, ht) if hu < ht else (ht, hu)
            cached = self._cost_cache.get(key)
            if cached is None:
                missing.append(t)
            else:
                out[t] = cached
                if t in nbrs:
                    self._edge_costs[pkey] = cached
        if missing:
            vec = self._oracle.delays_from(hu)
            for t in missing:
                ht = self._hosts[t]
                d = float(vec[ht])
                key = (hu, ht) if hu < ht else (ht, hu)
                self._cost_cache[key] = d
                out[t] = d
                if t in nbrs:
                    counters.edge_cost_misses += 1
                    self._edge_costs[(u, t) if u < t else (t, u)] = d
        return out

    def warm_edge_costs(self, chunk_size: int = 256) -> int:
        """Bulk-fill the per-edge cost cache for every current logical edge.

        Edges whose cost is not yet known are grouped by source host and
        solved through :meth:`PhysicalTopology.delays_from_many
        <repro.topology.physical.PhysicalTopology.delays_from_many>` in
        batches of at most *chunk_size* sources, extracting only the scalar
        costs (the full delay vectors are not retained, so memory stays
        bounded even at paper scale).  Idempotent and cheap when already
        warm.  Returns the number of edge costs computed.
        """
        pending: Dict[int, List[Tuple[Tuple[int, int], int, Tuple[int, int]]]] = {}
        for u, v in self.edges():
            pkey = (u, v)
            if pkey in self._edge_costs:
                continue
            hu, hv = self._hosts[u], self._hosts[v]
            if hu == hv:
                self._edge_costs[pkey] = 0.0
                continue
            hkey = (hu, hv) if hu < hv else (hv, hu)
            cached = self._cost_cache.get(hkey)
            if cached is not None:
                self._edge_costs[pkey] = cached
                continue
            pending.setdefault(hu, []).append((pkey, hv, hkey))
        if not pending:
            return 0
        filled = 0
        sources = sorted(pending)
        for start in range(0, len(sources), chunk_size):
            chunk = sources[start : start + chunk_size]
            rows = self._oracle.delays_from_many(chunk, cache=False)
            for h in chunk:
                row = rows[h]
                for pkey, hv, hkey in pending[h]:
                    d = float(row[hv])
                    self._cost_cache[hkey] = d
                    self._edge_costs[pkey] = d
                    counters.edge_cost_misses += 1
                    filled += 1
        return filled

    def warm_sources(self, peers: Iterable[int]) -> int:
        """Prefetch underlay delay vectors for the given peers' hosts.

        Makes every later ``cost``/``costs_from`` rooted at one of these
        peers (including probes of *non*-edges, e.g. ACE Phase-3 candidate
        probing) Dijkstra-free.  Returns the number of sources solved.
        """
        hosts = {self._hosts[p] for p in peers if p in self._hosts}
        return self._oracle.warm(hosts)

    @property
    def cached_edge_costs(self) -> int:
        """Number of logical edges with a resident cached cost."""
        return len(self._edge_costs)

    def invalidate_edge_costs(self) -> None:
        """Drop the whole per-edge cost cache (host-pair memos survive)."""
        self._edge_costs.clear()
        self._epoch += 1

    def total_edge_cost(self) -> float:
        """Sum of logical-link costs over all overlay edges."""
        return sum(self.cost(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def component_of(self, peer: int) -> Set[int]:
        """All peers reachable from *peer* over logical links."""
        seen = {peer}
        stack = [peer]
        while stack:
            cur = stack.pop()
            for nxt in self._adjacency[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def components(self) -> List[Set[int]]:
        """All connected components, largest first."""
        remaining = set(self._hosts)
        out: List[Set[int]] = []
        while remaining:
            comp = self.component_of(next(iter(remaining)))
            out.append(comp)
            remaining -= comp
        out.sort(key=len, reverse=True)
        return out

    def is_connected(self) -> bool:
        """Whether all live peers form a single component."""
        if not self._hosts:
            return True
        return len(self.component_of(next(iter(self._hosts)))) == self.num_peers

    # ------------------------------------------------------------------

    def copy(self) -> "Overlay":
        """Deep copy of the logical layer (shares the underlay and oracle)."""
        clone = Overlay(self._physical, oracle=self._oracle)
        clone._hosts = dict(self._hosts)
        clone._adjacency = {p: set(nbrs) for p, nbrs in self._adjacency.items()}
        clone._cost_cache = self._cost_cache  # shared, append-only cache
        clone._edge_costs = dict(self._edge_costs)  # private: edges diverge
        clone._epoch = self._epoch  # compiled-graph caches key on identity
        return clone

    def to_networkx(self):
        """Export the logical graph (``cost`` edge attribute included)."""
        import networkx as nx

        g = nx.Graph()
        for p, h in self._hosts.items():
            g.add_node(p, host=h)
        self.warm_edge_costs()  # one batched solve; the loop below only probes
        for u, v in self.edges():
            # replint: disable=REP004 — served from the just-warmed edge cache
            g.add_edge(u, v, cost=self.cost(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Overlay(num_peers={self.num_peers}, num_edges={self.num_edges})"


def _pick_hosts(
    physical: PhysicalTopology, n_peers: int, rng: np.random.Generator
) -> List[int]:
    if n_peers > physical.num_nodes:
        raise ValueError(
            f"cannot place {n_peers} peers on {physical.num_nodes} physical nodes"
        )
    candidates = physical.largest_component_nodes()
    if n_peers > len(candidates):
        raise ValueError(
            f"largest physical component has only {len(candidates)} nodes"
        )
    chosen = rng.choice(len(candidates), size=n_peers, replace=False)
    return [candidates[int(i)] for i in chosen]


def random_overlay(
    physical: PhysicalTopology,
    n_peers: int,
    avg_degree: float = 6.0,
    rng: Optional[np.random.Generator] = None,
) -> Overlay:
    """Uniform random overlay with the given average logical degree.

    This mirrors the paper's logical-topology generation: peers are placed on
    random physical hosts and connected at random — exactly the stochastic
    bootstrap-list connection process that *creates* the mismatch problem.
    The result is made connected by chaining components with random links.
    """
    rng = ensure_rng(rng)
    if avg_degree < 2:
        raise ValueError("avg_degree must be >= 2 to allow a connected overlay")
    hosts = _pick_hosts(physical, n_peers, rng)
    ov = Overlay(physical, {i: hosts[i] for i in range(n_peers)})
    target_edges = int(round(n_peers * avg_degree / 2.0))
    # Random spanning tree first (guarantees connectivity), then random fill.
    order = list(range(n_peers))
    rng.shuffle(order)
    for i in range(1, n_peers):
        ov.connect(order[i], order[int(rng.integers(i))])
    attempts = 0
    max_attempts = 20 * target_edges + 100
    while ov.num_edges < target_edges and attempts < max_attempts:
        u = int(rng.integers(n_peers))
        v = int(rng.integers(n_peers))
        attempts += 1
        if u != v and not ov.has_edge(u, v):
            ov.connect(u, v)
    return ov


def power_law_overlay(
    physical: PhysicalTopology,
    n_peers: int,
    avg_degree: float = 6.0,
    rng: Optional[np.random.Generator] = None,
) -> Overlay:
    """Preferential-attachment overlay (power-law degrees, Gnutella-like).

    Measurement studies cited by the paper ([7] and the DSS Clip2 crawls)
    found Gnutella overlays follow power laws; this generator reproduces that
    shape while keeping the same host-placement process as
    :func:`random_overlay`.
    """
    rng = ensure_rng(rng)
    m = max(1, int(round(avg_degree / 2.0)))
    if n_peers < m + 1:
        raise ValueError("n_peers too small for the requested degree")
    hosts = _pick_hosts(physical, n_peers, rng)
    ov = Overlay(physical, {i: hosts[i] for i in range(n_peers)})
    pool: List[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            ov.connect(u, v)
            pool.extend((u, v))
    for new in range(m + 1, n_peers):
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < m and guard < 50 * m:
            chosen.add(pool[int(rng.integers(len(pool)))])
            guard += 1
        for t in chosen:
            ov.connect(new, t)
            pool.extend((t, new))
    return ov


def small_world_overlay(
    physical: PhysicalTopology,
    n_peers: int,
    avg_degree: float = 6.0,
    triad_probability: float = 0.75,
    rng: Optional[np.random.Generator] = None,
) -> Overlay:
    """Power-law *and* small-world overlay (Holme–Kim triad formation).

    The paper's Section 4.1: "PP overlay topologies follow small world and
    power law properties.  Power law describes the node degree while small
    world describes characteristics of path length and clustering
    coefficient."  Plain preferential attachment yields the power law but
    vanishing clustering at scale; the Holme–Kim model adds a *triad
    formation* step — after a preferential attachment to peer ``t``, the
    next link goes to a random neighbor of ``t`` with probability
    *triad_probability* — producing the high clustering coefficient real
    Gnutella snapshots show.  This is the default overlay of the experiment
    scenarios, because ACE's Phase 2 prunes exactly the neighbor-neighbor
    links that clustering creates.
    """
    rng = ensure_rng(rng)
    if not 0.0 <= triad_probability <= 1.0:
        raise ValueError("triad_probability must be in [0, 1]")
    m = max(2, int(round(avg_degree / 2.0)))
    if n_peers < m + 1:
        raise ValueError("n_peers too small for the requested degree")
    hosts = _pick_hosts(physical, n_peers, rng)
    ov = Overlay(physical, {i: hosts[i] for i in range(n_peers)})
    pool: List[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            ov.connect(u, v)
            pool.extend((u, v))
    for new in range(m + 1, n_peers):
        links = 0
        last_target: Optional[int] = None
        guard = 0
        while links < m and guard < 50 * m:
            guard += 1
            target: Optional[int] = None
            if last_target is not None and rng.random() < triad_probability:
                # Triad formation: close a triangle through the last target.
                nbrs = [
                    x for x in ov.neighbors(last_target)
                    if x != new and not ov.has_edge(new, x)
                ]
                if nbrs:
                    target = nbrs[int(rng.integers(len(nbrs)))]
            if target is None:
                # Preferential attachment step.
                cand = pool[int(rng.integers(len(pool)))]
                if cand == new or ov.has_edge(new, cand):
                    continue
                target = cand
            ov.connect(new, target)
            pool.extend((target, new))
            links += 1
            last_target = target
    return ov
