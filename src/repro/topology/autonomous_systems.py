"""Transit-stub underlays and autonomous-system traffic accounting.

The paper's introduction motivates ACE with AS-level measurements:
"only 2 to 5 percent of Gnutella connections link peers within a single
autonomous system (AS), but more than 40 percent of all Gnutella peers are
located within the top 10 ASes.  This means that most Gnutella-generated
traffic crosses AS borders so as to increase topology mismatching costs."

This module makes that motivation measurable:

* :func:`transit_stub` generates the classic two-tier Internet model — a
  well-connected transit core whose routers each anchor several *stub
  domains* (ASes), with intra-domain links much faster than inter-domain
  links — and records each host's AS id;
* :class:`AsTrafficReport` / :func:`as_traffic_report` classify an
  overlay's logical connections and a query's traffic into intra- vs
  inter-AS shares, so the benches can show ACE turning border-crossing
  connections into local ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rng import ensure_rng
from .overlay import Overlay
from .physical import PhysicalTopology

if TYPE_CHECKING:  # avoid a topology -> search -> core import cycle
    from ..search.flooding import QueryPropagation

__all__ = ["transit_stub", "as_of_hosts", "AsTrafficReport", "as_traffic_report"]


def transit_stub(
    transit_nodes: int = 16,
    stubs_per_transit: int = 3,
    stub_size: int = 12,
    rng: Optional[np.random.Generator] = None,
    transit_delay: float = 40.0,
    stub_uplink_delay: float = 120.0,
    intra_stub_delay: float = 4.0,
    extra_transit_links: int = 8,
    cache_size: int = 128,
) -> Tuple[PhysicalTopology, np.ndarray]:
    """Generate a transit-stub underlay.

    Returns ``(topology, as_labels)`` where ``as_labels[host]`` is the
    host's autonomous-system id: transit routers form AS 0 and each stub
    domain gets its own id.  Delays follow the two-tier reality the paper's
    motivation needs: hops inside a stub are cheap, crossing into the core
    is expensive.
    """
    if transit_nodes < 2:
        raise ValueError("need at least 2 transit nodes")
    if stubs_per_transit < 1 or stub_size < 1:
        raise ValueError("stub dimensions must be positive")
    rng = ensure_rng(rng)

    n_stubs = transit_nodes * stubs_per_transit
    total = transit_nodes + n_stubs * stub_size
    labels = np.zeros(total, dtype=np.int64)
    edges: List[Tuple[int, int]] = []
    delays: List[float] = []

    # Transit core: ring + random chords (AS 0).
    for i in range(transit_nodes):
        edges.append((i, (i + 1) % transit_nodes))
        delays.append(transit_delay)
    for _ in range(extra_transit_links):
        u, v = rng.integers(transit_nodes, size=2)
        if u != v:
            edges.append((int(u), int(v)))
            delays.append(transit_delay)

    # Stub domains: a random connected intra-AS graph plus one uplink.
    next_host = transit_nodes
    stub_id = 0
    for transit in range(transit_nodes):
        for _ in range(stubs_per_transit):
            stub_id += 1
            members = list(range(next_host, next_host + stub_size))
            next_host += stub_size
            labels[members] = stub_id
            # Random spanning tree inside the stub.
            for i in range(1, stub_size):
                j = int(rng.integers(i))
                edges.append((members[i], members[j]))
                delays.append(intra_stub_delay)
            # A few extra intra-stub links for redundancy.
            for _ in range(max(1, stub_size // 3)):
                a, b = rng.integers(stub_size, size=2)
                if a != b:
                    edges.append((members[int(a)], members[int(b)]))
                    delays.append(intra_stub_delay)
            # Uplink: the stub's gateway reaches its transit router.
            gateway = members[int(rng.integers(stub_size))]
            edges.append((gateway, transit))
            delays.append(stub_uplink_delay)

    topo = PhysicalTopology(total, edges, delays, cache_size=cache_size)
    return topo, labels


def as_of_hosts(labels: np.ndarray, overlay: Overlay) -> Dict[int, int]:
    """Map each overlay peer to its autonomous-system id."""
    return {p: int(labels[overlay.host_of(p)]) for p in overlay.peers()}


@dataclass(frozen=True)
class AsTrafficReport:
    """Intra- vs inter-AS composition of connections and traffic."""

    intra_as_links: int
    inter_as_links: int
    intra_as_traffic: float
    inter_as_traffic: float

    @property
    def total_links(self) -> int:
        """All classified logical links."""
        return self.intra_as_links + self.inter_as_links

    @property
    def intra_link_fraction(self) -> float:
        """Share of logical connections staying inside one AS.

        The paper's measured Gnutella value is 0.02-0.05 — almost every
        connection crosses an AS border.
        """
        total = self.total_links
        return self.intra_as_links / total if total else 0.0

    @property
    def inter_traffic_fraction(self) -> float:
        """Share of traffic cost spent crossing AS borders."""
        total = self.intra_as_traffic + self.inter_as_traffic
        return self.inter_as_traffic / total if total else 0.0


def as_traffic_report(
    labels: np.ndarray,
    overlay: Overlay,
    propagation: Optional["QueryPropagation"] = None,
) -> AsTrafficReport:
    """Classify an overlay's links (and optionally a query) by AS locality.

    Link classification counts every logical connection once.  Traffic
    classification, when a *propagation* is given, attributes each first
    delivery's hop cost to intra or inter AS by its endpoints; without one
    it falls back to link costs (each connection once).
    """
    peer_as = as_of_hosts(labels, overlay)
    intra_links = inter_links = 0
    for u, v in overlay.edges():
        if peer_as[u] == peer_as[v]:
            intra_links += 1
        else:
            inter_links += 1

    intra_traffic = inter_traffic = 0.0
    # Every pair below is a live logical edge: one batched solve up front
    # turns the per-hop cost() probes into dict hits.
    overlay.warm_edge_costs()
    if propagation is not None:
        for peer, parent in propagation.parent.items():
            # replint: disable=REP004 — delivery hops are edges; warmed above
            cost = overlay.cost(parent, peer)
            if peer_as.get(parent) == peer_as.get(peer):
                intra_traffic += cost
            else:
                inter_traffic += cost
    else:
        for u, v in overlay.edges():
            # replint: disable=REP004 — edge costs warmed above
            cost = overlay.cost(u, v)
            if peer_as[u] == peer_as[v]:
                intra_traffic += cost
            else:
                inter_traffic += cost
    return AsTrafficReport(
        intra_as_links=intra_links,
        inter_as_links=inter_links,
        intra_as_traffic=intra_traffic,
        inter_as_traffic=inter_traffic,
    )
