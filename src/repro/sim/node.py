"""Message-level Gnutella peers: query flooding and reverse-path QueryHits.

:class:`QueryNode` implements the servent behaviour of Section 3.1 at the
descriptor level:

* a Query seen before (same GUID) is dropped — but its transmission was
  already charged by the network;
* a fresh Query is recorded, answered with a :class:`QueryHit` if the node
  holds the object, and forwarded (TTL permitting) to the node's forwarding
  set — all neighbors for blind flooding, the flooding neighbors for ACE;
* a QueryHit travels the inverse of the query path, hop by hop, using the
  per-GUID reverse-routing entry each relay recorded.

:func:`run_message_level_query` wires a whole overlay with nodes, injects
one query, runs the event loop to quiescence and returns the measured
metrics — the ground truth the analytic engine is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..search.flooding import ForwardingStrategy
from .messages import Message, Query, QueryHit
from .network import MessageNetwork

__all__ = ["QueryNode", "MessageLevelResult", "run_message_level_query"]


class QueryNode:
    """One servent: floods queries, routes hits back, records telemetry."""

    def __init__(
        self,
        peer_id: int,
        forwarding: ForwardingStrategy,
        holds: Optional[Set[object]] = None,
    ) -> None:
        self.peer_id = peer_id
        self.forwarding = forwarding
        self.holds: Set[object] = set(holds or ())
        # guid -> neighbor the first copy arrived from (reverse route).
        self.reverse_route: Dict[int, int] = {}
        self.seen_queries: Set[int] = set()
        self.first_arrival: Dict[int, float] = {}
        self.duplicates = 0
        # For query origins: guid -> list of (time, responder).
        self.responses: Dict[int, List] = {}

    # ------------------------------------------------------------------

    def start_query(
        self, network: MessageNetwork, obj: object, ttl: Optional[int]
    ) -> Query:
        """Issue a new query from this node.  Returns the sent descriptor."""
        effective_ttl = ttl if ttl is not None else 2**30
        query = Query(sender=self.peer_id, ttl=effective_ttl, object_id=obj)
        self.seen_queries.add(query.guid)
        self.first_arrival[query.guid] = network.loop.now
        self.responses[query.guid] = []
        self._forward(network, query, came_from=None)
        return query

    def _forward(
        self, network: MessageNetwork, query: Query, came_from: Optional[int]
    ) -> None:
        if query.ttl <= 0:
            return
        live = network.overlay.neighbors(self.peer_id)
        for nbr in self.forwarding(self.peer_id, came_from):
            if nbr == came_from or nbr == self.peer_id or nbr not in live:
                continue
            network.send(self.peer_id, nbr, query.forwarded_by(self.peer_id))

    # ------------------------------------------------------------------

    def on_message(
        self, network: MessageNetwork, message: Message, sender: int, now: float
    ) -> None:
        """Dispatch a delivered descriptor."""
        if isinstance(message, Query):
            self._on_query(network, message, sender, now)
        elif isinstance(message, QueryHit):
            self._on_query_hit(network, message, sender, now)

    def _on_query(
        self, network: MessageNetwork, query: Query, sender: int, now: float
    ) -> None:
        if query.guid in self.seen_queries:
            self.duplicates += 1
            return
        self.seen_queries.add(query.guid)
        self.first_arrival[query.guid] = now
        self.reverse_route[query.guid] = sender
        if query.object_id in self.holds:
            hit = QueryHit(
                sender=self.peer_id,
                guid=query.guid,
                ttl=query.hops + 1,
                object_id=query.object_id,
                responder=self.peer_id,
            )
            network.send(self.peer_id, sender, hit)
        self._forward(network, query, came_from=sender)

    def _on_query_hit(
        self, network: MessageNetwork, hit: QueryHit, sender: int, now: float
    ) -> None:
        if hit.guid in self.responses:
            # This node originated the query: record the response.
            self.responses[hit.guid].append((now, hit.responder))
            return
        back = self.reverse_route.get(hit.guid)
        if back is not None:
            network.send(self.peer_id, back, hit.forwarded_by(self.peer_id))
        # No reverse route (e.g. the neighbor churned away): the hit dies,
        # as it does in the real protocol.


@dataclass(frozen=True)
class MessageLevelResult:
    """Measured outcome of one message-level query."""

    source: int
    guid: int
    reached: Set[int]
    arrival_time: Dict[int, float]
    query_messages: int
    query_traffic: float
    hit_messages: int
    hit_traffic: float
    duplicates: int
    first_response_time: Optional[float]
    responders: Set[int]

    @property
    def search_scope(self) -> int:
        """Number of peers the query visited."""
        return len(self.reached)


def run_message_level_query(
    overlay,
    source: int,
    strategy: ForwardingStrategy,
    holders: Iterable[int] = (),
    obj: object = "object",
    ttl: Optional[int] = None,
) -> MessageLevelResult:
    """Simulate one query at full message granularity.

    Builds a :class:`QueryNode` per live peer (holders advertise *obj*),
    injects the query at *source* and runs the event loop until every
    descriptor has been delivered.
    """
    network = MessageNetwork(overlay)
    holder_set = set(holders)
    nodes: Dict[int, QueryNode] = {}
    for peer in overlay.peers():
        node = QueryNode(
            peer,
            strategy,
            holds={obj} if peer in holder_set and peer != source else None,
        )
        nodes[peer] = node
        network.attach(peer, node)

    query = nodes[source].start_query(network, obj, ttl)
    network.run()

    guid = query.guid
    arrival = {
        p: n.first_arrival[guid]
        for p, n in nodes.items()
        if guid in n.first_arrival
    }
    responses = nodes[source].responses.get(guid, [])
    first = min((t for t, _r in responses), default=None)
    return MessageLevelResult(
        source=source,
        guid=guid,
        reached=set(arrival),
        arrival_time=arrival,
        query_messages=network.stats.by_kind.get("query", 0),
        query_traffic=network.stats.cost_by_kind.get("query", 0.0),
        hit_messages=network.stats.by_kind.get("query_hit", 0),
        hit_traffic=network.stats.cost_by_kind.get("query_hit", 0.0),
        duplicates=sum(n.duplicates for n in nodes.values()),
        first_response_time=first,
        responders={r for _t, r in responses},
    )
