"""Bootstrap service: how a peer finds its first neighbors.

"When a new peer wants to join a P2P network, a bootstrapping node provides
the IP addresses of a list of existing peers ...  When a peer leaves the P2P
network and then wants to join again, the peer will try to connect to the
peers whose IP addresses have already been cached."  (Paper Section 1.)

This *random* connection establishment — oblivious to physical locality — is
precisely what creates the topology mismatch ACE repairs, so the dynamic
experiments must model it faithfully: cached addresses first, bootstrap
randomness for the remainder.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..topology.overlay import Overlay
from .peer import PeerRecord

__all__ = ["BootstrapService"]


class BootstrapService:
    """Hands out random live-peer addresses and wires up joining peers."""

    def __init__(
        self,
        overlay: Overlay,
        records: Dict[int, PeerRecord],
        rng: np.random.Generator,
        target_degree: int = 6,
    ) -> None:
        if target_degree < 1:
            raise ValueError("target_degree must be >= 1")
        self._overlay = overlay
        self._records = records
        self._rng = rng
        self._target_degree = target_degree

    @property
    def target_degree(self) -> int:
        """Connections a joining peer tries to establish."""
        return self._target_degree

    def random_addresses(self, k: int, exclude: Optional[Set[int]] = None) -> List[int]:
        """Up to *k* distinct random live peers (the bootstrap node's list)."""
        exclude = exclude or set()
        pool = [p for p in self._overlay.peers() if p not in exclude]
        if not pool:
            return []
        k = min(k, len(pool))
        idx = self._rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in idx]

    def connect_joining_peer(self, peer: int) -> List[int]:
        """Connect a freshly added peer to the network.

        Tries the peer's cached addresses first (live ones only), then fills
        up to the target degree from the bootstrap list.  Returns the
        neighbors actually connected.  The peer also learns its neighbors'
        addresses, priming the cache for the next re-join.
        """
        record = self._records[peer]
        connected: List[int] = []
        tried: Set[int] = {peer}

        for addr in record.cached_addresses():
            if len(connected) >= self._target_degree:
                break
            if addr in tried:
                continue
            tried.add(addr)
            if self._overlay.has_peer(addr) and not self._overlay.has_edge(peer, addr):
                self._overlay.connect(peer, addr)
                connected.append(addr)

        if len(connected) < self._target_degree:
            needed = self._target_degree - len(connected)
            for addr in self.random_addresses(3 * needed + 4, exclude=tried):
                if len(connected) >= self._target_degree:
                    break
                tried.add(addr)
                if not self._overlay.has_edge(peer, addr):
                    self._overlay.connect(peer, addr)
                    connected.append(addr)

        record.learn_addresses(connected)
        for nbr in connected:
            other = self._records.get(nbr)
            if other is not None:
                other.learn_address(peer)
        return connected
