"""Query workload and object placement (paper Section 4.3).

"In our simulation, every node issues 0.3 queries per minute, which is
calculated from the observation data shown in [20], i.e., 25,000 unique IP
addresses issued 1,146,782 queries in 5 hours."

Objects are placed on random peers with a configurable replication degree and
queried with Zipf-like popularity — the standard model for Gnutella content
(Lv et al. [10], cited by the paper).  A query's *source* is a random online
peer and its holders are the object's replicas; the search layer evaluates
success, traffic and response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["WorkloadConfig", "ObjectCatalog", "QueryWorkload", "QueryEvent"]

#: The paper's measured query rate: 0.3 queries per peer per minute.
PAPER_QUERY_RATE_PER_MIN = 0.3


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload parameters."""

    queries_per_peer_per_min: float = PAPER_QUERY_RATE_PER_MIN
    num_objects: int = 500
    replicas_per_object: int = 10
    zipf_exponent: float = 0.8

    def __post_init__(self) -> None:
        if self.queries_per_peer_per_min <= 0:
            raise ValueError("query rate must be positive")
        if self.num_objects < 1:
            raise ValueError("need at least one object")
        if self.replicas_per_object < 1:
            raise ValueError("need at least one replica per object")


class ObjectCatalog:
    """Objects, their replica placements, and their Zipf popularity."""

    def __init__(
        self,
        peer_ids: Sequence[int],
        config: WorkloadConfig,
        rng: np.random.Generator,
    ) -> None:
        if not peer_ids:
            raise ValueError("cannot place objects on an empty peer set")
        self.config = config
        self._peer_ids = list(peer_ids)
        self._holders: List[FrozenSet[int]] = []
        n = len(self._peer_ids)
        k = min(config.replicas_per_object, n)
        for _ in range(config.num_objects):
            idx = rng.choice(n, size=k, replace=False)
            self._holders.append(frozenset(self._peer_ids[int(i)] for i in idx))
        ranks = np.arange(1, config.num_objects + 1, dtype=float)
        weights = ranks ** (-config.zipf_exponent)
        self._popularity = weights / weights.sum()

    @property
    def num_objects(self) -> int:
        """Catalog size."""
        return len(self._holders)

    def holders_of(self, obj: int) -> FrozenSet[int]:
        """All replica locations of an object (online or not)."""
        return self._holders[obj]

    def sample_object(self, rng: np.random.Generator) -> int:
        """Draw an object id by Zipf popularity."""
        return int(rng.choice(self.num_objects, p=self._popularity))


@dataclass(frozen=True)
class QueryEvent:
    """One issued query: who asks, for what."""

    time: float
    source: int
    object_id: int


class QueryWorkload:
    """Poisson query stream over the online peer population.

    The aggregate rate is ``n_online * queries_per_peer_per_min / 60`` per
    second; each query's source is a uniformly random online peer (every
    peer issues at the same individual rate, so the aggregate thinning is
    exact) and its object is drawn from the catalog's popularity.
    """

    def __init__(
        self,
        catalog: ObjectCatalog,
        rng: np.random.Generator,
        queries_per_peer_per_min: Optional[float] = None,
    ) -> None:
        self.catalog = catalog
        self.rng = rng
        self.rate_per_peer_per_sec = (
            queries_per_peer_per_min
            if queries_per_peer_per_min is not None
            else catalog.config.queries_per_peer_per_min
        ) / 60.0
        if self.rate_per_peer_per_sec <= 0:
            raise ValueError("query rate must be positive")

    def next_interarrival(self, n_online: int) -> float:
        """Seconds until the next query given the current population."""
        if n_online < 1:
            raise ValueError("no online peers")
        aggregate = self.rate_per_peer_per_sec * n_online
        return float(self.rng.exponential(1.0 / aggregate))

    def next_query(self, now: float, online_peers: Sequence[int]) -> QueryEvent:
        """Draw the next query's source and object."""
        if not online_peers:
            raise ValueError("no online peers")
        source = online_peers[int(self.rng.integers(len(online_peers)))]
        return QueryEvent(
            time=now,
            source=source,
            object_id=self.catalog.sample_object(self.rng),
        )
