"""Message-level overlay network on the discrete-event kernel.

The experiment drivers evaluate queries analytically (weighted BFS in
:mod:`repro.search.flooding`) for speed.  :class:`MessageNetwork` is the
ground-truth alternative: peers are attached as message handlers, every
descriptor is an object from :mod:`repro.sim.messages`, and deliveries are
events on the :class:`~repro.sim.engine.EventLoop` with the logical hop's
underlay delay.  The integration suite proves the two agree
(`tests/integration/test_message_level.py`), which is what justifies using
the fast path everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol

from ..rng import ensure_rng
from ..topology.overlay import Overlay
from .engine import EventLoop
from .messages import Message

__all__ = ["MessageHandler", "NetworkStats", "MessageNetwork"]


class MessageHandler(Protocol):
    """Anything that can receive overlay messages."""

    def on_message(
        self, network: "MessageNetwork", message: Message, sender: int, now: float
    ) -> None:
        """Handle a delivered message."""


@dataclass
class NetworkStats:
    """Running totals of message-level traffic."""

    messages: int = 0
    traffic_cost: float = 0.0
    dropped_dead_links: int = 0
    lost_messages: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    cost_by_kind: Dict[str, float] = field(default_factory=dict)

    def record(self, message: Message, cost: float) -> None:
        """Account one transmission."""
        self.messages += 1
        self.traffic_cost += cost
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1
        self.cost_by_kind[message.kind] = (
            self.cost_by_kind.get(message.kind, 0.0) + cost
        )


class MessageNetwork:
    """Delivers messages between attached peers over live logical links.

    A positive *loss_rate* makes delivery unreliable (the transmission is
    still charged — the bytes left the sender); the failure-injection suite
    uses this to check that the protocols degrade rather than break.
    """

    def __init__(
        self,
        overlay: Overlay,
        loop: Optional[EventLoop] = None,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.overlay = overlay
        self.loop = loop or EventLoop()
        self.stats = NetworkStats()
        self.loss_rate = loss_rate
        self._rng = rng
        self._handlers: Dict[int, MessageHandler] = {}

    def attach(self, peer: int, handler: MessageHandler) -> None:
        """Register the handler that receives *peer*'s messages."""
        if not self.overlay.has_peer(peer):
            raise KeyError(f"peer {peer} not in overlay")
        self._handlers[peer] = handler

    def detach(self, peer: int) -> None:
        """Remove a peer's handler (messages in flight are dropped)."""
        self._handlers.pop(peer, None)

    def handler_of(self, peer: int) -> Optional[MessageHandler]:
        """The attached handler, if any."""
        return self._handlers.get(peer)

    def send(self, sender: int, target: int, message: Message) -> bool:
        """Transmit *message* over the logical link sender-target.

        The transmission is charged (cost units = the link's underlay
        delay) the moment it is put on the wire — a dropped duplicate at
        the receiver still consumed the network, exactly the paper's
        unnecessary-traffic accounting.  Returns ``False`` (nothing
        charged) when the link no longer exists.
        """
        if not self.overlay.has_edge(sender, target):
            self.stats.dropped_dead_links += 1
            return False
        cost = self.overlay.cost(sender, target)
        self.stats.record(message, cost)
        if self.loss_rate > 0.0:
            if self._rng is None:
                # Deterministic fallback: loss draws reproduce run-to-run
                # even when the caller did not thread an RNG.
                self._rng = ensure_rng(None)
            if self._rng.random() < self.loss_rate:
                self.stats.lost_messages += 1
                return True  # charged, never delivered

        def deliver() -> None:
            handler = self._handlers.get(target)
            if handler is not None and self.overlay.has_peer(target):
                handler.on_message(self, message, sender, self.loop.now)

        self.loop.schedule_in(cost, deliver)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event loop (all in-flight messages)."""
        return self.loop.run(max_events=max_events)
