"""Simulation substrate: event kernel, peers, churn, workload, bootstrap.

Implements the paper's simulation methodology (Section 4): the dynamic P2P
environment with lifetimes, constant-population join/leave, the measured
query rate, and the Gnutella message vocabulary extended with ACE's cost
messages.
"""

from .bootstrap import BootstrapService
from .churn import ChurnConfig, ChurnModel, LifetimeDistribution
from .engine import EventHandle, EventLoop
from .network import MessageNetwork, NetworkStats
from .node import MessageLevelResult, QueryNode, run_message_level_query
from .messages import (
    GNUTELLA_HEADER_BYTES,
    ConnectRequest,
    CostProbe,
    CostProbeReply,
    CostTableMessage,
    DisconnectNotice,
    Message,
    Ping,
    Pong,
    Query,
    QueryHit,
    wire_cost,
)
from .peer import PeerRecord
from .workload import (
    ObjectCatalog,
    QueryEvent,
    QueryWorkload,
    WorkloadConfig,
)

__all__ = [
    "EventLoop",
    "EventHandle",
    "MessageNetwork",
    "NetworkStats",
    "QueryNode",
    "MessageLevelResult",
    "run_message_level_query",
    "PeerRecord",
    "BootstrapService",
    "ChurnModel",
    "ChurnConfig",
    "LifetimeDistribution",
    "ObjectCatalog",
    "QueryWorkload",
    "QueryEvent",
    "WorkloadConfig",
    "Message",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "CostProbe",
    "CostProbeReply",
    "CostTableMessage",
    "ConnectRequest",
    "DisconnectNotice",
    "GNUTELLA_HEADER_BYTES",
    "wire_cost",
]
