"""Protocol message taxonomy.

The paper modifies the LimeWire implementation of the Gnutella 0.6 protocol
"by adding one routing message type" for neighbor-cost-table exchange.  This
module models the resulting on-the-wire vocabulary: the standard Gnutella
descriptors plus ACE's probe and cost-table messages.

Messages carry byte-size estimates (Gnutella header is 23 bytes; payload
sizes follow the protocol specification and the cost-table layout of
Section 3.3) so traffic can also be reported in bytes rather than cost
units when needed — ``wire_cost`` converts a message crossing a logical hop
into cost units proportional to both delay and size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping, Optional, Tuple

__all__ = [
    "GNUTELLA_HEADER_BYTES",
    "Message",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "CostProbe",
    "CostProbeReply",
    "CostTableMessage",
    "ConnectRequest",
    "DisconnectNotice",
    "wire_cost",
]

#: Size of the standard Gnutella descriptor header, bytes.
GNUTELLA_HEADER_BYTES = 23

_guid_counter = itertools.count(1)


def _next_guid() -> int:
    return next(_guid_counter)


@dataclass(frozen=True)
class Message:
    """Base class for overlay messages.

    ``guid`` identifies the descriptor for duplicate suppression; ``ttl`` and
    ``hops`` follow Gnutella semantics (ttl decremented, hops incremented at
    each forward).
    """

    sender: int
    guid: int = field(default_factory=_next_guid)
    ttl: int = 7
    hops: int = 0

    #: Estimated payload bytes (without the descriptor header).
    payload_bytes: ClassVar[int] = 0
    #: Human-readable descriptor name.
    kind: ClassVar[str] = "message"

    @property
    def size_bytes(self) -> int:
        """Total descriptor size (header + payload estimate)."""
        return GNUTELLA_HEADER_BYTES + self.payload_bytes

    def forwarded_by(self, peer: int) -> "Message":
        """Copy of the message as relayed by *peer* (ttl-1, hops+1)."""
        if self.ttl <= 0:
            raise ValueError("cannot forward a message with ttl 0")
        return type(self)(**{
            **self.__dict__,
            "sender": peer,
            "ttl": self.ttl - 1,
            "hops": self.hops + 1,
        })


@dataclass(frozen=True)
class Ping(Message):
    """Keep-alive / peer-discovery probe."""

    kind: ClassVar[str] = "ping"
    payload_bytes: ClassVar[int] = 0


@dataclass(frozen=True)
class Pong(Message):
    """Ping response: IP, port, shared-file statistics (14 bytes)."""

    kind: ClassVar[str] = "pong"
    payload_bytes: ClassVar[int] = 14


@dataclass(frozen=True)
class Query(Message):
    """Search request; payload is min-speed + search criteria."""

    kind: ClassVar[str] = "query"
    payload_bytes: ClassVar[int] = 32
    object_id: Optional[int] = None


@dataclass(frozen=True)
class QueryHit(Message):
    """Search response travelling the inverse query path."""

    kind: ClassVar[str] = "query_hit"
    payload_bytes: ClassVar[int] = 80
    object_id: Optional[int] = None
    responder: Optional[int] = None


@dataclass(frozen=True)
class CostProbe(Message):
    """ACE Phase 1/3 delay probe (timestamped ping on a logical link)."""

    kind: ClassVar[str] = "cost_probe"
    payload_bytes: ClassVar[int] = 8
    target: Optional[int] = None


@dataclass(frozen=True)
class CostProbeReply(Message):
    """Echo of a :class:`CostProbe`, closing the round trip."""

    kind: ClassVar[str] = "cost_probe_reply"
    payload_bytes: ClassVar[int] = 8
    target: Optional[int] = None


@dataclass(frozen=True)
class CostTableMessage(Message):
    """The paper's added routing message: a neighbor cost table.

    Each entry is (peer id, cost) — 12 bytes in our estimate.
    """

    kind: ClassVar[str] = "cost_table"
    payload_bytes: ClassVar[int] = 0
    entries: Tuple[Tuple[int, float], ...] = ()

    ENTRY_BYTES: ClassVar[int] = 12

    @property
    def size_bytes(self) -> int:
        """Header plus 12 bytes per table entry."""
        return GNUTELLA_HEADER_BYTES + self.ENTRY_BYTES * len(self.entries)


@dataclass(frozen=True)
class ConnectRequest(Message):
    """ACE Phase 3 connection establishment toward a probed candidate."""

    kind: ClassVar[str] = "connect_request"
    payload_bytes: ClassVar[int] = 6
    target: Optional[int] = None


@dataclass(frozen=True)
class DisconnectNotice(Message):
    """Notification that the sender is cutting the logical link."""

    kind: ClassVar[str] = "disconnect_notice"
    payload_bytes: ClassVar[int] = 2
    target: Optional[int] = None


def wire_cost(message: Message, link_delay: float, byte_factor: float = 0.0) -> float:
    """Cost units consumed by *message* crossing one logical hop.

    The base unit is the hop's underlay delay (the paper's accounting); a
    positive *byte_factor* additionally scales cost with message size,
    ``delay * (1 + byte_factor * size_bytes)``, for byte-weighted studies.
    """
    if link_delay < 0:
        raise ValueError("link_delay must be non-negative")
    return link_delay * (1.0 + byte_factor * message.size_bytes)
