"""Peer session state for the dynamic environment.

The paper's joining mechanism (Section 1): a new peer obtains addresses from
a bootstrapping node and connects to some of them; while connected it learns
and *caches* addresses of other peers; on a later re-join it first tries the
cached addresses.  :class:`PeerRecord` keeps that per-peer session state —
host placement, liveness, the current lifetime, and the address cache that
drives the characteristic random (mis)matching of overlay links.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

__all__ = ["PeerRecord"]


@dataclass
class PeerRecord:
    """One peer's identity and session state."""

    peer_id: int
    host: int
    alive: bool = False
    joined_at: Optional[float] = None
    departs_at: Optional[float] = None
    sessions: int = 0
    cache_capacity: int = 32
    _cache: "OrderedDict[int, None]" = field(default_factory=OrderedDict, repr=False)

    def cached_addresses(self) -> List[int]:
        """Known peer addresses, most recently learned first."""
        return list(reversed(self._cache))

    def learn_address(self, peer_id: int) -> None:
        """Cache another peer's address (LRU eviction at capacity)."""
        if peer_id == self.peer_id:
            return
        if peer_id in self._cache:
            self._cache.move_to_end(peer_id)
        else:
            self._cache[peer_id] = None
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def learn_addresses(self, peer_ids: Iterable[int]) -> None:
        """Cache several addresses."""
        for pid in peer_ids:
            self.learn_address(pid)

    def begin_session(self, now: float, lifetime: float) -> None:
        """Mark the peer online for *lifetime* seconds starting at *now*."""
        if self.alive:
            raise RuntimeError(f"peer {self.peer_id} is already online")
        if lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self.alive = True
        self.joined_at = now
        self.departs_at = now + lifetime
        self.sessions += 1

    def end_session(self) -> None:
        """Mark the peer offline (cached addresses survive, per the paper)."""
        if not self.alive:
            raise RuntimeError(f"peer {self.peer_id} is not online")
        self.alive = False
        self.joined_at = None
        self.departs_at = None
