"""Discrete-event simulation kernel.

A minimal, deterministic heap-based event loop.  The dynamic-environment
experiments (paper Section 5.2) schedule peer lifetimes, query issues and
per-peer ACE optimization ticks on this loop; query propagation itself is
evaluated analytically per query (see :mod:`repro.search.flooding`), which
keeps 10^5-query simulations fast while preserving the event-level dynamics
that matter — who is alive, and how stale each peer's routing state is, at
the moment each query is issued.

Events scheduled for the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so simulations are
fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventHandle", "EventLoop"]


@dataclass
class EventHandle:
    """Cancellable reference to a scheduled event."""

    time: float
    seq: int
    callback: Optional[Callable[[], None]]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`EventLoop.cancel` was called on this event."""
        return self.callback is None


class EventLoop:
    """A deterministic discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at absolute simulation time *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        handle = EventHandle(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* after *delay* seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if already fired or cancelled)."""
        handle.callback = None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.callback is None:
                continue
            self._now = time
            callback, handle.callback = handle.callback, None
            callback()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with time <= *end_time*, then advance the clock."""
        while self._heap:
            time, _seq, handle = self._heap[0]
            if time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue (optionally at most *max_events* events)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
