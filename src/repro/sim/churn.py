"""Peer churn: the paper's dynamic P2P environment (Section 4.3).

"We simulate the joining and leaving behavior of peers via turning on/off
logical peers ...  When a peer joins, a lifetime in seconds will be assigned
to the peer ...  The mean of the distribution is chosen to be 10 minutes; the
value of the variance is chosen to be half of the value of the mean ...
During each second, there are a number of peers leaving the system.  We then
randomly pick up (turn on) the same number of peers from the physical network
to join the overlay."

We read "variance half of the mean" as sigma = mean/2 (600 s mean, 300 s
standard deviation) and draw lifetimes from a log-normal with those first two
moments, matching the heavy-tailed session-time measurements of Saroiu et
al. the paper cites.  The population size stays constant: every departure
triggers one join from the offline pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..topology.overlay import Overlay
from .bootstrap import BootstrapService
from .peer import PeerRecord

__all__ = ["LifetimeDistribution", "ChurnConfig", "ChurnModel"]


class LifetimeDistribution:
    """Log-normal session lifetimes parameterized by mean and std."""

    def __init__(self, mean: float = 600.0, std: float = 300.0) -> None:
        if mean <= 0 or std <= 0:
            raise ValueError("mean and std must be positive")
        self.mean = mean
        self.std = std
        # Solve for the underlying normal's mu/sigma from the target moments.
        variance_ratio = (std / mean) ** 2
        self._sigma = math.sqrt(math.log(1.0 + variance_ratio))
        self._mu = math.log(mean) - 0.5 * self._sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one lifetime in seconds (always positive)."""
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* lifetimes."""
        return rng.lognormal(self._mu, self._sigma, size=n)


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters (paper defaults)."""

    mean_lifetime: float = 600.0
    std_lifetime: float = 300.0
    target_degree: int = 6


class ChurnModel:
    """Constant-population on/off churn over an overlay.

    The model owns the peer records: peers currently in the overlay are
    *online*; the rest form the offline pool from which replacements are
    drawn.  Departures and arrivals keep ``overlay.num_peers`` constant.
    """

    def __init__(
        self,
        overlay: Overlay,
        offline_hosts: Dict[int, int],
        rng: np.random.Generator,
        config: Optional[ChurnConfig] = None,
    ) -> None:
        self.overlay = overlay
        self.config = config or ChurnConfig()
        self.rng = rng
        self.lifetimes = LifetimeDistribution(
            self.config.mean_lifetime, self.config.std_lifetime
        )
        self.records: Dict[int, PeerRecord] = {}
        for peer in overlay.peers():
            self.records[peer] = PeerRecord(peer_id=peer, host=overlay.host_of(peer))
        for peer, host in offline_hosts.items():
            if peer in self.records:
                raise ValueError(f"offline peer {peer} collides with an online peer")
            self.records[peer] = PeerRecord(peer_id=peer, host=host)
        self._offline: List[int] = sorted(offline_hosts)
        self.bootstrap = BootstrapService(
            overlay, self.records, rng, target_degree=self.config.target_degree
        )
        self.departures = 0
        self.arrivals = 0

    # ------------------------------------------------------------------

    @property
    def online_count(self) -> int:
        """Number of peers currently in the overlay."""
        return self.overlay.num_peers

    @property
    def offline_count(self) -> int:
        """Size of the offline replacement pool."""
        return len(self._offline)

    def start_initial_sessions(self, now: float = 0.0) -> None:
        """Assign a lifetime to every initially online peer.

        Initial residual lifetimes are drawn from the same distribution;
        each online peer also primes its address cache with its current
        neighbors so a later re-join behaves like the paper describes.
        """
        for peer in self.overlay.peers():
            record = self.records[peer]
            record.begin_session(now, self.lifetimes.sample(self.rng))
            # Sorted: the address cache is ordered (most-recent-first), so
            # the learn order must be canonical across overlay engines.
            record.learn_addresses(sorted(self.overlay.neighbors(peer)))

    def next_departure(self) -> Optional[PeerRecord]:
        """The online peer with the earliest scheduled departure."""
        best: Optional[PeerRecord] = None
        for peer in self.overlay.peers():
            rec = self.records[peer]
            if rec.departs_at is None:
                continue
            if best is None or rec.departs_at < best.departs_at:
                best = rec
        return best

    def depart(self, peer: int, now: float) -> int:
        """Take *peer* offline and bring one replacement online.

        Returns the replacement's peer id.  The departing peer remembers its
        neighbors' addresses for its next session.
        """
        record = self.records[peer]
        # Sorted for the same canonical-order reason as the initial priming.
        record.learn_addresses(sorted(self.overlay.neighbors(peer)))
        self.overlay.remove_peer(peer)
        record.end_session()
        self._offline.append(peer)
        self.departures += 1
        return self._arrive(now, exclude=peer)

    def _arrive(self, now: float, exclude: Optional[int] = None) -> int:
        pool = self._offline
        if not pool:
            raise RuntimeError("offline pool exhausted")
        # Random replacement; avoid instantly re-joining the peer that just
        # left when any alternative exists.
        while True:
            idx = int(self.rng.integers(len(pool)))
            candidate = pool[idx]
            if candidate != exclude or len(pool) == 1:
                break
        pool[idx] = pool[-1]
        pool.pop()
        record = self.records[candidate]
        self.overlay.add_peer(candidate, record.host)
        record.begin_session(now, self.lifetimes.sample(self.rng))
        self.bootstrap.connect_joining_peer(candidate)
        self.arrivals += 1
        return candidate

    def repair_isolated(self) -> int:
        """Reconnect online peers left with zero neighbors by departures.

        Returns the number of peers repaired.  (In the real protocol a peer
        that loses all connections immediately re-bootstraps.)
        """
        repaired = 0
        for peer in self.overlay.peers():
            if self.overlay.degree(peer) == 0 and self.overlay.num_peers > 1:
                self.bootstrap.connect_joining_peer(peer)
                repaired += 1
        return repaired
