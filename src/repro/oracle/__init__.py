"""Pluggable delay oracles: exact batched Dijkstra or landmark embeddings.

See :mod:`repro.oracle.base` for the seam's rationale.  This package
exposes the protocol (:class:`DelayOracle`), the two production backends
(:class:`ExactOracle`, :class:`LandmarkOracle`), and a tiny spec grammar so
scenario configs and the CLI can select a backend with a string::

    exact                                  # the default; byte-identical to main
    landmark                               # k=16, maxmin selection, midpoint estimator
    landmark:32                            # k=32
    landmark:16:degree                     # degree-biased selection
    landmark:16:maxmin:upper               # triangle upper-bound estimator

:func:`parse_oracle_spec` turns the string into a validated
:class:`OracleSpec`; :func:`make_oracle` builds the backend for an
underlay.  Specs deliberately do not expose the exact-fallback budget:
config-built oracles stay stateless so answers never depend on query order
(serial and parallel runs of the same seed must agree byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from .base import DelayOracle, OracleAccuracyError
from .exact import ExactOracle
from .landmark import (
    LANDMARK_ESTIMATORS,
    LANDMARK_STRATEGIES,
    LandmarkEmbeddingHandle,
    LandmarkOracle,
    SharedEmbedding,
)

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from ..topology.physical import PhysicalTopology

__all__ = [
    "DelayOracle",
    "OracleAccuracyError",
    "ExactOracle",
    "LandmarkOracle",
    "LandmarkEmbeddingHandle",
    "SharedEmbedding",
    "LANDMARK_STRATEGIES",
    "LANDMARK_ESTIMATORS",
    "OracleSpec",
    "parse_oracle_spec",
    "make_oracle",
]


@dataclass(frozen=True)
class OracleSpec:
    """Parsed form of an oracle selection string (hashable, picklable)."""

    #: Backend kind: ``"exact"`` or ``"landmark"``.
    kind: str
    #: Landmark count *k* (landmark backend only).
    n_landmarks: int = 16
    #: Landmark selection strategy (landmark backend only).
    strategy: str = "maxmin"
    #: Query estimator (landmark backend only).
    estimator: str = "midpoint"

    def canonical(self) -> str:
        """The spec string that parses back to this exact spec."""
        if self.kind == "exact":
            return "exact"
        return f"landmark:{self.n_landmarks}:{self.strategy}:{self.estimator}"


def parse_oracle_spec(spec: str) -> OracleSpec:
    """Parse ``exact`` / ``landmark[:k[:strategy[:estimator]]]``.

    Raises ``ValueError`` with a pointed message on anything malformed, so
    a typo in a config or CLI flag fails at setup time, not mid-experiment.
    """
    text = spec.strip().lower()
    if not text:
        raise ValueError("empty oracle spec; expected 'exact' or 'landmark:<k>'")
    parts = text.split(":")
    kind = parts[0]
    if kind == "exact":
        if len(parts) > 1:
            raise ValueError(f"'exact' takes no parameters, got {spec!r}")
        return OracleSpec(kind="exact")
    if kind != "landmark":
        raise ValueError(
            f"unknown oracle kind {kind!r} in {spec!r}; "
            "expected 'exact' or 'landmark'"
        )
    if len(parts) > 4:
        raise ValueError(
            f"too many fields in {spec!r}; "
            "expected landmark[:k[:strategy[:estimator]]]"
        )
    n_landmarks = 16
    if len(parts) > 1 and parts[1]:
        try:
            n_landmarks = int(parts[1])
        except ValueError:
            raise ValueError(
                f"landmark count must be an integer, got {parts[1]!r} in {spec!r}"
            ) from None
        if n_landmarks < 1:
            raise ValueError(f"landmark count must be >= 1, got {n_landmarks}")
    strategy = "maxmin"
    if len(parts) > 2 and parts[2]:
        strategy = parts[2]
        if strategy not in LANDMARK_STRATEGIES:
            raise ValueError(
                f"unknown landmark strategy {strategy!r} in {spec!r}; "
                f"choose from {list(LANDMARK_STRATEGIES)}"
            )
    estimator = "midpoint"
    if len(parts) > 3 and parts[3]:
        estimator = parts[3]
        if estimator not in LANDMARK_ESTIMATORS:
            raise ValueError(
                f"unknown estimator {estimator!r} in {spec!r}; "
                f"choose from {list(LANDMARK_ESTIMATORS)}"
            )
    return OracleSpec(
        kind="landmark",
        n_landmarks=n_landmarks,
        strategy=strategy,
        estimator=estimator,
    )


def make_oracle(
    spec: str,
    physical: "PhysicalTopology",
    rng: Optional[np.random.Generator] = None,
) -> DelayOracle:
    """Build the oracle a spec string selects, for one underlay.

    *rng* feeds the landmark selection draws (``random``/``maxmin``); pass
    a dedicated seeded stream so oracle construction never perturbs other
    seeded draws.  Ignored for ``exact``.
    """
    parsed = parse_oracle_spec(spec)
    if parsed.kind == "exact":
        return ExactOracle(physical)
    return LandmarkOracle(
        physical,
        n_landmarks=parsed.n_landmarks,
        strategy=parsed.strategy,
        estimator=parsed.estimator,
        rng=rng,
    )
