"""The exact delay oracle: a transparent front for the batched engine.

:class:`ExactOracle` delegates every query verbatim to the
:class:`~repro.topology.physical.PhysicalTopology` batched-Dijkstra + LRU
machinery — no extra caching, no value transformation, no additional
counter traffic.  An :class:`~repro.topology.overlay.Overlay` routing its
cost lookups through this oracle therefore behaves **byte-for-byte** like
one calling the underlay directly (same answers, same Dijkstra workload,
same perf-counter increments), which is what lets the oracle seam exist
without perturbing any seeded experiment
(``tests/experiments/test_reproducibility.py`` pins this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

import numpy as np

from .base import DelayOracle

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from ..topology.physical import PhysicalTopology

__all__ = ["ExactOracle"]


class ExactOracle(DelayOracle):
    """Exact shortest-path delays via the underlay's Dijkstra engine."""

    def __init__(self, physical: "PhysicalTopology") -> None:
        self._physical = physical

    @property
    def physical(self) -> "PhysicalTopology":
        """The underlay this oracle answers for."""
        return self._physical

    def delay(self, u: int, v: int) -> float:
        """Exact delay between *u* and *v* (LRU-served, Dijkstra on miss)."""
        return self._physical.delay(u, v)

    def delays_from(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Exact delay vector from *source* (optionally sliced to targets)."""
        vec = self._physical.delays_from(source)
        if targets is None:
            return vec
        return vec[np.asarray(list(targets), dtype=np.int64)]

    def delays_from_many(
        self, sources: Iterable[int], cache: bool = True
    ) -> Dict[int, np.ndarray]:
        """Exact vectors for several sources via one batched solve."""
        return self._physical.delays_from_many(sources, cache=cache)

    def warm(self, sources: Iterable[int]) -> int:
        """Prefetch exact vectors for a working set (grows the LRU)."""
        return self._physical.warm(sources)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactOracle(num_nodes={self._physical.num_nodes})"
