"""Landmark-embedding delay oracle: k Dijkstra runs, then vector arithmetic.

The scheme the paper criticizes in Section 2 (Xu et al. [21]), made
measurable and selectable: pick *k* landmark hosts, solve one single-source
shortest-path problem per landmark (the only Dijkstra work the oracle ever
does), and answer every later query from the resulting ``(k, N)`` embedding.
For hosts *u*, *v* with landmark vectors ``x_u``, ``x_v`` the triangle
inequality gives hard bounds on the true delay ``d(u, v)``::

    L = max_i |x_u[i] - x_v[i]|   <=   d(u, v)   <=   min_i (x_u[i] + x_v[i]) = U

so the oracle can report not just an estimate but its error bracket, fall
back to the exact engine when the bracket is too wide (a bounded per-oracle
budget), and *validate* a requested ``accuracy`` against exact delays on a
seeded sample at construction time — failing loudly with
:class:`~repro.oracle.base.OracleAccuracyError` instead of silently serving
garbage.

Landmark selection strategies (all deterministic given the construction
RNG):

* ``random`` — uniform draw from the largest component, reproducing the
  exact seeded draw order of the historical
  :class:`~repro.extensions.landmark.LandmarkMatcher` (which is now a thin
  adapter over this class);
* ``degree`` — the highest-degree hosts (hub landmarks see short paths to
  most of the network), ties broken by node id, no RNG consumed;
* ``maxmin`` — greedy k-center: start from a random host, repeatedly add
  the host farthest from every landmark chosen so far.  Spreads landmarks
  across the delay space, which tightens the triangle bounds; the rows
  computed during selection *are* the embedding rows, so it costs the same
  k solves.

The embedding is immutable once built, so it rides the same zero-copy
shared-memory transport as the underlay CSR arrays
(:mod:`repro.topology.shm`): :meth:`LandmarkOracle.export_shared` places
the ``(k, N)`` matrix in a named segment and
:meth:`LandmarkOracle.attach_shared` maps it read-only in worker processes
— no per-worker re-embedding, no multi-megabyte pickling.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..perf import counters
from ..rng import ensure_rng
from ..topology.shm import (
    SharedArraySpec,
    SharedSegments,
    attach_array,
    export_arrays,
)
from .base import DelayOracle, OracleAccuracyError

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from ..topology.physical import PhysicalTopology

__all__ = [
    "LANDMARK_STRATEGIES",
    "LANDMARK_ESTIMATORS",
    "LandmarkEmbeddingHandle",
    "SharedEmbedding",
    "LandmarkOracle",
]

#: Supported landmark-selection strategies.
LANDMARK_STRATEGIES = ("random", "degree", "maxmin")

#: Supported estimators combining the per-landmark bounds into one answer.
LANDMARK_ESTIMATORS = ("euclidean", "lower", "upper", "midpoint")

#: Relative-gap floor so the fallback test is meaningful near zero delay.
_EPS = 1e-12

#: Seed of the construction-time accuracy validation sample.  A fixed
#: constant (not the caller's RNG) so validating never perturbs the
#: scenario's seeded streams.
_VALIDATION_SEED = 0xACC0


@dataclass(frozen=True)
class LandmarkEmbeddingHandle:
    """Picklable description of one exported landmark embedding.

    Everything a worker needs to rebuild a functioning
    :class:`LandmarkOracle` around the shared ``(k, N)`` matrix: the
    landmark ids and knobs travel inline (a few hundred bytes), only the
    embedding itself lives in shared memory.
    """

    landmarks: Tuple[int, ...]
    strategy: str
    estimator: str
    num_nodes: int
    embedding: SharedArraySpec
    exact_fallback_budget: int = 0
    fallback_gap: float = 0.5


class SharedEmbedding(SharedSegments):
    """Owner of one exported landmark embedding's shared-memory segment.

    Created by :meth:`LandmarkOracle.export_shared`; see
    :class:`~repro.topology.shm.SharedSegments` for the ownership/unlink
    contract (context manager, idempotent unlink, PID-guarded atexit).
    """

    def __init__(
        self,
        handle: LandmarkEmbeddingHandle,
        segments: List[object],
    ) -> None:
        super().__init__(handle, segments)  # type: ignore[arg-type]
        self._embedding_handle = handle

    @property
    def handle(self) -> LandmarkEmbeddingHandle:
        """The picklable handle workers attach from."""
        return self._embedding_handle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "unlinked" if self._unlinked else f"{len(self._segments)} segments"
        return (
            f"SharedEmbedding(k={len(self._embedding_handle.landmarks)}, "
            f"num_nodes={self._embedding_handle.num_nodes}, {state})"
        )


class LandmarkOracle(DelayOracle):
    """Approximate delays from a k-landmark embedding with exact bounds.

    Parameters
    ----------
    physical:
        The underlay to embed.
    n_landmarks:
        Number of landmarks *k* (ignored when *landmarks* is given).
    strategy:
        Landmark selection: one of :data:`LANDMARK_STRATEGIES`.
    estimator:
        How a query is answered from the bounds: ``euclidean`` (normalized
        vector distance — the classic GNP proxy, a lower-bound flavor),
        ``lower`` / ``upper`` (the triangle bounds themselves), or
        ``midpoint`` (their average — the minimax choice, default).
    rng:
        Seeded generator for the ``random``/``maxmin`` draws; falls back to
        the repo-wide seeded default (never OS entropy).
    landmarks:
        Explicit landmark host ids; skips selection (and the RNG) entirely.
    embedding:
        Pre-computed ``(k, N)`` delay matrix aligned with *landmarks* —
        used by :meth:`attach_shared`; skips the embedding solves.
    exact_fallback_budget:
        Number of scalar :meth:`delay` queries allowed to fall back to the
        exact engine when the triangle bracket is too wide.  ``0`` (the
        default) disables fallback, which keeps the oracle stateless — the
        right setting whenever answers must not depend on query order.
    fallback_gap:
        Relative bracket width ``(U - L) / max(L, eps)`` above which a
        query is considered uncertain enough to spend fallback budget.
    accuracy:
        Optional knob in ``(0, 1]``: at construction, the median relative
        error of the estimator is measured against exact delays on a
        seeded sample of host pairs, and construction raises
        :class:`~repro.oracle.base.OracleAccuracyError` if it exceeds
        ``1 - accuracy``.
    validation_samples:
        Sample size of that accuracy validation.
    vector_cache_size:
        LRU capacity for full estimate vectors served by
        :meth:`delays_from`.
    """

    def __init__(
        self,
        physical: "PhysicalTopology",
        n_landmarks: int = 16,
        strategy: str = "maxmin",
        estimator: str = "midpoint",
        rng: Optional[np.random.Generator] = None,
        landmarks: Optional[Sequence[int]] = None,
        embedding: Optional[np.ndarray] = None,
        exact_fallback_budget: int = 0,
        fallback_gap: float = 0.5,
        accuracy: Optional[float] = None,
        validation_samples: int = 64,
        vector_cache_size: int = 128,
    ) -> None:
        if strategy not in LANDMARK_STRATEGIES:
            raise ValueError(
                f"unknown landmark strategy {strategy!r}; "
                f"choose from {list(LANDMARK_STRATEGIES)}"
            )
        if estimator not in LANDMARK_ESTIMATORS:
            raise ValueError(
                f"unknown estimator {estimator!r}; "
                f"choose from {list(LANDMARK_ESTIMATORS)}"
            )
        if exact_fallback_budget < 0:
            raise ValueError("exact_fallback_budget must be >= 0")
        if fallback_gap < 0:
            raise ValueError("fallback_gap must be >= 0")
        if vector_cache_size < 1:
            raise ValueError("vector_cache_size must be >= 1")
        self._physical = physical
        self._strategy = strategy
        self._estimator = estimator
        self._fallback_gap = float(fallback_gap)
        self._fallback_budget = int(exact_fallback_budget)
        self._fallback_left = int(exact_fallback_budget)
        self._vector_cache_size = int(vector_cache_size)
        self._vector_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._attached_segments: List[object] = []
        #: Median relative error measured by the last accuracy validation
        #: (``None`` until :meth:`validate_accuracy` runs).
        self.validated_error: Optional[float] = None

        if landmarks is not None:
            lms = [int(x) for x in landmarks]
            if not lms:
                raise ValueError("need at least one landmark")
            for lm in lms:
                if not (0 <= lm < physical.num_nodes):
                    raise ValueError(f"landmark {lm} out of range")
            if len(set(lms)) != len(lms):
                raise ValueError("landmark ids must be distinct")
            self.landmarks: List[int] = lms
            if embedding is not None:
                embedding = np.asarray(embedding, dtype=float)
                if embedding.shape != (len(lms), physical.num_nodes):
                    raise ValueError(
                        f"embedding must have shape "
                        f"({len(lms)}, {physical.num_nodes}), "
                        f"got {embedding.shape}"
                    )
                self._embedding = embedding
            else:
                self._embedding = self._embed(lms)
        else:
            if embedding is not None:
                raise ValueError("embedding requires explicit landmarks")
            if n_landmarks < 1:
                raise ValueError("need at least one landmark")
            rng = ensure_rng(rng)
            if strategy == "maxmin":
                self.landmarks, self._embedding = self._select_maxmin(
                    n_landmarks, rng
                )
            else:
                self.landmarks = self._select(n_landmarks, strategy, rng)
                self._embedding = self._embed(self.landmarks)

        if accuracy is not None:
            if not 0.0 < accuracy <= 1.0:
                raise ValueError("accuracy must be in (0, 1]")
            error = self.validate_accuracy(samples=validation_samples)
            allowed = 1.0 - accuracy
            if error > allowed + _EPS:
                raise OracleAccuracyError(
                    f"landmark oracle (k={len(self.landmarks)}, "
                    f"strategy={self._strategy}, estimator={self._estimator}) "
                    f"measured median relative error {error:.3f} > allowed "
                    f"{allowed:.3f} for accuracy={accuracy}; raise "
                    "n_landmarks, lower accuracy, or use the exact oracle"
                )

    # ------------------------------------------------------------------
    # Landmark selection and embedding
    # ------------------------------------------------------------------

    def _select(
        self, n_landmarks: int, strategy: str, rng: np.random.Generator
    ) -> List[int]:
        """Pick landmark hosts by the ``random`` or ``degree`` strategy."""
        hosts = self._physical.largest_component_nodes()
        k = min(n_landmarks, len(hosts))
        if strategy == "random":
            # Must stay the exact draw LandmarkMatcher historically made, so
            # the extensions adapter reproduces its seeded landmark sets.
            idx = rng.choice(len(hosts), size=k, replace=False)
            return [hosts[int(i)] for i in idx]
        degrees = self._physical.degrees()
        ranked = sorted(hosts, key=lambda h: (-int(degrees[h]), h))
        return ranked[:k]

    def _select_maxmin(
        self, n_landmarks: int, rng: np.random.Generator
    ) -> Tuple[List[int], np.ndarray]:
        """Greedy k-center selection, reusing its solves as the embedding."""
        hosts = self._physical.largest_component_nodes()
        k = min(n_landmarks, len(hosts))
        host_arr = np.asarray(hosts, dtype=np.int64)
        first = hosts[int(rng.integers(len(hosts)))]
        landmarks = [first]
        rows = [self._solve_row(first)]
        while len(landmarks) < k:
            # Distance of every candidate host to its nearest landmark; the
            # farthest candidate becomes the next landmark (ties resolve to
            # the smallest host id because `hosts` is sorted).
            nearest = np.min(np.vstack(rows)[:, host_arr], axis=0)
            nxt = int(host_arr[int(np.argmax(nearest))])
            if nxt in landmarks:  # pragma: no cover - degenerate graphs only
                break
            landmarks.append(nxt)
            rows.append(self._solve_row(nxt))
        return landmarks, np.vstack(rows)

    def _solve_row(self, landmark: int) -> np.ndarray:
        """One embedding row: exact delays from *landmark* to every node."""
        counters.landmark_embed_sources += 1
        return self._physical.delays_from_many([landmark], cache=False)[landmark]

    def _embed(self, landmarks: Sequence[int]) -> np.ndarray:
        """The ``(k, N)`` embedding via one batched Dijkstra solve."""
        counters.landmark_embed_sources += len(landmarks)
        rows = self._physical.delays_from_many(landmarks, cache=False)
        return np.vstack([rows[lm] for lm in landmarks])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def physical(self) -> "PhysicalTopology":
        """The underlay this oracle answers for."""
        return self._physical

    @property
    def n_landmarks(self) -> int:
        """Number of landmarks *k*."""
        return len(self.landmarks)

    @property
    def strategy(self) -> str:
        """Landmark-selection strategy this oracle was built with."""
        return self._strategy

    @property
    def estimator(self) -> str:
        """Estimator answering queries from the triangle bounds."""
        return self._estimator

    @property
    def embedding(self) -> np.ndarray:
        """The ``(k, N)`` landmark-to-node delay matrix (do not mutate)."""
        return self._embedding

    @property
    def exact_fallbacks_remaining(self) -> int:
        """Exact-fallback budget not yet spent."""
        return self._fallback_left

    @property
    def is_attached(self) -> bool:
        """Whether the embedding is a shared-memory view from another process."""
        return bool(self._attached_segments)

    def vector_of(self, host: int) -> np.ndarray:
        """The host's landmark delay vector (a read-only-by-convention view)."""
        return self._embedding[:, host]

    # ------------------------------------------------------------------
    # Bounds and estimates
    # ------------------------------------------------------------------

    def bounds(self, u: int, v: int) -> Tuple[float, float]:
        """Triangle-inequality bracket ``(L, U)`` with ``L <= d(u,v) <= U``.

        ``(0, 0)`` when ``u == v``; non-finite bounds mean a host is
        unreachable from the landmark set (nodes outside the largest
        component).
        """
        if u == v:
            return 0.0, 0.0
        xu = self._embedding[:, u]
        xv = self._embedding[:, v]
        with np.errstate(invalid="ignore"):
            lower = float(np.max(np.abs(xu - xv)))
            upper = float(np.min(xu + xv))
        return lower, upper

    def _estimate_from_bounds(
        self, lower: float, upper: float, euclidean: float
    ) -> float:
        if self._estimator == "euclidean":
            est = euclidean
        elif self._estimator == "lower":
            est = lower
        elif self._estimator == "upper":
            est = upper
        else:  # midpoint
            est = 0.5 * (lower + upper)
        if math.isnan(est):
            # Both hosts outside the landmarks' component: the embedding
            # carries no information; report unreachable.
            return math.inf
        return est

    def _uncertain(self, lower: float, upper: float) -> bool:
        """Whether the bracket is too wide to trust (NaN/inf count as wide)."""
        return not (upper - lower <= self._fallback_gap * max(lower, _EPS))

    def estimate(self, u: int, v: int) -> float:
        """The pure embedding estimate for ``d(u, v)`` — never falls back."""
        if u == v:
            return 0.0
        lower, upper = self.bounds(u, v)
        xu = self._embedding[:, u]
        xv = self._embedding[:, v]
        with np.errstate(invalid="ignore"):
            euclid = float(
                np.linalg.norm(xu - xv) / math.sqrt(len(self.landmarks))
            )
        return self._estimate_from_bounds(lower, upper, euclid)

    def delay(self, u: int, v: int) -> float:
        """Estimated delay, falling back to exact while budget remains.

        A query whose triangle bracket is wider than ``fallback_gap``
        (relative to the lower bound) spends one unit of
        ``exact_fallback_budget`` and returns the exact engine's answer;
        everything else is served from the embedding.
        """
        if u == v:
            return 0.0
        lower, upper = self.bounds(u, v)
        if self._fallback_left > 0 and self._uncertain(lower, upper):
            self._fallback_left -= 1
            counters.oracle_exact_fallbacks += 1
            return self._physical.delay(u, v)
        counters.oracle_estimates += 1
        xu = self._embedding[:, u]
        xv = self._embedding[:, v]
        with np.errstate(invalid="ignore"):
            euclid = float(
                np.linalg.norm(xu - xv) / math.sqrt(len(self.landmarks))
            )
        return self._estimate_from_bounds(lower, upper, euclid)

    def _estimate_vector(self, source: int) -> np.ndarray:
        """Estimated delays from *source* to every node (vectorized)."""
        x = self._embedding
        xs = x[:, source : source + 1]
        with np.errstate(invalid="ignore"):
            diff = np.abs(x - xs)
            if self._estimator == "euclidean":
                est = np.sqrt(np.sum(diff * diff, axis=0)) / math.sqrt(
                    len(self.landmarks)
                )
            else:
                lower = np.max(diff, axis=0)
                if self._estimator == "lower":
                    est = lower
                else:
                    upper = np.min(x + xs, axis=0)
                    if self._estimator == "upper":
                        est = upper
                    else:  # midpoint
                        est = 0.5 * (lower + upper)
        est = np.where(np.isnan(est), np.inf, est)
        est[source] = 0.0
        est.flags.writeable = False
        counters.oracle_estimates += 1
        return est

    # ------------------------------------------------------------------
    # DelayOracle batched interface
    # ------------------------------------------------------------------

    def delays_from(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Estimate vector from *source* (LRU-cached), optionally sliced."""
        if not (0 <= source < self._physical.num_nodes):
            raise ValueError(f"source {source} out of range")
        vec = self._vector_cache.get(source)
        if vec is None:
            vec = self._estimate_vector(source)
            self._vector_cache[source] = vec
            while len(self._vector_cache) > self._vector_cache_size:
                self._vector_cache.popitem(last=False)
        else:
            self._vector_cache.move_to_end(source)
        if targets is None:
            return vec
        return vec[np.asarray(list(targets), dtype=np.int64)]

    #: Per-pair estimates are O(n_landmarks) arithmetic — callers should
    #: ask for exactly the pairs they need instead of prefetching vectors.
    pairwise_cheap = True

    def delay_pairs(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Pairwise embedding estimates, bit-identical to the vector path.

        The arithmetic mirrors :meth:`_estimate_vector` column for column —
        the same elementwise ops and the same axis-0 reductions over the
        landmark dimension — so ``delay_pairs(us, vs)[i]`` equals
        ``delays_from(us[i])[vs[i]]`` exactly (max/min are order-exact;
        the euclidean sum reduces 2-D arrays over axis 0 in both paths).
        Like the vector interface, this never spends exact-fallback budget.
        """
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("sources and targets must have equal length")
        if len(us) == 0:
            return np.empty(0, dtype=np.float64)
        n = self._physical.num_nodes
        for arr in (us, vs):
            if int(arr.min()) < 0 or int(arr.max()) >= n:
                raise ValueError("host id out of range")
        x = self._embedding
        xu = x[:, us]
        xv = x[:, vs]
        with np.errstate(invalid="ignore"):
            diff = np.abs(xu - xv)
            if self._estimator == "euclidean":
                # numpy reduces axis 0 of a wide array by sequential row
                # accumulation but takes an unrolled 1-D path for narrow
                # ones, and float addition is not associative — spell the
                # sequential order out so any pair count matches the
                # full-vector sum bit for bit.
                sq = diff * diff
                acc = sq[0].copy()
                for row in sq[1:]:
                    acc += row
                est = np.sqrt(acc) / math.sqrt(len(self.landmarks))
            else:
                lower = np.max(diff, axis=0)
                if self._estimator == "lower":
                    est = lower
                else:
                    upper = np.min(xu + xv, axis=0)
                    if self._estimator == "upper":
                        est = upper
                    else:  # midpoint
                        est = 0.5 * (lower + upper)
        est = np.where(np.isnan(est), np.inf, est)
        est[us == vs] = 0.0
        counters.oracle_estimates += len(us)
        return est

    def delays_from_many(
        self, sources: Iterable[int], cache: bool = True
    ) -> Dict[int, np.ndarray]:
        """Estimate vectors for several sources — no Dijkstra, ever."""
        out: Dict[int, np.ndarray] = {}
        for raw in sources:
            s = int(raw)
            if s in out:
                continue
            if cache:
                out[s] = self.delays_from(s)
                continue
            cached = self._vector_cache.get(s)
            out[s] = cached if cached is not None else self._estimate_vector(s)
        return out

    def warm(self, sources: Iterable[int]) -> int:
        """Precompute (and pin) estimate vectors for a working set.

        The embedding already covers every node, so this is pure vector
        arithmetic — no underlay solves.  Grows the vector LRU to keep the
        whole set resident; returns the number of vectors computed now.
        """
        wanted: List[int] = []
        seen = set()
        for raw in sources:
            s = int(raw)
            if not (0 <= s < self._physical.num_nodes):
                raise ValueError(f"source {s} out of range")
            if s not in seen:
                seen.add(s)
                wanted.append(s)
        if len(wanted) > self._vector_cache_size:
            self._vector_cache_size = len(wanted)
        computed = 0
        for s in wanted:
            if s not in self._vector_cache:
                self.delays_from(s)
                computed += 1
        return computed

    # ------------------------------------------------------------------
    # Accuracy validation
    # ------------------------------------------------------------------

    def validate_accuracy(self, samples: int = 64) -> float:
        """Median relative error of the estimator vs. exact delays.

        Draws *samples* host pairs from the landmarks' component with a
        fixed internal seed (the scenario's RNG streams are never
        consumed), resolves the true delays through the exact engine in
        one batched sweep per distinct source, and returns the median of
        ``|est - true| / true`` over pairs with positive true delay.  The
        result is also stored as :attr:`validated_error`.
        """
        if samples < 1:
            raise ValueError("samples must be >= 1")
        hosts = self._physical.largest_component_nodes()
        if len(hosts) < 2:
            self.validated_error = 0.0
            return 0.0
        rng = np.random.default_rng(_VALIDATION_SEED)
        idx = rng.integers(0, len(hosts), size=(samples, 2))
        pairs = [
            (hosts[int(i)], hosts[int(j)]) for i, j in idx if int(i) != int(j)
        ]
        by_source: Dict[int, set] = {}
        for a, b in pairs:
            by_source.setdefault(a, set()).add(b)
        true_rows = self._physical.delays_from_many(
            sorted(by_source), cache=False
        )
        errors: List[float] = []
        for a, b in pairs:
            true = float(true_rows[a][b])
            if not math.isfinite(true) or true <= 0.0:
                continue
            est = self.estimate(a, b)
            errors.append(abs(est - true) / true)
        error = float(np.median(errors)) if errors else 0.0
        self.validated_error = error
        return error

    # ------------------------------------------------------------------
    # Shared-memory export / attach
    # ------------------------------------------------------------------

    def export_shared(self) -> SharedEmbedding:
        """Copy the embedding into shared memory for zero-copy workers.

        Returns a :class:`SharedEmbedding` that owns the segment; its
        picklable ``.handle`` is what worker processes pass to
        :meth:`attach_shared`.  The exporter must unlink when the fleet is
        done (context manager / ``finally``); attachers only unmap.
        """
        segments, specs = export_arrays({"embedding": self._embedding})
        handle = LandmarkEmbeddingHandle(
            landmarks=tuple(self.landmarks),
            strategy=self._strategy,
            estimator=self._estimator,
            num_nodes=self._physical.num_nodes,
            embedding=specs["embedding"],
            exact_fallback_budget=self._fallback_budget,
            fallback_gap=self._fallback_gap,
        )
        return SharedEmbedding(handle, list(segments))

    @classmethod
    def attach_shared(
        cls, handle: LandmarkEmbeddingHandle, physical: "PhysicalTopology"
    ) -> "LandmarkOracle":
        """Rebuild an oracle around an exported embedding, zero-copy.

        The embedding becomes a read-only view into the shared segment (no
        re-solving, no copying); *physical* must be the same underlay the
        exporter embedded — typically itself attached via
        :meth:`PhysicalTopology.attach_shared
        <repro.topology.physical.PhysicalTopology.attach_shared>`.  The
        attached oracle keeps the segment mapped for its own lifetime and
        never unlinks it.
        """
        if physical.num_nodes != handle.num_nodes:
            raise ValueError(
                f"underlay has {physical.num_nodes} nodes but the embedding "
                f"was exported for {handle.num_nodes}"
            )
        seg, view = attach_array(handle.embedding)
        oracle = cls(
            physical,
            strategy=handle.strategy,
            estimator=handle.estimator,
            landmarks=list(handle.landmarks),
            embedding=view,
            exact_fallback_budget=handle.exact_fallback_budget,
            fallback_gap=handle.fallback_gap,
        )
        oracle._attached_segments = [seg]
        return oracle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LandmarkOracle(k={len(self.landmarks)}, "
            f"strategy={self._strategy!r}, estimator={self._estimator!r}, "
            f"num_nodes={self._physical.num_nodes})"
        )
