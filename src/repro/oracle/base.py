"""The delay-oracle seam: one protocol, swappable backends.

Every layer above the underlay consumes exactly one quantity — the
shortest-path delay between two physical hosts — but the *right way to
compute it* depends on scale.  The batched-Dijkstra engine answers exactly
and amortizes well up to paper scale (20,000 nodes); beyond that, exact
all-pairs warming stops being tractable and the landmark-embedding scheme
the paper criticizes in Section 2 (Xu et al. [21]) becomes the pragmatic
trade: *k* Dijkstra runs up front, vector arithmetic per query, bounded
error.

:class:`DelayOracle` is the seam that makes the trade selectable instead of
hard-coded: :class:`~repro.oracle.exact.ExactOracle` delegates to the
:class:`~repro.topology.physical.PhysicalTopology` engine (byte-identical
to calling it directly), :class:`~repro.oracle.landmark.LandmarkOracle`
answers from a landmark embedding with triangle-inequality error bounds and
an accuracy gate.  :class:`~repro.topology.overlay.Overlay` routes every
cost lookup through its oracle, and replint rule REP006 keeps
``repro.core``/``repro.search`` from reaching around the seam.

The interface mirrors the underlay engine's access patterns on purpose —
scalar :meth:`~DelayOracle.delay`, single-source
:meth:`~DelayOracle.delays_from` (optionally restricted to a target list),
batched :meth:`~DelayOracle.delays_from_many`, and
:meth:`~DelayOracle.warm` prefetch — so swapping backends never changes
call sites, only answers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from ..topology.physical import PhysicalTopology

__all__ = ["DelayOracle", "OracleAccuracyError"]


class OracleAccuracyError(ValueError):
    """An approximate oracle failed its configured accuracy validation.

    Raised at construction time when a :class:`LandmarkOracle
    <repro.oracle.landmark.LandmarkOracle>` built with an ``accuracy`` knob
    measures a median relative error above the allowed ``1 - accuracy`` on
    its seeded validation sample — the caller asked for a fidelity this
    embedding cannot deliver and must raise ``n_landmarks``, lower
    ``accuracy``, or fall back to the exact backend.
    """


class DelayOracle(ABC):
    """Answers host-to-host shortest-path delay queries for one underlay.

    Implementations must be *deterministic* (same construction inputs, same
    answers — the repo's one-seed-one-figure contract extends through the
    oracle) and must report their work through
    :data:`repro.perf.counters` so experiments can budget it.
    """

    @property
    @abstractmethod
    def physical(self) -> "PhysicalTopology":
        """The underlay this oracle answers for."""

    @abstractmethod
    def delay(self, u: int, v: int) -> float:
        """Delay between hosts *u* and *v* (0 when ``u == v``)."""

    @abstractmethod
    def delays_from(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Delays from *source* to every node, or just to *targets*.

        With ``targets=None`` returns the full length-``num_nodes`` vector
        (indexable by host id); otherwise a 1-D array aligned with
        *targets*.  The returned array must not be mutated by the caller.
        """

    @abstractmethod
    def delays_from_many(
        self, sources: Iterable[int], cache: bool = True
    ) -> Dict[int, np.ndarray]:
        """Full delay vectors for several sources: ``{source: vector}``.

        ``cache=False`` asks the backend not to retain the vectors beyond
        the call (bounded memory when streaming a large source set).
        """

    @abstractmethod
    def warm(self, sources: Iterable[int]) -> int:
        """Prefetch whatever makes later queries from *sources* cheap.

        Returns the number of sources actually solved now (0 when the
        backend has nothing to precompute — e.g. an embedding already
        covers every node).
        """

    #: Whether :meth:`delay_pairs` is cheap enough that callers should
    #: prefer it over vector prefetching.  ``False`` when answering one
    #: pair costs a full single-source solve (the exact engine); ``True``
    #: when a pair is O(landmarks) arithmetic (embedding backends).  The
    #: struct-of-arrays overlay consults this to decide between block
    #: pre-warming and direct pairwise fills.
    pairwise_cheap: bool = False

    def delay_pairs(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Delays for aligned ``(sources[i], targets[i])`` host pairs.

        Must return exactly the values the vector interface would:
        ``delay_pairs(us, vs)[i] == delays_from(us[i])[vs[i]]`` bit for
        bit, so callers may mix the two forms without perturbing the
        one-seed-one-figure contract.  The default groups by source and
        slices :meth:`delays_from` — one solve per distinct source;
        backends with a cheap pairwise form override it.
        """
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("sources and targets must have equal length")
        out = np.empty(len(us), dtype=np.float64)
        by_source: Dict[int, List[int]] = {}
        for i, s in enumerate(us.tolist()):
            by_source.setdefault(int(s), []).append(i)
        for s, idx in by_source.items():
            got = self.delays_from(s, [int(vs[i]) for i in idx])
            out[idx] = got
        return out
