"""repro — reproduction of "A Distributed Approach to Solving Overlay
Mismatching Problem" (Liu, Zhuang, Xiao, Ni — ICDCS 2004).

The package implements ACE (Adaptive Connection Establishment) together
with every substrate the paper's evaluation depends on:

* :mod:`repro.topology` — BRITE-style physical underlays and Gnutella-like
  logical overlays whose link costs are underlay shortest-path delays.
* :mod:`repro.oracle` — pluggable delay backends behind one seam: exact
  batched Dijkstra, or a k-landmark embedding with triangle-inequality
  error bounds and an accuracy gate.
* :mod:`repro.core` — the ACE protocol: neighbor cost tables (Phase 1),
  per-peer minimum spanning trees over h-neighbor closures (Phase 2), and
  adaptive connection replacement (Phase 3).
* :mod:`repro.search` — blind flooding, ACE tree routing, and response
  index caching.
* :mod:`repro.sim` — discrete-event kernel, churn, bootstrap, workload.
* :mod:`repro.metrics` — traffic/scope/response accounting and the
  gain/penalty optimization-rate analysis.
* :mod:`repro.experiments` — drivers regenerating every evaluation figure.
* :mod:`repro.extensions` — AOTO and (simplified) LTM comparators.

Quickstart::

    import numpy as np
    from repro import (
        barabasi_albert, random_overlay, AceProtocol, AceConfig,
        blind_flooding_strategy, ace_strategy, propagate,
    )

    rng = np.random.default_rng(7)
    physical = barabasi_albert(1000, m=2, rng=rng)
    overlay = random_overlay(physical, 128, avg_degree=6, rng=rng)

    before = propagate(overlay, 0, blind_flooding_strategy(overlay), ttl=None)
    protocol = AceProtocol(overlay, AceConfig(depth=1), rng=rng)
    protocol.run(10)
    after = propagate(overlay, 0, ace_strategy(protocol), ttl=None)
    assert after.reached == before.reached          # same search scope
    assert after.traffic_cost < before.traffic_cost  # less traffic
"""

from .core import (
    AceConfig,
    AceProtocol,
    AdaptiveAceProtocol,
    DepthAdvisor,
    FrequencyEstimator,
    CandidatePolicy,
    ClosestPolicy,
    ClosureView,
    NaivePolicy,
    NeighborCostTable,
    PeerAceState,
    RandomPolicy,
    ReplacementAction,
    SpanningTree,
    StepReport,
    attempt_replacement,
    build_cost_table,
    make_policy,
    neighbor_closure,
    prim_mst,
    prim_mst_heap,
)
from .extensions import (
    AotoProtocol,
    LandmarkMatcher,
    LtmProtocol,
    aoto_config,
    hpf_strategy,
)
from .oracle import (
    DelayOracle,
    ExactOracle,
    LandmarkOracle,
    OracleAccuracyError,
    OracleSpec,
    make_oracle,
    parse_oracle_spec,
)
from .metrics import (
    OptimizationTradeoff,
    SeriesCollector,
    TrafficAccount,
    minimal_depth_for_gain,
    optimization_rate,
    reduction_rate,
    summarize,
)
from .search import (
    GNUTELLA_TTL,
    RingResult,
    WalkResult,
    expanding_ring_query,
    random_walk_query,
    IndexCache,
    IndexCacheStore,
    QueryPropagation,
    QueryResult,
    ace_propagate,
    ace_query,
    ace_strategy,
    blind_flooding_strategy,
    cached_query,
    propagate,
    run_query,
)
from .sim import (
    BootstrapService,
    MessageNetwork,
    run_message_level_query,
    ChurnConfig,
    ChurnModel,
    EventLoop,
    LifetimeDistribution,
    ObjectCatalog,
    PeerRecord,
    QueryWorkload,
    WorkloadConfig,
)
from .topology import (
    AsTrafficReport,
    Overlay,
    TwoTierOverlay,
    as_traffic_report,
    build_two_tier,
    transit_stub,
    two_tier_query,
    PhysicalTopology,
    TopologyReport,
    analyze,
    barabasi_albert,
    glp,
    grid,
    paper_underlay,
    power_law_overlay,
    random_overlay,
    small_world_overlay,
    synthesize_gnutella_snapshot,
    watts_strogatz,
    waxman,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "PhysicalTopology",
    "Overlay",
    "random_overlay",
    "power_law_overlay",
    "small_world_overlay",
    "barabasi_albert",
    "waxman",
    "glp",
    "watts_strogatz",
    "grid",
    "paper_underlay",
    "TopologyReport",
    "analyze",
    "synthesize_gnutella_snapshot",
    # core
    "AceProtocol",
    "AceConfig",
    "AdaptiveAceProtocol",
    "DepthAdvisor",
    "FrequencyEstimator",
    "PeerAceState",
    "StepReport",
    "ClosureView",
    "neighbor_closure",
    "NeighborCostTable",
    "build_cost_table",
    "SpanningTree",
    "prim_mst",
    "prim_mst_heap",
    "ReplacementAction",
    "attempt_replacement",
    "CandidatePolicy",
    "RandomPolicy",
    "ClosestPolicy",
    "NaivePolicy",
    "make_policy",
    # search
    "GNUTELLA_TTL",
    "QueryPropagation",
    "QueryResult",
    "propagate",
    "run_query",
    "blind_flooding_strategy",
    "ace_strategy",
    "ace_propagate",
    "ace_query",
    "IndexCache",
    "IndexCacheStore",
    "cached_query",
    # sim
    "EventLoop",
    "PeerRecord",
    "BootstrapService",
    "ChurnModel",
    "ChurnConfig",
    "LifetimeDistribution",
    "ObjectCatalog",
    "QueryWorkload",
    "WorkloadConfig",
    # metrics
    "TrafficAccount",
    "reduction_rate",
    "SeriesCollector",
    "summarize",
    "OptimizationTradeoff",
    "optimization_rate",
    "minimal_depth_for_gain",
    # oracle
    "DelayOracle",
    "ExactOracle",
    "LandmarkOracle",
    "OracleAccuracyError",
    "OracleSpec",
    "parse_oracle_spec",
    "make_oracle",
    # extensions
    "AotoProtocol",
    "aoto_config",
    "LtmProtocol",
    "hpf_strategy",
    "LandmarkMatcher",
    # related-work search baselines
    "random_walk_query",
    "WalkResult",
    "expanding_ring_query",
    "RingResult",
    # message-level simulation
    "MessageNetwork",
    "run_message_level_query",
    # AS / two-tier substrates
    "transit_stub",
    "as_traffic_report",
    "AsTrafficReport",
    "build_two_tier",
    "two_tier_query",
    "TwoTierOverlay",
]
