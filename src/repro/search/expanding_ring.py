"""Expanding-ring search (iterative deepening; Lv et al., related work).

Instead of flooding at the full TTL immediately, the source floods at
TTL = 1, waits, and re-floods with a larger TTL until the object is found
or the TTL budget is exhausted.  It saves traffic for popular (nearby)
objects at the price of repeated partial floods for rare ones — and like
every flooding variant it multiplies the cost of a mismatched overlay,
which is why it composes with (rather than substitutes for) ACE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.overlay import Overlay
from .batch import RingPropagator
from .flooding import ForwardingStrategy

__all__ = ["RingResult", "expanding_ring_query", "DEFAULT_TTL_SCHEDULE"]

#: The classic iterative-deepening schedule.
DEFAULT_TTL_SCHEDULE: Tuple[int, ...] = (1, 2, 4, 7)


@dataclass(frozen=True)
class RingResult:
    """Outcome of an expanding-ring query."""

    source: int
    rounds: int
    ttl_used: Optional[int]
    traffic_cost: float
    messages: int
    reached: Set[int]
    holders_reached: Tuple[int, ...]
    first_response_time: Optional[float]

    @property
    def search_scope(self) -> int:
        """Peers reached by the final (largest) ring."""
        return len(self.reached)

    @property
    def success(self) -> bool:
        """Whether any holder was found within the TTL budget."""
        return self.first_response_time is not None


def expanding_ring_query(
    overlay: Overlay,
    source: int,
    strategy: ForwardingStrategy,
    holders: Iterable[int],
    ttl_schedule: Sequence[int] = DEFAULT_TTL_SCHEDULE,
    round_trip_wait: float = 0.0,
) -> RingResult:
    """Run an expanding-ring search.

    Each round floods with the next TTL of *ttl_schedule*; the search stops
    at the first round that reaches a holder.  Traffic accumulates across
    rounds (early rings are re-flooded).  The response time of the
    successful round is offset by the elapsed wall time of the failed
    rounds: each failed ring costs its own full round-trip diameter plus
    *round_trip_wait* of timer slack.

    All rings share one :class:`~repro.search.batch.RingPropagator` — the
    compiled forwarding graph and the batched label solve are computed once
    and each ring only re-applies its own TTL gate.  Once a ring *saturates*
    (no reached peer sits exactly at the TTL boundary, so no forwarding was
    suppressed), every deeper ring is provably identical and is reused
    without recomputation.
    """
    if not ttl_schedule:
        raise ValueError("ttl_schedule must not be empty")
    if list(ttl_schedule) != sorted(set(ttl_schedule)):
        raise ValueError("ttl_schedule must be strictly increasing")
    holder_set = {h for h in holders if h != source}

    propagator = RingPropagator(overlay, source, strategy)
    total_traffic = 0.0
    total_messages = 0
    elapsed = 0.0
    prop = None
    saturated = False
    for round_idx, ttl in enumerate(ttl_schedule, start=1):
        if prop is None or not saturated:
            prop = propagator.propagate(ttl)
            # Saturated: every reached peer still had TTL budget left, so a
            # deeper ring delivers the same messages at the same times.
            saturated = all(h < ttl for h in prop.hops.values())
        total_traffic += prop.traffic_cost
        total_messages += prop.messages
        found = [h for h in holder_set if h in prop.arrival_time]
        if found:
            first = min(2.0 * prop.arrival_time[h] for h in found)
            return RingResult(
                source=source,
                rounds=round_idx,
                ttl_used=ttl,
                traffic_cost=total_traffic,
                messages=total_messages,
                reached=prop.reached,
                holders_reached=tuple(sorted(found)),
                first_response_time=elapsed + first,
            )
        # Failed ring: the source waits out the ring's worst-case round
        # trip before deepening.
        ring_diameter = max(prop.arrival_time.values(), default=0.0)
        elapsed += 2.0 * ring_diameter + round_trip_wait
    return RingResult(
        source=source,
        rounds=len(ttl_schedule),
        ttl_used=None,
        traffic_cost=total_traffic,
        messages=total_messages,
        reached=prop.reached if prop is not None else {source},
        holders_reached=(),
        first_response_time=None,
    )
