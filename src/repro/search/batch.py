"""Compiled forwarding graphs + vectorized multi-source query propagation.

The scalar engine (:func:`repro.search.flooding.propagate`) simulates one
query at a time with a Python heap — exact, general, and the dominant cost of
every evaluation arm once the delay hot path is warm.  This module removes
that last scalar loop for the two strategies the figures actually measure:

1. A **strategy compiler** (:func:`compile_strategy`) lowers a
   :data:`~repro.search.flooding.ForwardingStrategy` into a
   :class:`CompiledGraph`: a CSR adjacency over the live peers whose row
   order *is* the strategy's iteration order.  Blind flooding compiles the
   overlay edge set once per :attr:`Overlay.epoch
   <repro.topology.overlay.Overlay.epoch>`; ACE tree routing compiles each
   relay's ``flooding_neighbors`` set into a *directed* CSR keyed by
   ``(overlay.epoch, protocol.state_version)``.  Compilation is memoized in
   per-owner weak caches, so churn/ACE mutations invalidate for free and a
   static overlay compiles exactly once.

2. A **vectorized multi-source kernel** (:func:`propagate_many`) runs the
   whole source batch at once: a single batched
   :func:`scipy.sparse.csgraph.dijkstra` for unlimited-TTL queries, or a
   hop-bounded numpy frontier-relaxation loop when a TTL applies.  Parents,
   hop counts, traffic cost and message/duplicate counts are reconstructed
   vectorially — **bit-identical** to the scalar engine (same floats, same
   counts), which the equivalence suite pins.

Exactness contract: identical results require strictly positive edge costs
(true for every generated overlay — peers are placed on distinct hosts).  A
graph containing a zero-cost edge, a non-compilable strategy, or a
``stop_at`` predicate (index caching) falls back to the scalar engine, which
remains the reference implementation.  Batching can be disabled globally
(:func:`set_batched_queries` / :func:`scalar_queries` / the
``REPRO_SCALAR_QUERIES`` environment knob, CLI ``--scalar-queries``), which
the reproducibility suite uses to pin batched == scalar byte-for-byte.

How equivalence is preserved, briefly:

* *Arrival times* — with positive costs, the scalar engine's never-forward-
  back rule cannot affect first arrivals, so they equal single-source
  Dijkstra distances over the compiled graph; both engines sum the winning
  path left-to-right in IEEE doubles.
* *Parents* — the scalar winner among equal-time arrivals is the minimum
  sender id (heap entries tie-break on ``(time, target, sender)``); the
  kernel reproduces it as the min sender over tight edges.
* *Traffic* — the scalar engine accumulates edge costs in settle order
  (source first, then reached peers by ``(arrival, peer id)``), iterating
  each peer's strategy set in Python iteration order with the parent edge
  skipped in place.  The kernel gathers CSR cost slices in exactly that
  order and reduces with a sequential ``cumsum``, matching the float sum
  term for term.
* *Messages / duplicates* — every transmission is eventually popped exactly
  once, so ``duplicates = messages - (search_scope - 1)``.
"""

from __future__ import annotations

import heapq
import os
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)
from weakref import WeakKeyDictionary

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..perf import counters
from ..topology.overlay import Overlay
from .flooding import (
    GNUTELLA_TTL,
    ForwardingStrategy,
    QueryPropagation,
    propagate,
    run_query,
)

__all__ = [
    "CompiledGraph",
    "BatchPropagation",
    "QueryStats",
    "RingPropagator",
    "compile_strategy",
    "propagate_many",
    "propagate_single",
    "run_queries",
    "batched_queries_enabled",
    "set_batched_queries",
    "scalar_queries",
]

# ---------------------------------------------------------------------------
# Batching toggle
# ---------------------------------------------------------------------------

_BATCHING = os.environ.get("REPRO_SCALAR_QUERIES", "") not in ("1", "true")


def batched_queries_enabled() -> bool:
    """Whether the high-level helpers route through the batched kernel."""
    return _BATCHING


def set_batched_queries(enabled: bool) -> bool:
    """Enable/disable batched propagation globally; returns the old value.

    Disabling forces every helper (:func:`run_queries`,
    :func:`propagate_single`, the experiment drivers) onto the scalar
    reference engine — results are identical either way; only speed changes.
    """
    global _BATCHING
    previous = _BATCHING
    _BATCHING = bool(enabled)
    return previous


@contextmanager
def scalar_queries() -> Iterator[None]:
    """Context manager running its body on the scalar reference engine."""
    previous = set_batched_queries(False)
    try:
        yield
    finally:
        set_batched_queries(previous)


# ---------------------------------------------------------------------------
# Strategy compilation
# ---------------------------------------------------------------------------


@dataclass
class CompiledGraph:
    """A forwarding strategy lowered to CSR arrays over the live peer set.

    ``targets[indptr[i]:indptr[i+1]]`` lists the forwarding targets of peer
    ``peer_ids[i]`` *in the strategy's own iteration order* (that order is
    load-bearing: traffic accounting must add edge costs exactly as the
    scalar engine does).  ``costs`` are the matching logical-link costs.
    """

    kind: str
    peer_ids: np.ndarray
    indptr: np.ndarray
    targets: np.ndarray
    costs: np.ndarray
    index: Dict[int, int]
    directed: bool

    def __post_init__(self) -> None:
        self.degrees = np.diff(self.indptr)
        #: Source index of every CSR entry (for tight-edge parent recovery).
        self.edge_src = np.repeat(
            np.arange(self.num_peers, dtype=np.int64), self.degrees
        )
        self.has_zero_cost = bool(self.costs.size) and bool(
            (self.costs <= 0.0).any()
        )
        self._matrix: Optional[csr_matrix] = None
        self._reverse: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    @property
    def num_peers(self) -> int:
        """Number of live peers the graph was compiled over."""
        return int(self.peer_ids.size)

    @property
    def supports_exact(self) -> bool:
        """Whether the kernels guarantee bit-identity with the scalar engine.

        Requires strictly positive edge costs; a zero-cost edge (two peers
        on one physical host — never produced by the generators) makes the
        scalar heap's pop order unrecoverable, so exact callers fall back.
        """
        return not self.has_zero_cost

    @property
    def matrix(self) -> csr_matrix:
        """The scipy CSR matrix view (built lazily, shared across queries)."""
        if self._matrix is None:
            n = self.num_peers
            self._matrix = csr_matrix(
                (self.costs, self.targets, self.indptr), shape=(n, n)
            )
        return self._matrix

    @property
    def reverse(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-edge CSR ``(indptr, senders, costs)``, built lazily."""
        if self._reverse is None:
            n = self.num_peers
            order = np.argsort(self.targets, kind="stable")
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.targets, minlength=n), out=indptr[1:])
            self._reverse = (indptr, self.edge_src[order], self.costs[order])
        return self._reverse

    def index_of(self, peers: Sequence[int]) -> np.ndarray:
        """Map peer ids to row indices (raises ``KeyError`` on unknowns)."""
        return np.array([self.index[p] for p in peers], dtype=np.int64)


# Weak per-owner memo caches: a compiled graph lives exactly as long as the
# overlay/protocol it describes, and is invalidated by version-key mismatch.
_FLOODING_CACHE: "WeakKeyDictionary[Overlay, Tuple[int, CompiledGraph]]" = (
    WeakKeyDictionary()
)
_ACE_CACHE: "WeakKeyDictionary[object, Tuple[Tuple[int, int], CompiledGraph]]" = (
    WeakKeyDictionary()
)


def _build_graph(
    overlay: Overlay,
    forward_sets: Iterable[Tuple[int, Iterable[int]]],
    kind: str,
    directed: bool,
) -> CompiledGraph:
    peers = overlay.peers()
    index = {p: i for i, p in enumerate(peers)}
    indptr = np.zeros(len(peers) + 1, dtype=np.int64)
    targets: List[int] = []
    costs: List[float] = []
    for i, (peer, fwd) in enumerate(forward_sets):
        fwd_list = list(fwd)
        # One batched cost lookup per row (dict hits on a warmed overlay).
        cost_map = overlay.costs_from(peer, fwd_list)
        targets.extend(index[t] for t in fwd_list)
        costs.extend(cost_map[t] for t in fwd_list)
        indptr[i + 1] = indptr[i] + len(fwd_list)
    counters.compiled_strategies += 1
    return CompiledGraph(
        kind=kind,
        peer_ids=np.array(peers, dtype=np.int64),
        indptr=indptr,
        targets=np.array(targets, dtype=np.int64),
        costs=np.array(costs, dtype=np.float64),
        index=index,
        directed=directed,
    )


def _flooding_graph(overlay: Overlay) -> CompiledGraph:
    cached = _FLOODING_CACHE.get(overlay)
    if cached is not None and cached[0] == overlay.epoch:
        return cached[1]
    epoch = overlay.epoch
    # CSR row order must equal the (sorted) order the scalar engine's
    # strategy yields at forward time — blind_flooding_strategy sorts, so
    # the compiled rows sort too.  Array-backed overlays lower their CSR
    # storage directly instead of materializing per-peer neighbor sets.
    lower = getattr(overlay, "flooding_csr", None)
    if lower is not None:
        peers, indptr, targets, costs = lower()
        index = {p: i for i, p in enumerate(peers)}
        counters.compiled_strategies += 1
        graph = CompiledGraph(
            kind="flooding",
            peer_ids=np.asarray(peers, dtype=np.int64),
            indptr=np.asarray(indptr, dtype=np.int64),
            targets=np.asarray(targets, dtype=np.int64),
            costs=np.asarray(costs, dtype=np.float64),
            index=index,
            directed=False,
        )
    else:
        graph = _build_graph(
            overlay,
            ((p, sorted(overlay.neighbors(p))) for p in overlay.peers()),
            kind="flooding",
            directed=False,
        )
    _FLOODING_CACHE[overlay] = (epoch, graph)
    return graph


def _ace_graph(overlay: Overlay, protocol: object) -> CompiledGraph:
    key = (overlay.epoch, protocol.state_version)  # type: ignore[attr-defined]
    cached = _ACE_CACHE.get(protocol)
    if cached is not None and cached[0] == key:
        return cached[1]
    # Sorted rows: ace_strategy sorts flooding_neighbors() at forward time,
    # so the compiled CSR rows must sort the same way.
    flooding_neighbors = protocol.flooding_neighbors  # type: ignore[attr-defined]
    graph = _build_graph(
        overlay,
        ((p, sorted(flooding_neighbors(p))) for p in overlay.peers()),
        kind="ace",
        directed=True,
    )
    _ACE_CACHE[protocol] = (key, graph)
    return graph


def compile_strategy(
    overlay: Overlay, strategy: ForwardingStrategy
) -> Optional[CompiledGraph]:
    """Lower *strategy* to a :class:`CompiledGraph`, or ``None``.

    Only strategies that declare a ``compiled_spec`` attribute — the
    closures returned by :func:`~repro.search.flooding.blind_flooding_strategy`
    and :func:`~repro.search.tree_routing.ace_strategy` — are compilable,
    and only against the overlay they were built for.  Results are memoized
    per owner and invalidated by epoch/state-version mismatch.
    """
    spec = getattr(strategy, "compiled_spec", None)
    if spec is None:
        return None
    kind, owner = spec
    if kind == "flooding":
        if owner is not overlay:
            return None
        return _flooding_graph(overlay)
    if kind == "ace":
        if getattr(owner, "overlay", None) is not overlay:
            return None
        return _ace_graph(overlay, owner)
    return None


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _csr_slices(
    graph: CompiledGraph, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat CSR entry indices for *rows*, plus each entry's row repeat map.

    Returns ``(flat, owner)`` where ``graph.targets[flat]`` walks the rows'
    adjacency lists in order and ``owner[k]`` is the position in *rows* that
    entry ``k`` belongs to.
    """
    lengths = graph.degrees[rows]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    starts = graph.indptr[rows]
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    flat = np.repeat(starts, lengths) + offsets
    owner = np.repeat(np.arange(rows.size, dtype=np.int64), lengths)
    return flat, owner


def _first_per_key(
    key: np.ndarray, *tiebreak: np.ndarray
) -> np.ndarray:
    """Indices selecting, per distinct *key*, the lex-min tiebreak entry."""
    order = np.lexsort(tuple(reversed(tiebreak)) + (key,))
    sorted_keys = key[order]
    first = np.ones(sorted_keys.size, dtype=bool)
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return order[first]


def _dijkstra_labels(
    graph: CompiledGraph, src_idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unlimited-TTL labels via one batched scipy Dijkstra.

    Returns ``(dist, parent, hops)`` with shape ``(len(src_idx), n)``;
    ``parent``/``hops`` are ``-1`` off the reached set and at the source
    (``hops`` is 0 there).
    """
    n = graph.num_peers
    dist = dijkstra(graph.matrix, directed=True, indices=src_idx)
    dist = np.atleast_2d(dist)

    # Parent = minimum sender over tight edges (dist[u] + c == dist[v]),
    # matching the scalar heap's (time, target, sender) pop order.
    e_src, e_dst, e_cost = graph.edge_src, graph.targets, graph.costs
    du = dist[:, e_src]
    cand = np.isfinite(du)
    np.logical_and(cand, du + e_cost[None, :] == dist[:, e_dst], out=cand)
    rows, eidx = np.nonzero(cand)
    parent = np.full(dist.shape, -1, dtype=np.int64)
    if rows.size:
        vs = e_dst[eidx]
        sel = _first_per_key(rows * n + vs, e_src[eidx])
        parent[rows[sel], vs[sel]] = e_src[eidx][sel]

    # Hops by pointer doubling over the parent forest (roots self-loop).
    identity = np.arange(n, dtype=np.int64)
    jump = np.where(parent >= 0, parent, identity[None, :])
    hops = (parent >= 0).astype(np.int64)
    while True:
        nxt = np.take_along_axis(jump, jump, axis=1)
        if np.array_equal(nxt, jump):
            break
        hops += np.take_along_axis(hops, jump, axis=1)
        jump = nxt
    hops[~np.isfinite(dist)] = -1
    return dist, parent, hops


def _gate_row(
    graph: CompiledGraph,
    dist_row: np.ndarray,
    parent_row: np.ndarray,
    hops_row: np.ndarray,
    ttl: int,
) -> None:
    """Repair one row of unbounded labels into exact hop-bounded labels.

    The TTL gate only suppresses forwarding by peers whose *winning* arrival
    used ``ttl`` hops, so (by induction in settle order) every peer whose
    unbounded hop count is ``<= ttl`` keeps its unbounded label unchanged.
    Only the *fringe* — peers with unbounded hops ``> ttl`` — can move: they
    are re-settled by a small exact heap simulation seeded with the messages
    the frozen interior forwards across the boundary, forwarding onward
    among fringe peers only.  The fringe is empty for well-connected
    overlays at Gnutella TTLs, and the simulation visits only delivered
    messages, so this costs far less than a full scalar propagate.
    """
    finite = np.isfinite(dist_row)
    fringe = finite & (hops_row > ttl)
    if not fringe.any():
        return
    rev_indptr, rev_src, rev_cost = graph.reverse
    fringe_idx = np.flatnonzero(fringe)
    lengths = rev_indptr[fringe_idx + 1] - rev_indptr[fringe_idx]
    total = int(lengths.sum())
    heap: List[Tuple[float, int, int, int]] = []
    if total:
        starts = rev_indptr[fringe_idx]
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        flat = np.repeat(starts, lengths) + offsets
        senders = rev_src[flat]
        vv = np.repeat(fringe_idx, lengths)
        # Boundary messages: reached interior peers within the gate forward
        # into the fringe, never back to their own parent.
        ok = (
            finite[senders]
            & ~fringe[senders]
            & (hops_row[senders] < ttl)
            & (parent_row[senders] != vv)
        )
        senders, vv = senders[ok], vv[ok]
        times = dist_row[senders] + rev_cost[flat][ok]
        heap = list(
            zip(
                times.tolist(),
                vv.tolist(),
                senders.tolist(),
                (hops_row[senders] + 1).tolist(),
            )
        )
        heapq.heapify(heap)
    dist_row[fringe_idx] = np.inf
    parent_row[fringe_idx] = -1
    hops_row[fringe_idx] = -1
    indptr, targets, costs = graph.indptr, graph.targets, graph.costs
    while heap:
        t, v, sender, h = heapq.heappop(heap)
        if np.isfinite(dist_row[v]):
            continue  # duplicate; counts are recomputed from final labels
        dist_row[v] = t
        parent_row[v] = sender
        hops_row[v] = h
        counters.frontier_rounds += 1
        if h >= ttl:
            continue
        for k in range(int(indptr[v]), int(indptr[v + 1])):
            w = int(targets[k])
            if w == sender or not fringe[w] or np.isfinite(dist_row[w]):
                continue
            heapq.heappush(heap, (t + float(costs[k]), w, v, h + 1))


def _gated_labels(
    graph: CompiledGraph, src_idx: np.ndarray, ttl: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact hop-bounded labels: batched Dijkstra + per-row fringe repair."""
    dist, parent, hops = _dijkstra_labels(graph, src_idx)
    for r in range(dist.shape[0]):
        _gate_row(graph, dist[r], parent[r], hops[r], ttl)
    return dist, parent, hops


def _roundwise_labels(
    graph: CompiledGraph, src_idx: np.ndarray, ttl: Optional[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hop-bounded labels via round-based frontier relaxation.

    The fallback kernel for graphs containing zero-cost edges (which the
    scipy path cannot represent): each round settles, per source row, every
    unsettled peer whose tentative arrival equals the row minimum, then
    relaxes the out-edges of newly settled peers that are still within TTL.
    Tentative labels keep the lexicographically smallest ``(arrival,
    sender)`` pair, which is the scalar tie-break.
    """
    n = graph.num_peers
    S = src_idx.size
    dist = np.full((S, n), np.inf)
    parent = np.full((S, n), -1, dtype=np.int64)
    hops = np.full((S, n), -1, dtype=np.int64)
    settled = np.zeros((S, n), dtype=bool)
    row_ids = np.arange(S)
    dist[row_ids, src_idx] = 0.0
    hops[row_ids, src_idx] = 0

    while True:
        tentative = np.where(settled, np.inf, dist)
        frontier_time = tentative.min(axis=1)
        if not np.isfinite(frontier_time).any():
            break
        counters.frontier_rounds += 1
        newly = (
            ~settled
            & np.isfinite(dist)
            & (dist == frontier_time[:, None])
        )
        settled |= newly
        forwarders = newly if ttl is None else newly & (hops < ttl)
        f_rows, f_nodes = np.nonzero(forwarders)
        if f_rows.size == 0:
            continue
        flat, owner = _csr_slices(graph, f_nodes)
        if flat.size == 0:
            continue
        rr = f_rows[owner]
        uu = f_nodes[owner]
        vv = graph.targets[flat]
        arrival = dist[rr, uu] + graph.costs[flat]
        new_hops = hops[rr, uu] + 1
        # Senders' parents are already settled, so updating only unsettled
        # targets reproduces the never-forward-back rule for labels.
        open_target = ~settled[rr, vv]
        rr, uu, vv = rr[open_target], uu[open_target], vv[open_target]
        arrival, new_hops = arrival[open_target], new_hops[open_target]
        if rr.size == 0:
            continue
        sel = _first_per_key(rr * n + vv, arrival, uu)
        rr, uu, vv = rr[sel], uu[sel], vv[sel]
        arrival, new_hops = arrival[sel], new_hops[sel]
        current = dist[rr, vv]
        current_parent = parent[rr, vv]
        better = (arrival < current) | (
            (arrival == current) & (uu < current_parent)
        )
        rr, uu, vv = rr[better], uu[better], vv[better]
        dist[rr, vv] = arrival[better]
        parent[rr, vv] = uu
        hops[rr, vv] = new_hops[better]
    return dist, parent, hops


def _account_row(
    graph: CompiledGraph,
    dist_row: np.ndarray,
    parent_row: np.ndarray,
    hops_row: np.ndarray,
    ttl: Optional[int],
) -> Tuple[int, float, int]:
    """(messages, traffic, duplicates) for one query, in scalar float order.

    Forwarders are visited in settle order — the source first (arrival 0 is
    the unique minimum), then by ``(arrival, peer id)`` — each contributing
    its CSR cost slice with the edge back to its parent masked out in place.
    The sequential ``cumsum`` reduction reproduces the scalar engine's
    left-to-right float accumulation exactly.
    """
    reached = np.flatnonzero(np.isfinite(dist_row))
    order = np.lexsort((reached, dist_row[reached]))
    forwarders = reached[order]
    if ttl is not None:
        forwarders = forwarders[hops_row[forwarders] < ttl]
    flat, owner = _csr_slices(graph, forwarders)
    if flat.size == 0:
        return 0, 0.0, 0
    keep = graph.targets[flat] != parent_row[forwarders[owner]]
    kept_costs = graph.costs[flat][keep]
    messages = int(kept_costs.size)
    traffic = float(np.cumsum(kept_costs)[-1]) if messages else 0.0
    # Every pushed message pops exactly once: either it settles a peer
    # (scope - 1 of those) or it is counted as a duplicate.
    return messages, traffic, messages - (int(reached.size) - 1)


# ---------------------------------------------------------------------------
# Batched propagation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryStats:
    """Search-quality summary of one batched query (cf. ``QueryResult``)."""

    source: int
    traffic_cost: float
    search_scope: int
    holders_reached: Tuple[int, ...]
    first_response_time: Optional[float]

    @property
    def success(self) -> bool:
        """Whether any object holder was reached."""
        return self.first_response_time is not None


class BatchPropagation:
    """Column-oriented record of a whole batch of query propagations.

    Per-query views are materialized lazily: :meth:`stats` answers the
    experiment metrics straight from the arrays, :meth:`result` rebuilds a
    full scalar-compatible :class:`~repro.search.flooding.QueryPropagation`.
    """

    def __init__(
        self,
        graph: CompiledGraph,
        sources: List[int],
        ttl: Optional[int],
        dist: np.ndarray,
        parent: np.ndarray,
        hops: np.ndarray,
        messages: np.ndarray,
        traffic: np.ndarray,
        duplicates: np.ndarray,
    ) -> None:
        self.graph = graph
        self.sources = sources
        self.ttl = ttl
        self.dist = dist
        self.parent = parent
        self.hops = hops
        self.messages = messages
        self.traffic = traffic
        self.duplicates = duplicates

    def __len__(self) -> int:
        return len(self.sources)

    def search_scope(self, i: int) -> int:
        """Number of peers reached by query *i*."""
        return int(np.isfinite(self.dist[i]).sum())

    def stats(self, i: int, holders: Iterable[int]) -> QueryStats:
        """Evaluate query *i* against an object's holders (no dict build)."""
        source = self.sources[i]
        dist_row = self.dist[i]
        index = self.graph.index
        reached_holders: List[int] = []
        first: Optional[float] = None
        for h in holders:
            if h == source:
                continue
            j = index.get(h)
            if j is None:
                continue
            t = dist_row[j]
            if not np.isfinite(t):
                continue
            reached_holders.append(h)
            response = 2.0 * float(t)
            if first is None or response < first:
                first = response
        return QueryStats(
            source=source,
            traffic_cost=float(self.traffic[i]),
            search_scope=self.search_scope(i),
            holders_reached=tuple(sorted(reached_holders)),
            first_response_time=first,
        )

    def result(self, i: int) -> QueryPropagation:
        """Materialize query *i* as a scalar-identical ``QueryPropagation``."""
        prop = QueryPropagation(source=self.sources[i])
        ids = self.graph.peer_ids
        dist_row, parent_row, hops_row = (
            self.dist[i],
            self.parent[i],
            self.hops[i],
        )
        for j in np.flatnonzero(np.isfinite(dist_row)):
            peer = int(ids[j])
            prop.arrival_time[peer] = float(dist_row[j])
            prop.hops[peer] = int(hops_row[j])
            if parent_row[j] >= 0:
                prop.parent[peer] = int(ids[parent_row[j]])
        prop.traffic_cost = float(self.traffic[i])
        prop.messages = int(self.messages[i])
        prop.duplicate_messages = int(self.duplicates[i])
        return prop


def propagate_many(
    overlay: Overlay,
    sources: Sequence[int],
    strategy: ForwardingStrategy,
    ttl: Optional[int] = GNUTELLA_TTL,
    graph: Optional[CompiledGraph] = None,
    chunk_size: int = 256,
) -> BatchPropagation:
    """Propagate one query per source through the compiled strategy graph.

    The batch shares one compiled CSR graph and runs source rows *chunk_size*
    at a time to bound the working set.  ``ttl=None`` takes the batched
    scipy-Dijkstra path; an integer TTL runs the frontier kernel.  Raises
    ``ValueError`` for strategies :func:`compile_strategy` cannot lower (use
    the scalar engine for those) and ``KeyError`` for unknown sources.

    Results are bit-identical to the scalar engine whenever
    :attr:`CompiledGraph.supports_exact` holds (always, for generated
    overlays); exactness-critical callers like :func:`run_queries` check the
    flag and fall back themselves.
    """
    if graph is None:
        graph = compile_strategy(overlay, strategy)
        if graph is None:
            raise ValueError(
                "strategy is not compilable; use the scalar propagate()"
            )
    for s in sources:
        if not overlay.has_peer(s):
            raise KeyError(f"peer {s} not in overlay")
    started = perf_counter()
    source_list = [int(s) for s in sources]
    src_idx = graph.index_of(source_list)
    n = graph.num_peers
    S = src_idx.size

    dist = np.empty((S, n))
    parent = np.empty((S, n), dtype=np.int64)
    hops = np.empty((S, n), dtype=np.int64)
    for start in range(0, S, chunk_size):
        chunk = src_idx[start : start + chunk_size]
        if graph.has_zero_cost:
            d, p, h = _roundwise_labels(graph, chunk, ttl)
        elif ttl is None:
            d, p, h = _dijkstra_labels(graph, chunk)
        else:
            d, p, h = _gated_labels(graph, chunk, ttl)
        dist[start : start + chunk_size] = d
        parent[start : start + chunk_size] = p
        hops[start : start + chunk_size] = h

    messages = np.zeros(S, dtype=np.int64)
    traffic = np.zeros(S)
    duplicates = np.zeros(S, dtype=np.int64)
    for i in range(S):
        messages[i], traffic[i], duplicates[i] = _account_row(
            graph, dist[i], parent[i], hops[i], ttl
        )

    counters.batched_queries += S
    counters.queries += S
    counters.query_seconds += perf_counter() - started
    return BatchPropagation(
        graph=graph,
        sources=source_list,
        ttl=ttl,
        dist=dist,
        parent=parent,
        hops=hops,
        messages=messages,
        traffic=traffic,
        duplicates=duplicates,
    )


# ---------------------------------------------------------------------------
# High-level helpers (scalar fallback built in)
# ---------------------------------------------------------------------------


def _exact_graph(
    overlay: Overlay, strategy: ForwardingStrategy
) -> Optional[CompiledGraph]:
    """The compiled graph when batching may replace the scalar engine."""
    if not _BATCHING:
        return None
    graph = compile_strategy(overlay, strategy)
    if graph is None or not graph.supports_exact:
        return None
    return graph


def propagate_single(
    overlay: Overlay,
    source: int,
    strategy: ForwardingStrategy,
    ttl: Optional[int] = GNUTELLA_TTL,
    graph: Optional[CompiledGraph] = None,
) -> QueryPropagation:
    """Drop-in :func:`~repro.search.flooding.propagate` on the fast path.

    Uses the batched kernel (sharing the epoch-memoized compiled graph)
    when the strategy compiles and exactness holds; falls back to the
    scalar engine otherwise.  Always returns a full ``QueryPropagation``.
    """
    if graph is None:
        graph = _exact_graph(overlay, strategy)
    if graph is None:
        return propagate(overlay, source, strategy, ttl=ttl)
    return propagate_many(
        overlay, [source], strategy, ttl=ttl, graph=graph
    ).result(0)


class RingPropagator:
    """Shared propagation state for expanding-ring (iterative deepening).

    The rings of one expanding-ring search differ only in TTL, so the
    compiled graph *and* the batched unbounded-label solve are computed once
    and each ring merely re-runs the cheap fringe repair
    (:func:`_gate_row`) plus accounting against its own TTL.  Falls back to
    the scalar engine per ring when the strategy does not compile exactly.
    """

    def __init__(
        self, overlay: Overlay, source: int, strategy: ForwardingStrategy
    ) -> None:
        self._overlay = overlay
        self._source = source
        self._strategy = strategy
        self._graph = _exact_graph(overlay, strategy)
        self._base: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def propagate(self, ttl: Optional[int]) -> QueryPropagation:
        """One ring's full propagation record at the given TTL."""
        graph = self._graph
        if graph is None:
            return propagate(self._overlay, self._source, self._strategy, ttl=ttl)
        if not self._overlay.has_peer(self._source):
            raise KeyError(f"peer {self._source} not in overlay")
        started = perf_counter()
        if self._base is None:
            self._base = _dijkstra_labels(graph, graph.index_of([self._source]))
        dist, parent, hops = (a.copy() for a in self._base)
        if ttl is not None:
            _gate_row(graph, dist[0], parent[0], hops[0], ttl)
        messages, traffic, duplicates = _account_row(
            graph, dist[0], parent[0], hops[0], ttl
        )
        counters.batched_queries += 1
        counters.queries += 1
        counters.query_seconds += perf_counter() - started
        return BatchPropagation(
            graph=graph,
            sources=[self._source],
            ttl=ttl,
            dist=dist,
            parent=parent,
            hops=hops,
            messages=np.array([messages], dtype=np.int64),
            traffic=np.array([traffic]),
            duplicates=np.array([duplicates], dtype=np.int64),
        ).result(0)


def run_queries(
    overlay: Overlay,
    strategy: ForwardingStrategy,
    queries: Sequence[Tuple[int, Iterable[int]]],
    ttl: Optional[int] = GNUTELLA_TTL,
) -> List[QueryStats]:
    """Evaluate a batch of ``(source, holders)`` queries in one shot.

    The experiment drivers' entry point: one compiled graph, one vectorized
    kernel invocation, light per-query stats (no per-peer dicts).  Strategies
    the compiler cannot lower — custom closures, ``stop_at`` flows — are
    answered by looping the scalar :func:`~repro.search.flooding.run_query`,
    with identical numbers.
    """
    query_list = list(queries)
    graph = _exact_graph(overlay, strategy)
    if graph is None:
        out: List[QueryStats] = []
        for source, holders in query_list:
            result = run_query(overlay, source, strategy, holders, ttl=ttl)
            out.append(
                QueryStats(
                    source=source,
                    traffic_cost=result.traffic_cost,
                    search_scope=result.search_scope,
                    holders_reached=result.holders_reached,
                    first_response_time=result.first_response_time,
                )
            )
        return out
    batch = propagate_many(
        overlay,
        [source for source, _ in query_list],
        strategy,
        ttl=ttl,
        graph=graph,
    )
    return [
        batch.stats(i, holders)
        for i, (_, holders) in enumerate(query_list)
    ]
