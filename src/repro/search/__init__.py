"""Search mechanisms over the overlay.

* :mod:`~repro.search.flooding` — the blind-flooding baseline and the shared
  query-propagation engine.
* :mod:`~repro.search.tree_routing` — ACE multicast-tree query routing.
* :mod:`~repro.search.caching` — the response index caching extension.
* :mod:`~repro.search.batch` — compiled forwarding graphs and the
  vectorized multi-source propagation kernel.
"""

from .batch import (
    BatchPropagation,
    CompiledGraph,
    QueryStats,
    RingPropagator,
    batched_queries_enabled,
    compile_strategy,
    propagate_many,
    propagate_single,
    run_queries,
    scalar_queries,
    set_batched_queries,
)
from .caching import IndexCache, IndexCacheStore, cached_query
from .expanding_ring import (
    DEFAULT_TTL_SCHEDULE,
    RingResult,
    expanding_ring_query,
)
from .random_walk import WalkResult, random_walk_query
from .flooding import (
    GNUTELLA_TTL,
    ForwardingStrategy,
    QueryPropagation,
    QueryResult,
    blind_flooding_strategy,
    propagate,
    run_query,
)
from .tree_routing import ace_propagate, ace_query, ace_strategy

__all__ = [
    "GNUTELLA_TTL",
    "ForwardingStrategy",
    "QueryPropagation",
    "QueryResult",
    "propagate",
    "run_query",
    "blind_flooding_strategy",
    "ace_strategy",
    "ace_propagate",
    "ace_query",
    "IndexCache",
    "IndexCacheStore",
    "cached_query",
    "WalkResult",
    "random_walk_query",
    "RingResult",
    "expanding_ring_query",
    "DEFAULT_TTL_SCHEDULE",
    "BatchPropagation",
    "CompiledGraph",
    "QueryStats",
    "RingPropagator",
    "batched_queries_enabled",
    "compile_strategy",
    "propagate_many",
    "propagate_single",
    "run_queries",
    "scalar_queries",
    "set_batched_queries",
]
