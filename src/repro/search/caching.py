"""Response index caching combined with ACE (paper Section 5.2).

"In a dynamic P2P environment, we simulate ACE employed together with other
approaches, such as response index caching ... using a 100-item size cache at
each peer, ACE with index cache will reduce 75% of the traffic cost and 70%
of the response time."

The scheme is the transparent query/index caching of the related work
([14, 22] in the paper): when a response (QueryHit) travels back along the
inverse query path, every relay caches the (object -> holder) index; a later
query arriving at a peer with a cache hit is answered from the cache and not
forwarded further, cutting both traffic and response time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from ..topology.overlay import Overlay
from .flooding import ForwardingStrategy, QueryResult, propagate

__all__ = ["IndexCache", "IndexCacheStore", "cached_query"]


class IndexCache:
    """Per-peer LRU cache of object indices (object id -> holder peer)."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[object, int]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of cached indices."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: object) -> bool:
        return obj in self._entries

    def lookup(self, obj: object) -> Optional[int]:
        """Return the cached holder for *obj* (refreshing recency)."""
        holder = self._entries.get(obj)
        if holder is not None:
            self._entries.move_to_end(obj)
        return holder

    def insert(self, obj: object, holder: int) -> None:
        """Cache an index, evicting the least recently used entry if full."""
        if obj in self._entries:
            self._entries.move_to_end(obj)
        self._entries[obj] = holder
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def invalidate(self, holder: int) -> int:
        """Drop all entries pointing at *holder* (e.g. it left the system)."""
        stale = [k for k, v in self._entries.items() if v == holder]
        for k in stale:
            del self._entries[k]
        return len(stale)


class IndexCacheStore:
    """All peers' index caches, with lazy per-peer construction."""

    def __init__(self, capacity: int = 100) -> None:
        self._capacity = capacity
        self._caches: Dict[int, IndexCache] = {}

    def cache_of(self, peer: int) -> IndexCache:
        """The peer's cache (created on first use)."""
        cache = self._caches.get(peer)
        if cache is None:
            cache = IndexCache(self._capacity)
            self._caches[peer] = cache
        return cache

    def drop_peer(self, peer: int) -> None:
        """Forget a departed peer's cache."""
        self._caches.pop(peer, None)

    def invalidate_holder(self, holder: int) -> None:
        """Remove indices pointing at a departed holder from every cache."""
        for cache in self._caches.values():
            cache.invalidate(holder)


def cached_query(
    overlay: Overlay,
    source: int,
    obj: object,
    holders: Iterable[int],
    strategy: ForwardingStrategy,
    caches: IndexCacheStore,
    ttl: Optional[int] = None,
) -> QueryResult:
    """Run one query with transparent index caching.

    A peer whose cache holds a *live* index for *obj* answers the query and
    stops forwarding it.  After the query, every relay on the first
    responder's reverse path learns the index.
    """
    holder_set = {h for h in holders if overlay.has_peer(h)}

    def cache_hit(peer: int) -> bool:
        cached = caches.cache_of(peer).lookup(obj)
        return cached is not None and overlay.has_peer(cached)

    prop = propagate(overlay, source, strategy, ttl=ttl, stop_at=cache_hit)

    # A responder is a real holder or a peer with a live cached index.
    responses = []  # (response_time, holder)
    for peer, t in prop.arrival_time.items():
        if peer == source:
            continue
        if peer in holder_set:
            responses.append((2.0 * t, peer))
        else:
            cached = caches.cache_of(peer).lookup(obj)
            if cached is not None and overlay.has_peer(cached):
                responses.append((2.0 * t, cached))
    responses.sort()
    first = responses[0][0] if responses else None

    # Index dissemination: relays on the first response's reverse path cache
    # the holder (including the source, which may re-query later).
    if responses:
        first_time, holder = responses[0]
        responder = next(
            (p for p, t in prop.arrival_time.items() if 2.0 * t == first_time),
            None,
        )
        if responder is not None:
            for relay in prop.path_to(responder):
                if relay != holder:
                    caches.cache_of(relay).insert(obj, holder)

    reached_holders = tuple(sorted(h for h in holder_set if h in prop.arrival_time and h != source))
    return QueryResult(
        propagation=prop,
        holders_reached=reached_holders,
        first_response_time=first,
    )
