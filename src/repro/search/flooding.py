"""Query propagation: blind flooding and the generic forwarding engine.

The paper's baseline (Section 3.1) is Gnutella's "blind flooding": a query is
broadcast and rebroadcast; a peer forwards the query to all logical neighbors
except the one it came from, and drops copies it has already seen.  Every
transmission — including one into a peer that drops it as a duplicate —
consumes the underlay resources of that logical hop, which is exactly the
redundant traffic the paper sets out to remove.

:func:`propagate` is the shared engine: it takes a *forwarding strategy*
(blind flooding, ACE tree routing, a cache-aware wrapper, ...) and simulates
the query's spread in arrival-time order, charging

* ``traffic_cost`` — Σ over transmissions of the logical hop cost (the
  underlay shortest-path delay, the unit of the paper's Tables 1-2), and
* per-peer ``arrival_time`` — earliest delivery time along overlay paths,

so that search scope, traffic cost and response time (Section 4.2's metrics)
all fall out of one simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..perf import counters
from ..topology.overlay import Overlay

__all__ = [
    "ForwardingStrategy",
    "QueryPropagation",
    "QueryResult",
    "propagate",
    "blind_flooding_strategy",
    "run_query",
    "GNUTELLA_TTL",
]

#: Default Gnutella time-to-live for queries.
GNUTELLA_TTL = 7

# A strategy maps (peer, came_from) -> neighbors to forward to.  ``came_from``
# is None at the query source.  The engine never forwards back to
# ``came_from`` regardless of what the strategy returns.
ForwardingStrategy = Callable[[int, Optional[int]], Iterable[int]]


@dataclass
class QueryPropagation:
    """Full record of one query's spread through the overlay."""

    source: int
    arrival_time: Dict[int, float] = field(default_factory=dict)
    parent: Dict[int, int] = field(default_factory=dict)
    hops: Dict[int, int] = field(default_factory=dict)
    traffic_cost: float = 0.0
    messages: int = 0
    duplicate_messages: int = 0

    @property
    def reached(self) -> Set[int]:
        """All peers the query visited (the *search scope*)."""
        return set(self.arrival_time)

    @property
    def search_scope(self) -> int:
        """Number of peers reached, the paper's search-scope metric."""
        return len(self.arrival_time)

    def path_to(self, peer: int) -> List[int]:
        """The delivery path source -> peer taken by the first copy."""
        if peer not in self.arrival_time:
            raise KeyError(f"peer {peer} was not reached")
        out = [peer]
        while out[-1] != self.source:
            out.append(self.parent[out[-1]])
        out.reverse()
        return out


def propagate(
    overlay: Overlay,
    source: int,
    strategy: ForwardingStrategy,
    ttl: Optional[int] = GNUTELLA_TTL,
    stop_at: Optional[Callable[[int], bool]] = None,
) -> QueryPropagation:
    """Simulate one query spreading from *source*.

    Parameters
    ----------
    strategy:
        Which neighbors each peer forwards to (see module docstring).
    ttl:
        Maximum number of overlay hops; ``None`` means unlimited (used when
        measuring full-coverage scope, as in the paper's Figure 7 where "the
        search scope is all peers").
    stop_at:
        Optional predicate; a peer for which it returns ``True`` receives
        the query but does not forward it (used by the index-caching
        extension, where a cache hit answers the query locally).
    """
    if not overlay.has_peer(source):
        raise KeyError(f"peer {source} not in overlay")
    started = perf_counter()
    prop = QueryPropagation(source=source)
    prop.arrival_time[source] = 0.0
    prop.hops[source] = 0
    # Heap entries: (arrival_time, target, sender, hops_used)
    heap: List[Tuple[float, int, int, int]] = []

    def forward_from(peer: int, came_from: Optional[int], t: float, hops: int) -> None:
        if ttl is not None and hops >= ttl:
            return
        if stop_at is not None and peer != source and stop_at(peer):
            return
        live = overlay.neighbors(peer)
        for nbr in strategy(peer, came_from):
            if nbr == came_from or nbr == peer or nbr not in live:
                continue
            # replint: disable=REP004 — (peer, nbr) is a live logical edge:
            # on warmed overlays this is a per-edge-cache dict hit (tier-1
            # asserts zero Dijkstras here; see docs/PERFORMANCE.md).
            cost = overlay.cost(peer, nbr)
            prop.traffic_cost += cost
            prop.messages += 1
            heapq.heappush(heap, (t + cost, nbr, peer, hops + 1))

    forward_from(source, None, 0.0, 0)
    while heap:
        t, peer, sender, hops = heapq.heappop(heap)
        if peer in prop.arrival_time:
            prop.duplicate_messages += 1
            continue
        prop.arrival_time[peer] = t
        prop.parent[peer] = sender
        prop.hops[peer] = hops
        forward_from(peer, sender, t, hops)
    counters.queries += 1
    counters.query_seconds += perf_counter() - started
    return prop


def blind_flooding_strategy(overlay: Overlay) -> ForwardingStrategy:
    """The Gnutella baseline: forward to every neighbor except the sender."""

    def strategy(peer: int, came_from: Optional[int]) -> Iterable[int]:
        # Canonical (sorted) forwarding order: traffic sums are float
        # accumulations, so the iteration order must not depend on which
        # overlay engine produced the neighbor set.
        return sorted(overlay.neighbors(peer))

    # Declare the closure compilable: the batched engine can lower it to a
    # CSR forwarding graph memoized per overlay epoch (repro.search.batch).
    strategy.compiled_spec = ("flooding", overlay)  # type: ignore[attr-defined]
    return strategy


@dataclass(frozen=True)
class QueryResult:
    """Search-quality view of a propagation against a set of object holders.

    Response time follows the paper's definition: "the time period from when
    the query is issued until when the source peer received a response result
    from the first responder" — the response travels back along the inverse
    of the query path, so a holder reached at time *t* responds at ``2 t``.
    """

    propagation: QueryPropagation
    holders_reached: Tuple[int, ...]
    first_response_time: Optional[float]

    @property
    def success(self) -> bool:
        """Whether any object holder was reached."""
        return self.first_response_time is not None

    @property
    def traffic_cost(self) -> float:
        """Total query traffic in cost units."""
        return self.propagation.traffic_cost

    @property
    def search_scope(self) -> int:
        """Number of peers reached."""
        return self.propagation.search_scope


def run_query(
    overlay: Overlay,
    source: int,
    strategy: ForwardingStrategy,
    holders: Iterable[int],
    ttl: Optional[int] = GNUTELLA_TTL,
    stop_at: Optional[Callable[[int], bool]] = None,
) -> QueryResult:
    """Propagate a query and evaluate it against the object's holders."""
    prop = propagate(overlay, source, strategy, ttl=ttl, stop_at=stop_at)
    reached = [h for h in holders if h in prop.arrival_time and h != source]
    first = min((2.0 * prop.arrival_time[h] for h in reached), default=None)
    return QueryResult(
        propagation=prop,
        holders_reached=tuple(sorted(reached)),
        first_response_time=first,
    )
