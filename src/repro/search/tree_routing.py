"""ACE query routing over per-peer multicast trees (paper Section 3.3/3.4).

After Phase 2 "the message routing strategy of a peer is to select the peers
that are the direct neighbors in the multicast tree to send its queries,
instead of flooding queries to all neighbors."  Every relay applies its *own*
tree — exactly the Figure 5 mechanics, where F queries C and D, C relays to
E, and so on.

The routing never uses a connection that no longer exists: the protocol's
:meth:`~repro.core.ace.AceProtocol.flooding_neighbors` already intersects the
stored tree with the live neighbor set, and peers with no Phase-2 state yet
(fresh joiners) fall back to blind flooding, preserving the search scope.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.ace import AceProtocol
from ..topology.overlay import Overlay
from .flooding import (
    ForwardingStrategy,
    QueryPropagation,
    QueryResult,
    propagate,
    run_query,
)

__all__ = ["ace_strategy", "ace_propagate", "ace_query"]


def ace_strategy(protocol: AceProtocol) -> ForwardingStrategy:
    """Forwarding strategy that follows each relay's own overlay tree."""

    def strategy(peer: int, came_from: Optional[int]) -> Iterable[int]:
        # Canonical (sorted) forwarding order — see blind_flooding_strategy;
        # traffic sums must not depend on set iteration order.
        return sorted(protocol.flooding_neighbors(peer))

    # Declare the closure compilable: the batched engine lowers every relay's
    # flooding set into a (directed) CSR graph memoized per
    # (overlay.epoch, protocol.state_version) pair (repro.search.batch).
    strategy.compiled_spec = ("ace", protocol)  # type: ignore[attr-defined]
    return strategy


def ace_propagate(
    protocol: AceProtocol,
    source: int,
    ttl: Optional[int] = None,
) -> QueryPropagation:
    """Propagate a query from *source* using ACE tree routing.

    ``ttl=None`` (unlimited) by default: tree routing is loop-free enough
    that the paper measures full-coverage scope; pass a TTL to mimic
    deployment limits.
    """
    return propagate(protocol.overlay, source, ace_strategy(protocol), ttl=ttl)


def ace_query(
    protocol: AceProtocol,
    source: int,
    holders: Iterable[int],
    ttl: Optional[int] = None,
) -> QueryResult:
    """Run a query with ACE routing and evaluate it against *holders*."""
    return run_query(
        protocol.overlay, source, ace_strategy(protocol), holders, ttl=ttl
    )
