"""Random-walk search (Lv et al. [10], the paper's related work).

The first family of flooding alternatives the paper's Section 2 surveys
"routes queries to peers ... by some heuristics"; k-walker random walks are
the canonical representative: the source launches *k* walkers, each walker
steps to a uniformly random neighbor, and walkers terminate after a hop
budget or when enough results were found (checking back with the source is
abstracted away here).

Random walks trade response time for traffic: they touch few peers per unit
traffic but take long, meandering paths.  They are orthogonal to the
topology-mismatch problem — a walker over a mismatched overlay still pays
the full underlay cost per hop — which is exactly the paper's argument that
"the performance gains of both approaches are seriously limited by the
topology mismatching problem".  The benches combine them with ACE to show
the mismatch repair also benefits walk-based search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..topology.overlay import Overlay

__all__ = ["WalkResult", "random_walk_query"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a k-walker random-walk query."""

    source: int
    walkers: int
    reached: Set[int]
    arrival_time: Dict[int, float]
    traffic_cost: float
    messages: int
    holders_reached: Tuple[int, ...]
    first_response_time: Optional[float]

    @property
    def search_scope(self) -> int:
        """Number of distinct peers visited by any walker."""
        return len(self.reached)

    @property
    def success(self) -> bool:
        """Whether any holder was found."""
        return self.first_response_time is not None


def random_walk_query(
    overlay: Overlay,
    source: int,
    holders: Iterable[int],
    rng: np.random.Generator,
    walkers: int = 4,
    max_hops: int = 64,
    stop_on_hit: bool = True,
) -> WalkResult:
    """Run a k-walker random walk from *source*.

    Each walker performs up to *max_hops* uniform steps (avoiding immediate
    backtracking when the degree allows).  A walker that lands on a holder
    reports back along its path (response time = elapsed walk time + the
    same path back); with *stop_on_hit* the walker then terminates.
    """
    if not overlay.has_peer(source):
        raise KeyError(f"peer {source} not in overlay")
    if walkers < 1:
        raise ValueError("walkers must be >= 1")
    holder_set = {h for h in holders if h != source}

    arrival: Dict[int, float] = {source: 0.0}
    traffic = 0.0
    messages = 0
    responses: List[float] = []
    found: Set[int] = set()

    for _ in range(walkers):
        current = source
        previous: Optional[int] = None
        elapsed = 0.0
        for _hop in range(max_hops):
            nbrs = list(overlay.neighbors(current))
            if not nbrs:
                break
            if previous is not None and len(nbrs) > 1 and previous in nbrs:
                nbrs.remove(previous)
            nxt = nbrs[int(rng.integers(len(nbrs)))]
            # replint: disable=REP004 — one edge per hop, chosen by the walk
            # itself: inherently sequential, served from the edge cache.
            cost = overlay.cost(current, nxt)
            traffic += cost
            messages += 1
            elapsed += cost
            previous, current = current, nxt
            if current not in arrival or elapsed < arrival[current]:
                arrival[current] = min(arrival.get(current, elapsed), elapsed)
            if current in holder_set:
                found.add(current)
                responses.append(2.0 * elapsed)
                if stop_on_hit:
                    break
    return WalkResult(
        source=source,
        walkers=walkers,
        reached=set(arrival),
        arrival_time=arrival,
        traffic_cost=traffic,
        messages=messages,
        holders_reached=tuple(sorted(found)),
        first_response_time=min(responses) if responses else None,
    )
