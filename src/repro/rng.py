"""Deterministic randomness policy for the whole reproduction.

Every figure in the ICDCS 2004 ACE paper must come out identical run to run,
so randomness in this repository follows one rule: **generators are seeded
and threaded, never ambient**.  Functions take an optional
``np.random.Generator``; when the caller does not supply one the fallback is
*deterministic* — the fixed :data:`DEFAULT_SEED`, not OS entropy.  The old
``rng = rng or np.random.default_rng()`` fallback silently produced a
different world on every call the moment a caller forgot to thread an RNG;
``replint`` rule REP001 now rejects that pattern and :func:`ensure_rng` is
the sanctioned replacement.

Experiments that need *distinct* but reproducible streams derive them from a
:class:`numpy.random.SeedSequence` (see
:func:`repro.experiments.setup.build_scenario`) or call :func:`derive_rng`
with a stream label.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["DEFAULT_SEED", "ensure_rng", "derive_rng"]

#: Seed used whenever a caller does not thread an RNG explicitly.  Any run
#: that matters (experiments, benchmarks) threads its own seeded generator;
#: this default exists so casual calls are *still* reproducible.
DEFAULT_SEED = 0


def ensure_rng(
    rng: Optional[np.random.Generator] = None,
    seed: Union[int, np.random.SeedSequence] = DEFAULT_SEED,
) -> np.random.Generator:
    """Return *rng* unchanged, or a deterministically seeded Generator.

    The drop-in replacement for the non-reproducible
    ``rng or np.random.default_rng()`` fallback: same shape, but the
    default world is the same world every run.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def derive_rng(seed: int, stream: int = 0) -> np.random.Generator:
    """An independent generator for (seed, stream), stable across runs.

    Two streams derived from the same seed are statistically independent
    (``SeedSequence`` spawning), so one experiment can draw topology and
    workload randomness without the streams perturbing each other.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed).spawn(stream + 1)[stream])
