"""Candidate-selection policies for ACE Phase 3.

The paper's Section 6: "In our simulations, we only use random policy to
replace a non-flooding neighbor by a random selected candidate.  We are
studying several alternatives ... the naive policy simply disconnects the
source node's most expensive neighbor [and probes] some other nodes ...
The second one is closest policy in which the source will probe the costs to
all of the non-flooding neighbor's neighbors, and select the closest one."

We implement all three.  A policy answers two questions for a source peer:

* which non-flooding neighbors to try to replace, and in what order
  (:meth:`CandidatePolicy.targets`), and
* which candidate peers to probe for a given target
  (:meth:`CandidatePolicy.candidates`).

Every returned candidate is probed (a cost-unit charge accounted by the
replacement engine), so a policy's candidate count directly controls the
overhead/optimization-quality trade-off studied in Figures 13-16.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from ..topology.overlay import Overlay

__all__ = [
    "CandidatePolicy",
    "RandomPolicy",
    "ClosestPolicy",
    "NaivePolicy",
    "make_policy",
]


class CandidatePolicy(abc.ABC):
    """Strategy for picking replacement targets and candidates."""

    name: str = "abstract"

    def targets(
        self,
        overlay: Overlay,
        source: int,
        non_flooding: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Non-flooding neighbors to attempt to replace, in order.

        Default: all of them, most expensive first (the peer wants to shed
        its physically farthest connections first).
        """
        return sorted(
            non_flooding, key=lambda n: (-overlay.cost(source, n), n)
        )

    @abc.abstractmethod
    def candidates(
        self,
        overlay: Overlay,
        source: int,
        target: int,
        rng: np.random.Generator,
        limit: int,
    ) -> List[int]:
        """Ordered candidate peers to probe as replacements for *target*."""

    def _eligible(
        self, overlay: Overlay, source: int, target: int
    ) -> List[int]:
        """Target's neighbors that could become new neighbors of *source*."""
        exclude: Set[int] = set(overlay.neighbors(source))
        exclude.add(source)
        return sorted(n for n in overlay.neighbors(target) if n not in exclude)


class RandomPolicy(CandidatePolicy):
    """The paper's evaluated policy: probe random neighbors of the target."""

    name = "random"

    def candidates(
        self,
        overlay: Overlay,
        source: int,
        target: int,
        rng: np.random.Generator,
        limit: int,
    ) -> List[int]:
        """Up to *limit* uniformly random eligible neighbors of *target*."""
        pool = self._eligible(overlay, source, target)
        if not pool:
            return []
        k = min(limit, len(pool))
        idx = rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in idx]


class ClosestPolicy(CandidatePolicy):
    """Probe *all* of the target's neighbors; try the closest first.

    More probes (higher overhead) but the best replacement quality — the
    second future-work policy of Section 6.
    """

    name = "closest"

    def candidates(
        self,
        overlay: Overlay,
        source: int,
        target: int,
        rng: np.random.Generator,
        limit: int,
    ) -> List[int]:
        """The whole eligible pool, cheapest (from *source*) first."""
        pool = self._eligible(overlay, source, target)
        pool.sort(key=lambda h: (overlay.cost(source, h), h))
        # The engine charges a probe per returned candidate; "closest" pays
        # for the whole pool even though it tries the best one first.
        return pool

    def probes_charged(self, overlay: Overlay, source: int, target: int) -> List[int]:
        """All peers probed regardless of which candidate is tried."""
        return self._eligible(overlay, source, target)


class NaivePolicy(CandidatePolicy):
    """Cut the most expensive neighbor; probe random peers anywhere.

    Section 6's first future-work policy: not restricted to the target's
    neighborhood, so it explores globally but with no locality guidance.
    """

    name = "naive"

    def targets(
        self,
        overlay: Overlay,
        source: int,
        non_flooding: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Only the single most expensive non-flooding neighbor."""
        if not non_flooding:
            return []
        worst = max(non_flooding, key=lambda n: (overlay.cost(source, n), n))
        return [worst]

    def candidates(
        self,
        overlay: Overlay,
        source: int,
        target: int,
        rng: np.random.Generator,
        limit: int,
    ) -> List[int]:
        """Random peers from anywhere in the overlay (no locality)."""
        exclude: Set[int] = set(overlay.neighbors(source))
        exclude.add(source)
        pool = [p for p in overlay.peers() if p not in exclude]
        if not pool:
            return []
        k = min(limit, len(pool))
        idx = rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in idx]


_POLICIES = {
    RandomPolicy.name: RandomPolicy,
    ClosestPolicy.name: ClosestPolicy,
    NaivePolicy.name: NaivePolicy,
}


def make_policy(spec) -> CandidatePolicy:
    """Resolve a policy name or instance to a :class:`CandidatePolicy`."""
    if isinstance(spec, CandidatePolicy):
        return spec
    try:
        return _POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown policy {spec!r}; choose from {sorted(_POLICIES)}"
        ) from None
