"""Adaptive closure-depth selection — the paper's Section 5.3 program.

"For a given P2P network topology, if the frequency of the topology and
cost changes and query frequency can be measured so that R is determined,
we should be able to adjust the value of h to achieve optimal gain/penalty
ratio."  The paper measures the trade-off curves; this module closes the
loop it proposes:

* :class:`DepthAdvisor` answers the offline question — given a measured
  trade-off sweep (Figures 11-12) and a frequency ratio R, which depth
  maximizes the optimization rate, and which is the *minimal* profitable
  depth;
* :class:`FrequencyEstimator` measures R online from observed query and
  topology-change events (exponentially weighted rates);
* :class:`AdaptiveAceProtocol` runs ACE while re-tuning its closure depth
  between steps from the estimator's R and the advisor's tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.optimization import OptimizationTradeoff
from ..topology.overlay import Overlay
from .ace import AceConfig, AceProtocol, StepReport

__all__ = ["DepthAdvisor", "FrequencyEstimator", "AdaptiveAceProtocol"]


class DepthAdvisor:
    """Choose closure depths from a measured (depth -> trade-off) table."""

    def __init__(self, tradeoffs: Sequence[OptimizationTradeoff]) -> None:
        if not tradeoffs:
            raise ValueError("need at least one trade-off measurement")
        self._by_depth: Dict[int, OptimizationTradeoff] = {}
        for t in tradeoffs:
            self._by_depth[t.depth] = t

    @property
    def depths(self) -> List[int]:
        """Depths covered by the measurements."""
        return sorted(self._by_depth)

    def rate_at(self, depth: int, frequency_ratio: float) -> float:
        """Optimization rate of one measured depth at the given R."""
        return self._by_depth[depth].rate(frequency_ratio)

    def best_depth(self, frequency_ratio: float) -> Tuple[int, float]:
        """The depth maximizing the optimization rate at R (ties: shallower)."""
        best = min(
            self.depths,
            key=lambda h: (-self.rate_at(h, frequency_ratio), h),
        )
        return best, self.rate_at(best, frequency_ratio)

    def minimal_profitable_depth(self, frequency_ratio: float) -> Optional[int]:
        """Smallest depth with rate > 1, or ``None`` (ACE not worth running)."""
        for h in self.depths:
            if self.rate_at(h, frequency_ratio) > 1.0:
                return h
        return None

    def recommend(self, frequency_ratio: float) -> Optional[int]:
        """The depth to run: the best one, provided it is profitable."""
        best, rate = self.best_depth(frequency_ratio)
        return best if rate > 1.0 else None


class FrequencyEstimator:
    """Online estimate of R = query frequency / cost-change frequency.

    Rates are exponentially weighted counts per unit time; both event
    streams share the clock the caller supplies.  Until both streams have
    been observed the estimate falls back to *default_ratio*.
    """

    def __init__(self, half_life: float = 300.0, default_ratio: float = 1.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self.default_ratio = default_ratio
        self._decay = math.log(2.0) / half_life
        self._query_rate = 0.0
        self._change_rate = 0.0
        self._last_time: Optional[float] = None

    def _advance(self, now: float) -> None:
        if self._last_time is None:
            self._last_time = now
            return
        dt = max(0.0, now - self._last_time)
        factor = math.exp(-self._decay * dt)
        self._query_rate *= factor
        self._change_rate *= factor
        self._last_time = now

    def observe_query(self, now: float, count: int = 1) -> None:
        """Record *count* issued queries at time *now*."""
        self._advance(now)
        self._query_rate += count * self._decay

    def observe_change(self, now: float, count: int = 1) -> None:
        """Record *count* cost-information changes (joins, leaves, rewires)."""
        self._advance(now)
        self._change_rate += count * self._decay

    @property
    def frequency_ratio(self) -> float:
        """Current R estimate (``default_ratio`` until both streams seen)."""
        if self._query_rate <= 0.0 or self._change_rate <= 0.0:
            return self.default_ratio
        return self._query_rate / self._change_rate


class AdaptiveAceProtocol(AceProtocol):
    """ACE that re-tunes its closure depth from the measured R.

    Before each step the protocol asks the advisor for the best depth at
    the estimator's current R (clamped to the advisor's measured range) and
    rebuilds its configuration if the recommendation changed.  When no
    depth is profitable it *parks* — Phases 1-3 are skipped entirely (the
    paper: "ACE is worth to use only if the gain/penalty ratio is larger
    than 1") and only trees are kept fresh.
    """

    def __init__(
        self,
        overlay: Overlay,
        advisor: DepthAdvisor,
        estimator: Optional[FrequencyEstimator] = None,
        config: Optional[AceConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(overlay, config, rng=rng)
        self.advisor = advisor
        self.estimator = estimator or FrequencyEstimator()
        self.depth_history: List[int] = []
        self.parked_steps = 0

    def step(self, peers=None) -> StepReport:
        """One optimization round at the advisor-recommended depth."""
        ratio = self.estimator.frequency_ratio
        recommendation = self.advisor.recommend(ratio)
        if recommendation is None:
            # Not profitable at this R: keep routing state fresh, skip the
            # expensive phases.
            self.parked_steps += 1
            self.rebuild_all_trees()
            report = StepReport(step_index=self.steps_run)
            self._steps_run += 1
            return report
        if recommendation != self.config.depth:
            self.config = replace(self.config, depth=recommendation)
        self.depth_history.append(recommendation)
        return super().step(peers=peers)
