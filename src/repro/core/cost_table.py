"""Neighbor cost tables (ACE Phase 1).

"Each peer probes the costs with its immediate logical neighbors and forms a
neighbor cost table.  Two neighboring peers exchange their neighbor cost
tables so that a peer can obtain the cost between any pair of its logical
neighbors."  (Paper Section 3.3, Phase 1.)

The probing traffic and the table-exchange traffic are *overhead* in the
paper's accounting (they appear in Figure 12 and in the dynamic-environment
traffic of Figure 9), so this module also computes the cost-unit overhead of
one Phase-1 round over an h-neighbor closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..topology.overlay import Overlay
from .closure import ClosureView

__all__ = [
    "NeighborCostTable",
    "build_cost_table",
    "probe_overhead",
    "exchange_overhead",
    "Phase1Report",
    "run_phase1",
]


@dataclass(frozen=True)
class NeighborCostTable:
    """A peer's probed costs to each of its direct logical neighbors."""

    owner: int
    costs: Mapping[int, float]

    @property
    def size(self) -> int:
        """Number of entries (== the owner's logical degree when probed)."""
        return len(self.costs)

    def cost_to(self, neighbor: int) -> float:
        """Probed cost to a direct neighbor (``KeyError`` if absent)."""
        return self.costs[neighbor]


def build_cost_table(overlay: Overlay, peer: int) -> NeighborCostTable:
    """Probe all direct neighbors of *peer* and form its cost table."""
    # Sorted probe order: probe_overhead() sums the table values in dict
    # (insertion) order, so the order must be canonical across overlay
    # engines for the float totals to be engine-independent.
    costs = overlay.costs_from(peer, sorted(overlay.neighbors(peer)))
    return NeighborCostTable(owner=peer, costs=dict(costs))


def probe_overhead(table: NeighborCostTable, round_trip_factor: float = 2.0) -> float:
    """Traffic cost of probing every entry of a cost table.

    A probe is a ping/pong exchange over the logical link, so each entry
    costs ``round_trip_factor * link_cost`` cost units.
    """
    return round_trip_factor * sum(table.costs.values())


def exchange_overhead(
    closure: ClosureView,
    tables: Mapping[int, NeighborCostTable],
    entry_cost_factor: float = 0.02,
) -> float:
    """Traffic cost of disseminating cost tables across a closure.

    The paper's added routing message type carries neighbor cost tables
    between neighbors.  A deployment exchanges them *aggregated*: once per
    optimization period each peer sends every direct neighbor one routing
    message bundling all the closure link records it knows (its own table
    plus the relayed tables of peers up to ``depth - 1`` hops away).  The
    source's per-period share is therefore one message per incident logical
    link, sized by the closure's information content:

    ``sum_over_neighbors d(S, N) * (1 + entry_cost_factor * E(h))``

    where ``E(h)`` is the number of link records in the source's h-neighbor
    closure.  For ``depth == 1`` this reduces to each neighbor sending its
    own table over its direct link — the paper's base protocol — and for
    larger depths the overhead grows with the closure's edge count
    (geometrically in C, matching Figure 12) while staying entry-dominated
    rather than message-dominated.
    """
    entries = closure.num_edges()
    per_message_factor = 1.0 + entry_cost_factor * entries
    direct = closure.edges.get(closure.source, {})
    return per_message_factor * sum(direct.values())


@dataclass(frozen=True)
class Phase1Report:
    """Outcome of one Phase-1 round at a single peer."""

    source: int
    tables: Mapping[int, NeighborCostTable]
    probe_cost: float
    exchange_cost: float

    @property
    def total_overhead(self) -> float:
        """Probing plus table-exchange traffic, in cost units."""
        return self.probe_cost + self.exchange_cost


def run_phase1(
    overlay: Overlay,
    closure: ClosureView,
    round_trip_factor: float = 2.0,
    entry_cost_factor: float = 0.02,
) -> Phase1Report:
    """Execute Phase 1 for the closure's source peer.

    Builds the cost table of every closure member (they all probe their own
    neighbors) and accounts the overhead the *source's* optimization incurs:
    its own probes plus the dissemination of member tables to it.

    Member probes are exactly logical-edge costs, so the overlay's bulk
    edge-cost warm (one batched underlay solve for everything missing) runs
    first; the per-member table builds below then hit the cache.
    """
    overlay.warm_edge_costs()
    tables: Dict[int, NeighborCostTable] = {
        m: build_cost_table(overlay, m) for m in closure.members
    }
    own_probe = probe_overhead(tables[closure.source], round_trip_factor)
    exch = exchange_overhead(closure, tables, entry_cost_factor)
    return Phase1Report(
        source=closure.source,
        tables=tables,
        probe_cost=own_probe,
        exchange_cost=exch,
    )
