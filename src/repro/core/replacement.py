"""Neighbor replacement — ACE Phase 3 (paper Section 3.3, Figure 4).

A source peer S examines a non-flooding neighbor C and probes a candidate H
drawn from C's neighbor list.  With d(x, y) the probed cost:

* **Figure 4(b)** — ``d(S,H) < d(S,C)``: S establishes S-H and cuts S-C.
  C keeps H, so connectivity is preserved (S-H-C replaces S-C).
* **Figure 4(c)** — ``d(S,C) <= d(S,H) < d(C,H)``: S establishes S-H but
  keeps C; the redundant long link C-H is expected to be shed later by C's
  own optimization once H turns non-flooding for C.
* **Figure 4(d)** — otherwise: nothing changes; S keeps probing other
  candidates of C (up to the configured probe budget).

Each probe is a ping/pong over the (potential) logical link and is charged
``round_trip_factor * d(S,H)`` cost units of overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..topology.overlay import Overlay
from .policies import CandidatePolicy

__all__ = ["ReplacementAction", "attempt_replacement"]


@dataclass(frozen=True)
class ReplacementAction:
    """Outcome of one Phase-3 attempt for a (source, target) pair.

    ``kind`` is one of:

    * ``"replace"`` — Figure 4(b): new link to ``candidate``, link to
      ``target`` cut.
    * ``"keep_both"`` — Figure 4(c): new link to ``candidate``, ``target``
      kept.
    * ``"none"`` — Figure 4(d) for every probed candidate, or no candidates.
    """

    kind: str
    source: int
    target: int
    candidate: Optional[int]
    probes: int
    probe_cost: float


def attempt_replacement(
    overlay: Overlay,
    source: int,
    target: int,
    policy: CandidatePolicy,
    rng: np.random.Generator,
    max_probes: int = 1,
    round_trip_factor: float = 2.0,
    max_degree: Optional[int] = None,
    min_degree: int = 1,
    allow_keep_both: bool = True,
) -> ReplacementAction:
    """Run Phase 3 for one non-flooding neighbor of *source*.

    Parameters
    ----------
    max_probes:
        Probe budget per target (the paper's random policy probes one
        candidate; the closest policy probes the whole neighbor list).
    max_degree:
        If set, a Figure 4(c) "keep both" addition is skipped when it would
        push *source* above this logical degree (the replacement of 4(b) is
        degree-neutral and always allowed).
    min_degree:
        A cut is skipped when it would drop the *target* below this degree
        (defensive guard; Figure 4(b) already guarantees the target keeps
        the candidate as a neighbor).
    allow_keep_both:
        When ``False`` the Figure 4(c) branch is disabled — the behaviour of
        the AOTO precursor, which only ever swaps connections.
    """
    if not overlay.has_edge(source, target):
        return ReplacementAction("none", source, target, None, 0, 0.0)

    candidates = policy.candidates(overlay, source, target, rng, max_probes)
    if not candidates:
        return ReplacementAction("none", source, target, None, 0, 0.0)

    d_sc = overlay.cost(source, target)
    probes = 0
    probe_cost = 0.0

    # All source-rooted probe costs come from one batched sweep: the same
    # underlay vector serves the charged pool and every candidate below.
    d_src = overlay.costs_from(source, list(candidates))

    # The closest policy pays for probing the full eligible pool up front.
    charged = getattr(policy, "probes_charged", None)
    if charged is not None:
        pool = charged(overlay, source, target)
        probes = len(pool)
        pool_costs = overlay.costs_from(source, pool)
        probe_cost = round_trip_factor * sum(pool_costs[h] for h in pool)

    # Target-rooted costs are only needed on the keep-both branch; solved
    # lazily (one batched sweep) the first time a candidate reaches it.
    d_tgt = None

    tried = 0
    for cand in candidates:
        if tried >= max_probes and charged is None:
            break
        tried += 1
        d_sh = d_src[cand]
        if charged is None:
            probes += 1
            probe_cost += round_trip_factor * d_sh

        if d_sh < d_sc:
            # Figure 4(b): strictly closer — replace the far neighbor.
            if overlay.degree(target) - 1 >= min_degree or overlay.has_edge(
                target, cand
            ):
                overlay.connect(source, cand)
                overlay.disconnect(source, target)
                return ReplacementAction(
                    "replace", source, target, cand, probes, probe_cost
                )
            continue

        if d_tgt is None:
            d_tgt = overlay.costs_from(target, list(candidates))
        d_ch = d_tgt[cand]
        if allow_keep_both and d_sh < d_ch:
            # Figure 4(c): farther than C, but closer than the C-H link —
            # establish S-H and keep C; C is expected to shed C-H later.
            if max_degree is not None and overlay.degree(source) >= max_degree:
                continue
            overlay.connect(source, cand)
            return ReplacementAction(
                "keep_both", source, target, cand, probes, probe_cost
            )
        # Figure 4(d): keep probing.

    return ReplacementAction("none", source, target, None, probes, probe_cost)
