"""ACE — Adaptive Connection Establishment (the paper's core contribution).

:class:`AceProtocol` drives the three phases at every peer:

* **Phase 1** (:mod:`repro.core.cost_table`): probe direct-neighbor costs and
  exchange neighbor cost tables across the h-neighbor closure.
* **Phase 2** (:mod:`repro.core.spanning_tree`): build a minimum spanning
  tree over the closure's known subgraph; the source's tree-adjacent peers
  become its *flooding neighbors*, every other direct neighbor becomes
  *non-flooding* (kept connected, tables still exchanged, candidate for
  replacement).
* **Phase 3** (:mod:`repro.core.replacement`): probe candidates from
  non-flooding neighbors' neighbor lists and adaptively establish/cut
  connections per Figure 4.

The protocol is fully distributed in the paper; here one ``step()`` executes
one optimization round at every live peer, in random order, with all
overhead (probes and table exchanges) accounted in cost units so that the
optimization-rate experiments (Figures 11-16) can weigh gain against penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..perf import counters
from ..rng import ensure_rng
from ..topology.overlay import Overlay
from ..topology.soa import ArrayOverlay
from .batch_ace import batched_ace_enabled, batched_step
from .closure import ClosureView, neighbor_closure
from .cost_table import Phase1Report, run_phase1
from .flat_state import FlatAceStore
from .policies import CandidatePolicy, make_policy
from .replacement import ReplacementAction, attempt_replacement
from .spanning_tree import SpanningTree, prim_mst_heap

__all__ = ["AceConfig", "PeerAceState", "StepReport", "AceProtocol"]


@dataclass(frozen=True)
class AceConfig:
    """Tunable parameters of the ACE protocol.

    Attributes
    ----------
    depth:
        The *h* of the h-neighbor closure (paper Section 3.4).  ``1`` is the
        base protocol; larger values trade overhead for optimization rate.
    policy:
        Phase-3 candidate policy: ``"random"`` (the paper's evaluated
        choice), ``"closest"``, ``"naive"``, or a
        :class:`~repro.core.policies.CandidatePolicy` instance.
    max_probes_per_target:
        Probe budget per non-flooding neighbor per step.
    max_targets_per_step:
        How many non-flooding neighbors a peer tries to replace per step
        (``None`` = all).
    max_degree:
        Cap on logical degree for Figure 4(c) additions (``None`` = none).
    min_degree:
        A peer never cuts a link that would leave the other endpoint below
        this degree unless the replacement preserves its connectivity.
    round_trip_factor:
        Cost multiplier for one probe (ping + pong).
    entry_cost_factor:
        Per-table-entry cost factor for cost-table exchange messages.
    allow_keep_both:
        Enables the Figure 4(c) branch; ``False`` reproduces the AOTO
        precursor (swap-only optimization).
    shed_redundant:
        Enables the cut that closes the Figure 4(c) story: a peer sheds a
        non-flooding link that is strictly the longest side of a logical
        triangle (both endpoints remain connected through the third peer).
        This is how the C-H link of Figure 4(c) eventually disappears —
        "node C will try to find another peer to replace H" once H turns
        non-flooding — keeping the logical degree stable instead of growing
        with every keep-both addition.
    max_sheds_per_step:
        Per-peer cap on redundant-link cuts per optimization step; keeps the
        topology change gradual (the distributed protocol only re-examines
        one connection per periodic round).
    shed_degree_floor:
        Shedding never drops an endpoint below this logical degree, so it
        trims only the *excess* connections that keep-both additions create
        — a Gnutella servent maintains its configured connection count.
        ``None`` (default) uses the overlay's average degree at protocol
        construction.
    """

    depth: int = 1
    policy: object = "random"
    max_probes_per_target: int = 1
    max_targets_per_step: Optional[int] = None
    max_degree: Optional[int] = None
    min_degree: int = 2
    round_trip_factor: float = 2.0
    entry_cost_factor: float = 0.02
    allow_keep_both: bool = True
    shed_redundant: bool = True
    max_sheds_per_step: int = 1
    shed_degree_floor: Optional[int] = None

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.max_probes_per_target < 1:
            raise ValueError("max_probes_per_target must be >= 1")


@dataclass(frozen=True)
class PeerAceState:
    """Per-peer protocol state after Phases 1-2.

    ``known_neighbors`` records the direct neighbor set at tree-build time so
    routing can detect staleness: a neighbor gained since then must be
    flooded to (it is not covered by the tree), and a lost *flooding*
    neighbor breaks the tree entirely.

    ``tree`` is ``None`` when the state was materialized from the flat
    array store (:class:`~repro.core.flat_state.FlatAceStore`), which keeps
    only the membership sets the protocol actually routes on.
    """

    peer: int
    tree: Optional[SpanningTree]
    flooding: FrozenSet[int]
    non_flooding: FrozenSet[int]
    known_neighbors: FrozenSet[int]
    closure_size: int
    closure_edges: int


@dataclass
class StepReport:
    """Aggregate outcome of one optimization step across all peers."""

    step_index: int
    peers_optimized: int = 0
    probe_overhead: float = 0.0
    exchange_overhead: float = 0.0
    replacement_probe_overhead: float = 0.0
    replacements: int = 0
    keep_both_adds: int = 0
    redundant_sheds: int = 0
    probes: int = 0

    @property
    def total_overhead(self) -> float:
        """All Phase 1-3 traffic of the step, in cost units."""
        return (
            self.probe_overhead
            + self.exchange_overhead
            + self.replacement_probe_overhead
        )


class AceProtocol:
    """Run ACE over a (mutable) overlay.

    The protocol object owns per-peer state (trees, flooding sets) and keeps
    it consistent across overlay mutations and churn via
    :meth:`handle_peer_joined` / :meth:`handle_peer_left`.
    """

    def __init__(
        self,
        overlay: Overlay,
        config: Optional[AceConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.overlay = overlay
        self.config = config or AceConfig()
        self.rng = ensure_rng(rng)
        self._policy: CandidatePolicy = make_policy(self.config.policy)
        self._states: Dict[int, PeerAceState] = {}
        # Array-backed overlays pair with the flat ACE-state store: the same
        # membership/closure facts in struct-of-arrays form instead of one
        # frozen dataclass per peer.  Routing semantics are identical.
        self._flat: Optional[FlatAceStore] = (
            FlatAceStore() if isinstance(overlay, ArrayOverlay) else None
        )
        self._state_version = 0
        self._steps_run = 0
        #: Phase-3 actions of the most recent step, for diagnostics and the
        #: kernel-equivalence tests (both step paths populate it).
        self.last_actions: List[ReplacementAction] = []
        # Closure reuse cache, keyed on (overlay.epoch, config.depth): depth
        # is frozen per protocol, so one epoch stamp suffices.  refresh_peer
        # and recompute_tree on an unmutated overlay share one extraction.
        self._closure_cache: Dict[int, ClosureView] = {}
        self._closure_epoch = -1
        if self.config.shed_degree_floor is not None:
            self._shed_floor = max(self.config.min_degree, self.config.shed_degree_floor)
        else:
            avg = overlay.average_degree() if overlay.num_peers else 0.0
            self._shed_floor = max(self.config.min_degree, int(round(avg)))

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def policy(self) -> CandidatePolicy:
        """The Phase-3 candidate policy in use."""
        return self._policy

    @property
    def steps_run(self) -> int:
        """Number of completed optimization steps."""
        return self._steps_run

    @property
    def state_version(self) -> int:
        """Monotone version of the per-peer routing state.

        Bumped whenever a peer's Phase-2 state is stored or dropped, so the
        routing decided by :meth:`flooding_neighbors` can only change when
        either this version or the overlay's ``epoch`` moves.  The compiled
        ACE forwarding graph (:mod:`repro.search.batch`) keys its cache on
        the ``(overlay.epoch, state_version)`` pair.
        """
        return self._state_version

    @property
    def flat_store(self) -> Optional[FlatAceStore]:
        """The struct-of-arrays state store (``None`` on the object engine)."""
        return self._flat

    def state_of(self, peer: int) -> Optional[PeerAceState]:
        """The peer's Phase-2 state, or ``None`` if not yet computed.

        In flat-store mode the state is materialized on demand from the
        membership arrays (``tree`` is ``None`` — only the sets survive).
        """
        if self._flat is not None:
            if peer not in self._flat:
                return None
            flooding = self._flat.flooding_of(peer)
            known = self._flat.known_of(peer)
            return PeerAceState(
                peer=peer,
                tree=None,
                flooding=flooding,
                non_flooding=known - flooding,
                known_neighbors=known,
                closure_size=self._flat.closure_size_of(peer),
                closure_edges=self._flat.closure_edges_of(peer),
            )
        return self._states.get(peer)

    def flooding_neighbors(self, peer: int) -> Set[int]:
        """The neighbors a peer forwards queries to *right now*.

        A peer that has not yet run Phase 2 (e.g. it just joined) floods to
        all its neighbors — the Gnutella default.  Routing degrades safely
        against stale state:

        * a *flooding* neighbor that disappeared breaks the tree, so the
          peer falls back to flooding all live neighbors until its next
          Phase 2 (in the real protocol the peer notices the dropped TCP
          connection immediately);
        * neighbors gained since the tree was built are not covered by it
          and are flooded to in addition to the tree neighbors.
        """
        live = set(self.overlay.neighbors(peer))
        if self._flat is not None:
            if peer not in self._flat:
                return live
            flooding = self._flat.flooding_of(peer)
            if not flooding <= live:
                return live
            return set(flooding) | (live - self._flat.known_of(peer))
        state = self._states.get(peer)
        if state is None:
            return live
        if not state.flooding <= live:
            return live
        new_links = live - state.known_neighbors
        return set(state.flooding) | new_links

    def non_flooding_neighbors(self, peer: int) -> Set[int]:
        """Live direct neighbors currently classified as non-flooding."""
        return set(self.overlay.neighbors(peer)) - self.flooding_neighbors(peer)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _closure_of(self, peer: int) -> ClosureView:
        """The peer's current closure, shared between refresh and recompute.

        Cached per ``(overlay.epoch, depth)`` — depth is frozen, so the
        epoch stamp alone keys it; any structural mutation bumps the epoch
        and flushes the cache.  At a fixed epoch a re-extraction returns an
        identical :class:`ClosureView` (same members, same dict orders,
        same cached cost floats), so reuse cannot change a single byte —
        it only saves the end-of-step ``recompute_tree`` sweep from
        re-deriving every closure ``refresh_peer`` just built.
        """
        epoch = self.overlay.epoch
        if epoch != self._closure_epoch:
            self._closure_cache.clear()
            self._closure_epoch = epoch
        cached = self._closure_cache.get(peer)
        if cached is not None:
            counters.closure_reuses += 1
            return cached
        closure = neighbor_closure(self.overlay, peer, self.config.depth)
        self._closure_cache[peer] = closure
        return closure

    def refresh_peer(self, peer: int) -> Tuple[PeerAceState, Phase1Report]:
        """Run Phases 1-2 for one peer and store its new state."""
        closure = self._closure_of(peer)
        phase1 = run_phase1(
            self.overlay,
            closure,
            round_trip_factor=self.config.round_trip_factor,
            entry_cost_factor=self.config.entry_cost_factor,
        )
        state = self._store_state(peer, closure)
        return state, phase1

    def _store_state(self, peer: int, closure: ClosureView) -> PeerAceState:
        tree = prim_mst_heap(closure.edges, peer)
        flooding = frozenset(tree.tree_neighbors(peer))
        known = frozenset(self.overlay.neighbors(peer))
        non_flooding = known - flooding
        state = PeerAceState(
            peer=peer,
            tree=tree,
            flooding=flooding,
            non_flooding=non_flooding,
            known_neighbors=known,
            closure_size=closure.size,
            closure_edges=closure.num_edges(),
        )
        if self._flat is not None:
            self._flat.put(
                peer, flooding, known, closure.size, closure.num_edges()
            )
        else:
            self._states[peer] = state
        self._state_version += 1
        return state

    def recompute_tree(self, peer: int) -> PeerAceState:
        """Phase 2 only: rebuild the peer's tree without Phase-1 accounting.

        Used by the simulator to bring routing state up to date after other
        peers mutated the topology; in the real protocol this information
        arrives through the periodic table exchanges already charged.
        """
        closure = self._closure_of(peer)
        return self._store_state(peer, closure)

    def _put_flat(
        self,
        peer: int,
        flooding: Sequence[int],
        known: Sequence[int],
        closure_size: int,
        closure_edges: int,
    ) -> None:
        """Store a kernel-computed peer state straight into the flat store.

        The batched kernel's write seam: no ``PeerAceState`` or tree object
        is materialized, but the version contract is the reference's — one
        bump per stored peer (the sanitizer wraps this like
        ``_store_state``).
        """
        assert self._flat is not None
        self._flat.put(peer, flooding, known, closure_size, closure_edges)
        self._state_version += 1

    def _bump_state_version(self) -> None:
        """Advance the state version without rewriting a row.

        Used by the kernel's rebuild phase when a peer's stored state is
        provably identical to what a recompute would produce — the version
        trajectory still matches the reference loop bump for bump.
        """
        self._state_version += 1

    def _bump_steps(self) -> None:
        """Mark one optimization step as completed (kernel epilogue)."""
        self._steps_run += 1

    def shed_redundant_links(self, peer: int, non_flooding: Sequence[int]) -> int:
        """Cut non-flooding links that a logical triangle makes redundant.

        A link (peer, H) is shed when some mutual neighbor W makes it
        strictly the longest side of the triangle peer-W-H: both endpoints
        keep the W route, so connectivity and search scope are preserved
        while the most expensive redundant connection disappears (the Figure
        1 L-M situation, and the eventual fate of C-H in Figure 4(c)).
        Degree floors are respected on both endpoints.
        """
        return len(self._shed_redundant(peer, non_flooding))

    def _shed_redundant(self, peer: int, non_flooding: Sequence[int]) -> List[int]:
        """:meth:`shed_redundant_links`, returning the cut targets.

        The batched kernel needs the endpoints of every mid-step mutation
        for its closure staleness test, so the single implementation lives
        here and the public method reports the count.
        """
        sheds: List[int] = []
        my_neighbors = self.overlay.neighbors(peer)
        # One batched sweep covers every peer-rooted cost this phase needs
        # (targets and mutual witnesses alike); shedding only removes edges,
        # so the precomputed costs stay valid for the whole loop.
        d_peer = self.overlay.costs_from(
            peer, sorted(set(non_flooding) | set(my_neighbors))
        )
        # Most expensive candidates first: with a per-step cap, the worst
        # redundant connection goes first.
        ordered = sorted(non_flooding, key=lambda t: (-d_peer[t], t))
        for target in ordered:
            if len(sheds) >= self.config.max_sheds_per_step:
                break
            if not self.overlay.has_edge(peer, target):
                continue
            if (
                self.overlay.degree(peer) <= self._shed_floor
                or self.overlay.degree(target) <= self._shed_floor
            ):
                continue
            d_pt = d_peer[target]
            # Re-fetch the peer's neighbor set: earlier sheds in this loop
            # mutate the overlay, and engines are free to return snapshots
            # (ArrayOverlay) rather than a live set (object Overlay).
            mutual = self.overlay.neighbors(peer) & self.overlay.neighbors(target)
            if not mutual:
                continue
            d_target = self.overlay.costs_from(target, sorted(mutual))
            for w in mutual:
                if d_peer[w] < d_pt and d_target[w] < d_pt:
                    self.overlay.disconnect(peer, target)
                    sheds.append(target)
                    break
        return sheds

    def optimize_peer(self, peer: int, report: StepReport) -> List[ReplacementAction]:
        """Run Phases 1-3 for one peer, accumulating into *report*."""
        state, phase1 = self.refresh_peer(peer)
        report.peers_optimized += 1
        report.probe_overhead += phase1.probe_cost
        report.exchange_overhead += phase1.exchange_cost

        non_flooding = sorted(state.non_flooding)
        if self.config.shed_redundant:
            shed = self.shed_redundant_links(peer, non_flooding)
            report.redundant_sheds += shed
            if shed:
                non_flooding = [
                    t for t in non_flooding if self.overlay.has_edge(peer, t)
                ]

        targets = self._policy.targets(
            self.overlay, peer, non_flooding, self.rng
        )
        if self.config.max_targets_per_step is not None:
            targets = targets[: self.config.max_targets_per_step]

        actions: List[ReplacementAction] = []
        for target in targets:
            if not self.overlay.has_edge(peer, target):
                continue  # cut by another peer since Phase 2
            action = attempt_replacement(
                self.overlay,
                peer,
                target,
                self._policy,
                self.rng,
                max_probes=self.config.max_probes_per_target,
                round_trip_factor=self.config.round_trip_factor,
                max_degree=self.config.max_degree,
                min_degree=self.config.min_degree,
                allow_keep_both=self.config.allow_keep_both,
            )
            actions.append(action)
            report.probes += action.probes
            report.replacement_probe_overhead += action.probe_cost
            if action.kind == "replace":
                report.replacements += 1
            elif action.kind == "keep_both":
                report.keep_both_adds += 1
        return actions

    def step(self, peers: Optional[Sequence[int]] = None) -> StepReport:
        """One optimization step: every (given) peer runs Phases 1-3 once.

        Peers execute in random order, mirroring the asynchronous
        independent execution of the distributed protocol.  Returns the
        aggregated :class:`StepReport`.

        On the array engine the step runs through the vectorized kernel
        (:mod:`repro.core.batch_ace`) unless batching is disabled — the
        scalar loop below is the byte-identical reference either way.
        """
        if self._flat is not None and batched_ace_enabled():
            return batched_step(self, peers)
        if peers is None:
            peers = self.overlay.peers()
        order = list(peers)
        self.rng.shuffle(order)
        self.last_actions = []
        # Pre-warm the exact cost working set of this step in one batched
        # underlay solve: every Phase-1 probe is a logical-edge cost, so
        # bulk-filling the edge-cost cache up front turns the per-peer inner
        # loops into pure dict lookups (edges created mid-step are filled
        # lazily and swept up by the next step's warm).
        self.overlay.warm_edge_costs()
        report = StepReport(step_index=self._steps_run)
        if self._flat is not None:
            # Array engine: prefetch each upcoming block's source delay
            # vectors in one batched underlay solve, so the per-peer
            # candidate probes below hit the distance LRU instead of each
            # paying a scalar Dijkstra.  Warming only populates caches —
            # every delivered value is unchanged — so figures stay
            # byte-identical to the object engine.
            block_size = 256
            for start in range(0, len(order), block_size):
                block = order[start : start + block_size]
                self.overlay.warm_sources(
                    [p for p in block if self.overlay.has_peer(p)]
                )
                for peer in block:
                    if not self.overlay.has_peer(peer):
                        continue
                    self.last_actions.extend(self.optimize_peer(peer, report))
        else:
            for peer in order:
                if not self.overlay.has_peer(peer):
                    continue
                self.last_actions.extend(self.optimize_peer(peer, report))
        # Re-run Phase 2 everywhere so flooding sets reflect the final
        # post-step topology (peers whose links were changed later in the
        # round would otherwise route on stale trees until their next turn).
        for peer in order:
            if self.overlay.has_peer(peer):
                self.recompute_tree(peer)
        self._steps_run += 1
        return report

    def run(self, steps: int) -> List[StepReport]:
        """Run several optimization steps; returns one report per step."""
        return [self.step() for _ in range(steps)]

    # ------------------------------------------------------------------
    # Churn hooks
    # ------------------------------------------------------------------

    def handle_peer_joined(self, peer: int) -> None:
        """Invalidate state for a (re)joining peer: it floods until Phase 2."""
        if self._flat is not None:
            if self._flat.drop(peer):
                self._state_version += 1
            return
        if self._states.pop(peer, None) is not None:
            self._state_version += 1

    def handle_peer_left(self, peer: int) -> None:
        """Drop protocol state of a departed peer."""
        if self._flat is not None:
            if self._flat.drop(peer):
                self._state_version += 1
            return
        if self._states.pop(peer, None) is not None:
            self._state_version += 1

    def rebuild_all_trees(self) -> None:
        """Recompute Phase 2 at every live peer (no Phase 3 mutations)."""
        for peer in self.overlay.peers():
            self.recompute_tree(peer)
