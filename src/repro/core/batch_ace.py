"""Vectorized ACE step kernel for the struct-of-arrays overlay engine.

PR 6 made the ACE *state* flat (:class:`~repro.topology.soa.ArrayOverlay` +
:class:`~repro.core.flat_state.FlatAceStore`) but left the optimization
inner loop — closure build, Phase-1 accounting, Prim MST, end-of-step tree
rebuild — as per-peer Python over dict-of-dict closures.  This module
replaces that loop for the array engine:

1. **Batched closure extraction** (:func:`extract_closures`): all scheduled
   peers' depth-``h`` closures are computed in one shared CSR frontier sweep
   over :meth:`ArrayOverlay.adjacency_csr` — one ``visited`` matrix, one
   vectorized neighbor gather per BFS level, per-peer segment views of the
   resulting member/edge arrays — instead of one dict-building BFS per peer.
2. **Flat Phase-1 accounting**: a peer's probe and exchange overheads reduce
   to the sequential IEEE sum of its direct-edge costs in ascending-neighbor
   order (exactly the order :func:`~repro.core.cost_table.run_phase1`'s
   dicts iterate), read straight off the peer's CSR row — no
   ``NeighborCostTable`` dicts for closure members that Phase 3 never reads.
3. **Segmented MST kernel**: Prim over each closure's packed local-index
   segment, tie-broken ``(cost, node, parent)`` exactly like
   :func:`~repro.core.spanning_tree.prim_mst_heap` (member segments are
   sorted by peer id, so local-index order is order-isomorphic to peer-id
   order), writing flooding/known memberships straight into the flat store
   without materializing ``PeerAceState`` or ``SpanningTree`` objects.
4. **A vectorized churn driver** (:func:`churn_refresh`): one churn event's
   whole mutation batch is applied to the overlay edit buffer first, the
   touched cost rows are re-warmed in a single bulk call, and the joiner
   plus all affected ex/new neighbors are re-extracted in one sweep —
   replacing the per-peer ``refresh_peer``/``recompute_tree`` chain in
   :mod:`repro.experiments.dynamic_env`.

Mid-step mutations (Phase-3 replacements, redundant-link sheds) are handled
with an exact staleness rule: a mutation can only change a peer's closure if
one of its endpoints is a closure *member* (every path of ``<= h`` hops from
the source runs through members, so an edge with both endpoints outside the
member set can neither add nor remove members or induced edges).  The kernel
tracks mutation endpoints in a dirty list; a scheduled peer whose
pre-extracted closure intersects the dirty set falls back to the scalar
reference path for that turn.  RNG draws happen peer-by-peer in the same
order as the reference loop, so the random streams — and therefore every
figure — are byte-identical.

The kernel is selected automatically when the protocol runs on an
``ArrayOverlay`` (``engine="array"``); the object-model path stays the
untouched reference.  Like PR 5's query batching it can be forced off
globally (:func:`set_batched_ace` / :func:`scalar_ace` / the
``REPRO_SCALAR_ACE`` environment knob, CLI ``--scalar-ace``), which the
equivalence suite uses to pin batched == scalar byte-for-byte.
"""

from __future__ import annotations

import heapq
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..perf import counters
from ..topology.soa import ArrayOverlay
from .closure import neighbor_closure
from .replacement import attempt_replacement

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from .ace import AceProtocol, StepReport

__all__ = [
    "batched_ace_enabled",
    "set_batched_ace",
    "scalar_ace",
    "kernel_active",
    "ClosureBatch",
    "extract_closures",
    "batched_step",
    "churn_refresh",
]

# ---------------------------------------------------------------------------
# Kernel toggle
# ---------------------------------------------------------------------------

_BATCHED = os.environ.get("REPRO_SCALAR_ACE", "") not in ("1", "true")


def batched_ace_enabled() -> bool:
    """Whether array-engine protocols route steps through the kernel."""
    return _BATCHED


def set_batched_ace(enabled: bool) -> bool:
    """Enable/disable the batched ACE kernel globally; returns the old value.

    Disabling forces :meth:`AceProtocol.step` and the dynamic churn driver
    onto the scalar reference loop — results are identical either way; only
    speed changes.
    """
    global _BATCHED
    previous = _BATCHED
    _BATCHED = bool(enabled)
    return previous


@contextmanager
def scalar_ace() -> Iterator[None]:
    """Context manager running its body on the scalar reference ACE loop."""
    previous = set_batched_ace(False)
    try:
        yield
    finally:
        set_batched_ace(previous)


def kernel_active(protocol: "AceProtocol") -> bool:
    """Whether *protocol*'s steps currently run on the batched kernel."""
    return _BATCHED and protocol.flat_store is not None


# ---------------------------------------------------------------------------
# Batched closure extraction
# ---------------------------------------------------------------------------


class ClosureBatch:
    """Depth-``h`` closures of a batch of sources, extracted in one sweep.

    Everything is computed eagerly against a single
    :meth:`ArrayOverlay.adjacency_csr` snapshot, in **peer-id space** (slot
    numbering is stable between peer additions/removals, but peer ids are
    what mutations report), so entries stay valid across mid-step edge
    mutations — validity is decided by the caller's dirty-set test, not by
    the arrays going stale.
    """

    __slots__ = (
        "sources",
        "index",
        "members",
        "member_sets",
        "direct",
        "direct_costs",
        "probe_sum",
        "closure_edges",
        "flooding",
    )

    def __init__(self) -> None:
        #: Sources in extraction order.
        self.sources: List[int] = []
        #: peer id -> position of its entry in the per-source lists.
        self.index: Dict[int, int] = {}
        #: Closure members per source (ascending peer ids).
        self.members: List[List[int]] = []
        #: Same memberships as sets, for the dirty-intersection test.
        self.member_sets: List[frozenset] = []
        #: Direct logical neighbors per source (ascending peer ids).
        self.direct: List[List[int]] = []
        #: Matching direct-edge costs (the Phase-1 probe values).
        self.direct_costs: List[List[float]] = []
        #: Sequential left-to-right IEEE sum of ``direct_costs`` — the float
        #: both Phase-1 overhead formulas scale (same order as the dict sums
        #: in the reference, so the totals match bit for bit).
        self.probe_sum: List[float] = []
        #: Undirected edge count of each closure's induced subgraph.
        self.closure_edges: List[int] = []
        #: MST tree-neighbors of each source (ascending peer ids).
        self.flooding: List[List[int]] = []


def _prim_flooding(
    indptr: List[int], nbrs: List[int], costs: List[float], root: int
) -> List[int]:
    """Root's tree-neighbor set of Prim's MST over one local-CSR segment.

    Mirrors :func:`~repro.core.spanning_tree.prim_mst_heap` exactly: heap
    entries are ``(cost, node, parent)``, popped in global ascending order.
    Local indices are assigned in ascending-peer-id order, so every
    tie-break compares the same way it would on raw peer ids, and the
    returned set equals ``tree.tree_neighbors(root)`` of the reference.
    """
    nloc = len(indptr) - 1
    if nloc <= 1:
        return []
    in_tree = bytearray(nloc)
    in_tree[root] = 1
    heap = [
        (costs[j], nbrs[j], root) for j in range(indptr[root], indptr[root + 1])
    ]
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    flooding: List[int] = []
    added = 1
    while heap and added < nloc:
        c, v, par = pop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = 1
        added += 1
        if par == root:
            flooding.append(v)
        for j in range(indptr[v], indptr[v + 1]):
            w = nbrs[j]
            if not in_tree[w]:
                push(heap, (costs[j], w, v))
    flooding.sort()
    return flooding


#: Sources swept per shared ``visited`` matrix (bounds its memory to
#: ``_SWEEP x num_peers`` bools regardless of how many peers are scheduled).
_SWEEP = 256


def extract_closures(
    overlay: ArrayOverlay, sources: Sequence[int], depth: int
) -> ClosureBatch:
    """Extract the depth-``h`` closures of *sources* in CSR frontier sweeps.

    All sources must be live peers.  Costs are read from the warmed CSR
    (``adjacency_csr`` bulk-fills any stragglers first), so the floats are
    the exact cached values the scalar reference reads through its dicts.
    """
    batch = ClosureBatch()
    if not sources:
        return batch
    peer_arr, indptr, nbr, cost = overlay.adjacency_csr()
    n = len(peer_arr)
    src_arr = np.asarray(sources, dtype=np.int64)
    slots = np.searchsorted(peer_arr, src_arr)
    for start in range(0, len(sources), _SWEEP):
        _extract_sweep(
            batch,
            peer_arr,
            indptr,
            nbr,
            cost,
            n,
            slots[start : start + _SWEEP],
            depth,
        )
    return batch


def _extract_sweep(
    batch: ClosureBatch,
    peer_arr: np.ndarray,
    indptr: np.ndarray,
    nbr: np.ndarray,
    cost: np.ndarray,
    n: int,
    src_slots: np.ndarray,
    depth: int,
) -> None:
    nsrc = len(src_slots)
    visited = np.zeros((nsrc, n), dtype=bool)
    rows = np.arange(nsrc)
    visited[rows, src_slots] = True
    f_src = rows
    f_node = src_slots
    for _ in range(depth):
        if not len(f_node):
            break
        deg = indptr[f_node + 1] - indptr[f_node]
        total = int(deg.sum())
        if not total:
            break
        # Flat gather of every frontier node's CSR row in one shot.
        ends = np.cumsum(deg)
        eidx = np.repeat(indptr[f_node] - (ends - deg), deg) + np.arange(total)
        cand_src = np.repeat(f_src, deg)
        cand_node = nbr[eidx]
        fresh = ~visited[cand_src, cand_node]
        cand_src = cand_src[fresh]
        cand_node = cand_node[fresh]
        if len(cand_src):
            # Dedup (source, node) pairs discovered via several frontier
            # nodes in the same level, or the expansion grows multiplicatively.
            key = cand_src * np.int64(n) + cand_node
            _, first = np.unique(key, return_index=True)
            cand_src = cand_src[first]
            cand_node = cand_node[first]
            visited[cand_src, cand_node] = True
        f_src, f_node = cand_src, cand_node

    # Members: nonzero of the row-major visited matrix is grouped by source
    # and ascending in slot (== ascending peer id) within each group.
    m_src, m_slot = np.nonzero(visited)
    m_off = np.zeros(nsrc + 1, dtype=np.int64)
    np.cumsum(np.bincount(m_src, minlength=nsrc), out=m_off[1:])

    # Induced edges: every member's full CSR row, filtered to members of the
    # same source.  Rows are gathered in (source, member) order, so each
    # segment is grouped by ascending local u with ascending v inside a row.
    deg = indptr[m_slot + 1] - indptr[m_slot]
    total = int(deg.sum())
    if total:
        ends = np.cumsum(deg)
        eidx = np.repeat(indptr[m_slot] - (ends - deg), deg) + np.arange(total)
        e_src = np.repeat(m_src, deg)
        e_u = np.repeat(m_slot, deg)
        e_v = nbr[eidx]
        e_c = cost[eidx]
        keep = visited[e_src, e_v]
        e_src = e_src[keep]
        e_u = e_u[keep]
        e_v = e_v[keep]
        e_c = e_c[keep]
    else:  # isolated sources only
        e_src = np.empty(0, dtype=np.int64)
        e_u = e_v = e_src
        e_c = np.empty(0, dtype=np.float64)
    e_off = np.zeros(nsrc + 1, dtype=np.int64)
    np.cumsum(np.bincount(e_src, minlength=nsrc), out=e_off[1:])

    for b in range(nsrc):
        s = int(src_slots[b])
        source = int(peer_arr[s])
        m_seg = m_slot[m_off[b] : m_off[b + 1]]
        members = peer_arr[m_seg].tolist()
        # Direct neighbors are the source's own CSR row (always closure
        # members at depth >= 1), already ascending.
        r0, r1 = int(indptr[s]), int(indptr[s + 1])
        direct = peer_arr[nbr[r0:r1]].tolist()
        direct_costs = cost[r0:r1].tolist()
        probe_sum = 0.0
        for c in direct_costs:
            probe_sum += c
        # Local-index CSR of the induced subgraph for the Prim kernel.
        es, ee = int(e_off[b]), int(e_off[b + 1])
        lu = np.searchsorted(m_seg, e_u[es:ee])
        lv = np.searchsorted(m_seg, e_v[es:ee])
        nloc = len(m_seg)
        lptr = np.zeros(nloc + 1, dtype=np.int64)
        np.cumsum(np.bincount(lu, minlength=nloc), out=lptr[1:])
        root = int(np.searchsorted(m_seg, s))
        flooding_local = _prim_flooding(
            lptr.tolist(), lv.tolist(), e_c[es:ee].tolist(), root
        )
        pos = len(batch.sources)
        batch.sources.append(source)
        batch.index[source] = pos
        batch.members.append(members)
        batch.member_sets.append(frozenset(members))
        batch.direct.append(direct)
        batch.direct_costs.append(direct_costs)
        batch.probe_sum.append(probe_sum)
        batch.closure_edges.append((ee - es) // 2)
        batch.flooding.append([members[i] for i in flooding_local])


# ---------------------------------------------------------------------------
# Batched optimization step
# ---------------------------------------------------------------------------


def _is_stale(
    member_set: frozenset,
    members: List[int],
    dirty: List[int],
    start: int,
    stamps: Dict[int, int],
) -> bool:
    """Did any mutation endpoint since *start* land inside the closure?

    Exactness: a mutation with both endpoints outside the member set cannot
    change the closure — every ``<= h``-hop path from the source runs
    through members, so neither membership nor induced edges move.  By
    induction over the mutation sequence the pre-extracted entry stays
    exact until the first dirty endpoint that is a member.

    Two equivalent indexes over the same mutation log: *dirty* is the
    endpoint list in order, *stamps* maps an endpoint to the log length
    when it was last appended.  Scanning whichever side is shorter keeps
    the test O(min(closure, mutations-since-extraction)).
    """
    pending = len(dirty) - start
    if pending <= 0:
        return False
    if len(members) < pending:
        for m in members:
            if stamps.get(m, 0) > start:
                return True
        return False
    for i in range(start, len(dirty)):
        if dirty[i] in member_set:
            return True
    return False


def _mark_dirty(dirty: List[int], stamps: Dict[int, int], peer: int) -> None:
    """Append one mutation endpoint to the log (and its stamp index)."""
    dirty.append(peer)
    stamps[peer] = len(dirty)


def _refresh_stale(protocol: "AceProtocol", peer: int) -> tuple:
    """Scalar Phases 1-2 for a peer whose pre-extracted closure went stale.

    Equivalent to :meth:`AceProtocol.refresh_peer` minus the
    ``NeighborCostTable`` dicts :func:`~repro.core.cost_table.run_phase1`
    builds for closure members Phase 3 never reads: the probe/exchange
    overheads are the same flat formulas the fresh path uses (both dict
    sums iterate ascending neighbor ids — the closure row's insertion
    order — so the sequential IEEE totals match bit for bit), and state
    storage goes through the reference :meth:`AceProtocol._store_state`.
    """
    config = protocol.config
    closure = neighbor_closure(protocol.overlay, peer, config.depth)
    state = protocol._store_state(peer, closure)
    s = 0.0
    for c in closure.edges[peer].values():
        s += c
    probe = config.round_trip_factor * s
    exchange = (1.0 + config.entry_cost_factor * closure.num_edges()) * s
    return probe, exchange, sorted(state.non_flooding)


def _optimize_one(
    protocol: "AceProtocol",
    peer: int,
    batch: ClosureBatch,
    dirty: List[int],
    dirty_start: int,
    stamps: Dict[int, int],
    report: "StepReport",
) -> None:
    """Phases 1-3 for one peer, from the batch when still exact.

    Mirrors :meth:`AceProtocol.optimize_peer` statement for statement —
    same report accumulation order, same shed/target/replacement sequence,
    same RNG draws — with Phase 1-2 served from the pre-extracted arrays
    when no mid-step mutation touched the peer's closure.
    """
    overlay = protocol.overlay
    config = protocol.config
    pos = batch.index[peer]
    if _is_stale(
        batch.member_sets[pos], batch.members[pos], dirty, dirty_start, stamps
    ):
        # A mutation invalidated the pre-extracted closure: recompute it
        # through the scalar path (identical by construction).
        probe, exchange, non_flooding = _refresh_stale(protocol, peer)
    else:
        flooding = batch.flooding[pos]
        known = batch.direct[pos]
        protocol._put_flat(
            peer,
            flooding,
            known,
            len(batch.members[pos]),
            batch.closure_edges[pos],
        )
        s = batch.probe_sum[pos]
        probe = config.round_trip_factor * s
        exchange = (1.0 + config.entry_cost_factor * batch.closure_edges[pos]) * s
        in_tree = set(flooding)
        non_flooding = [t for t in known if t not in in_tree]
    report.peers_optimized += 1
    report.probe_overhead += probe
    report.exchange_overhead += exchange

    if config.shed_redundant:
        shed = protocol._shed_redundant(peer, non_flooding)
        report.redundant_sheds += len(shed)
        if shed:
            non_flooding = [
                t for t in non_flooding if overlay.has_edge(peer, t)
            ]
            _mark_dirty(dirty, stamps, peer)
            for t in shed:
                _mark_dirty(dirty, stamps, t)

    targets = protocol.policy.targets(overlay, peer, non_flooding, protocol.rng)
    if config.max_targets_per_step is not None:
        targets = targets[: config.max_targets_per_step]

    for target in targets:
        if not overlay.has_edge(peer, target):
            continue  # cut by another peer since Phase 2
        action = attempt_replacement(
            overlay,
            peer,
            target,
            protocol.policy,
            protocol.rng,
            max_probes=config.max_probes_per_target,
            round_trip_factor=config.round_trip_factor,
            max_degree=config.max_degree,
            min_degree=config.min_degree,
            allow_keep_both=config.allow_keep_both,
        )
        protocol.last_actions.append(action)
        report.probes += action.probes
        report.replacement_probe_overhead += action.probe_cost
        if action.kind == "replace":
            report.replacements += 1
            _mark_dirty(dirty, stamps, peer)
            _mark_dirty(dirty, stamps, target)
            _mark_dirty(dirty, stamps, action.candidate)
        elif action.kind == "keep_both":
            report.keep_both_adds += 1
            _mark_dirty(dirty, stamps, peer)
            _mark_dirty(dirty, stamps, action.candidate)


def batched_step(
    protocol: "AceProtocol", peers: Optional[Sequence[int]] = None
) -> "StepReport":
    """One optimization step through the vectorized kernel.

    Byte-identical to the scalar :meth:`AceProtocol.step` on the array
    engine: same shuffle, same per-block source warm, peers processed in
    the same order with the same RNG stream, and the same end-of-step tree
    rebuild — only Phase 1-2 extraction is batched (and the rebuild reuses
    the optimize-phase state wherever no later mutation touched a closure).
    """
    from .ace import StepReport

    overlay = protocol.overlay
    assert isinstance(overlay, ArrayOverlay)
    config = protocol.config
    if peers is None:
        peers = overlay.peers()
    order = list(peers)
    protocol.rng.shuffle(order)
    overlay.warm_edge_costs()
    report = StepReport(step_index=protocol.steps_run)
    protocol.last_actions = []
    counters.ace_batched_steps += 1
    # Peer-id endpoints of every mid-step edge mutation, in order (plus a
    # last-stamp index per endpoint); slices of this log decide whether a
    # pre-extracted closure is still exact.
    dirty: List[int] = []
    stamps: Dict[int, int] = {}
    batches: List[tuple] = []
    block_size = 256
    for start in range(0, len(order), block_size):
        block = order[start : start + block_size]
        live = [p for p in block if overlay.has_peer(p)]
        overlay.warm_sources(live)
        batch = extract_closures(overlay, live, config.depth)
        counters.closure_batch_peers += len(live)
        dirty_start = len(dirty)
        batches.append((batch, dirty_start))
        for peer in live:
            _optimize_one(
                protocol, peer, batch, dirty, dirty_start, stamps, report
            )
    _rebuild_trees(protocol, batches, dirty)
    protocol._bump_steps()
    return report


def _rebuild_trees(
    protocol: "AceProtocol", batches: List[tuple], dirty: List[int]
) -> None:
    """End-of-step Phase 2 at every peer, against the final topology.

    A peer whose optimize-phase closure was never touched by a later
    mutation already stores exactly the state a recompute would produce
    (same closure, same costs, same live neighbor set), so only the state
    version advances for it; everyone else is re-extracted in bulk sweeps.
    The blocks partition the step's shuffled order, so per-peer version
    bumps happen once each, like the reference loop.
    """
    overlay = protocol.overlay
    config = protocol.config
    stale: List[int] = []
    for batch, dirty_start in batches:
        recent = set(dirty[dirty_start:])
        for peer in batch.sources:
            pos = batch.index[peer]
            if recent and not recent.isdisjoint(batch.member_sets[pos]):
                stale.append(peer)
            else:
                counters.closure_reuses += 1
                protocol._bump_state_version()
    if not stale:
        return
    rebuilt = extract_closures(overlay, stale, config.depth)
    counters.closure_batch_peers += len(stale)
    for peer in stale:
        pos = rebuilt.index[peer]
        protocol._put_flat(
            peer,
            rebuilt.flooding[pos],
            rebuilt.direct[pos],
            len(rebuilt.members[pos]),
            rebuilt.closure_edges[pos],
        )


# ---------------------------------------------------------------------------
# Vectorized churn driver
# ---------------------------------------------------------------------------


def churn_refresh(
    protocol: "AceProtocol", replacement: int, affected: Iterable[int]
) -> float:
    """Batched state rebuild after one churn event's mutation batch.

    The caller has already applied the whole join/leave mutation batch to
    the overlay's edit buffer (departure, replacement arrival, bootstrap
    links, isolation repairs).  This re-warms exactly the touched cost rows
    in one bulk call — every fill uses the canonical lower-peer-endpoint
    direction, the same direction the reference's closure extraction and
    trailing ``warm_edge_costs`` use, so the cached floats are identical —
    then re-extracts the joiner plus all affected peers in one sweep.

    Returns the joiner's Phase-1 overhead (its new links must be probed);
    the affected peers merely rebuild trees from information they already
    hold, exactly like the reference's ``recompute_tree`` chain.
    """
    overlay = protocol.overlay
    assert isinstance(overlay, ArrayOverlay)
    config = protocol.config
    overlay.warm_edge_costs()
    targets = [replacement] + [
        p for p in sorted(affected) if overlay.has_peer(p)
    ]
    batch = extract_closures(overlay, targets, config.depth)
    counters.closure_batch_peers += len(targets)
    for peer in targets:
        pos = batch.index[peer]
        protocol._put_flat(
            peer,
            batch.flooding[pos],
            batch.direct[pos],
            len(batch.members[pos]),
            batch.closure_edges[pos],
        )
    pos = batch.index[replacement]
    s = batch.probe_sum[pos]
    probe = config.round_trip_factor * s
    exchange = (1.0 + config.entry_cost_factor * batch.closure_edges[pos]) * s
    return probe + exchange
