"""h-neighbor closures (paper Section 3.4).

"We define h-neighbor closure of a source peer as the set of peers within h
hops from the source peer."  ACE builds its per-source spanning tree over the
subgraph induced by the closure: the closure members plus every logical link
between two members, weighted by the probed link costs that peers learn from
exchanged neighbor cost tables.

A :class:`ClosureView` is an immutable snapshot; it does not track later
overlay mutations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from ..topology.overlay import Overlay

__all__ = ["ClosureView", "neighbor_closure"]


@dataclass(frozen=True)
class ClosureView:
    """The h-neighbor closure of a source peer, with its known subgraph.

    Attributes
    ----------
    source:
        The peer the closure is centered on.
    depth:
        The *h* parameter.
    members:
        All peers within *depth* overlay hops of *source* (inclusive).
    hop_distance:
        Hop distance from the source for every member.
    edges:
        Induced subgraph with link costs: node -> {neighbor: cost}, covering
        exactly the overlay links between closure members.
    """

    source: int
    depth: int
    members: FrozenSet[int]
    hop_distance: Mapping[int, int]
    edges: Mapping[int, Mapping[int, float]]

    @property
    def size(self) -> int:
        """Number of peers in the closure (including the source)."""
        return len(self.members)

    def num_edges(self) -> int:
        """Number of logical links inside the closure."""
        return sum(len(nbrs) for nbrs in self.edges.values()) // 2

    def frontier(self) -> Set[int]:
        """Members at exactly *depth* hops (the closure boundary)."""
        return {p for p, d in self.hop_distance.items() if d == self.depth}


def neighbor_closure(overlay: Overlay, source: int, depth: int) -> ClosureView:
    """Compute the *depth*-neighbor closure of *source*.

    Raises ``KeyError`` if the source is not a live peer and ``ValueError``
    for non-positive depth.
    """
    if depth < 1:
        raise ValueError(f"closure depth must be >= 1, got {depth}")
    if not overlay.has_peer(source):
        raise KeyError(f"peer {source} not in overlay")

    hop: Dict[int, int] = {source: 0}
    frontier: List[int] = [source]
    d = 0
    while frontier and d < depth:
        d += 1
        nxt: List[int] = []
        for u in frontier:
            # Sorted expansion keeps the hop/edge dict orders canonical, so
            # every overlay engine (object or array) yields the same float
            # summation order downstream (overhead sums are order-sensitive).
            for v in sorted(overlay.neighbors(u)):
                if v not in hop:
                    hop[v] = d
                    nxt.append(v)
        frontier = nxt

    members = frozenset(hop)
    edges: Dict[int, Dict[int, float]] = {m: {} for m in sorted(members)}
    for u in sorted(members):
        # Batch all of u's in-closure edge costs in one sweep (symmetric
        # entries filled from the other endpoint are skipped up front).
        targets = [
            v
            for v in sorted(overlay.neighbors(u))
            if v in members and v not in edges[u]
        ]
        if not targets:
            continue
        row = overlay.costs_from(u, targets)
        for v in targets:
            c = row[v]
            edges[u][v] = c
            edges[v][u] = c
    return ClosureView(
        source=source,
        depth=depth,
        members=members,
        hop_distance=dict(hop),
        edges={u: dict(nbrs) for u, nbrs in edges.items()},
    )
