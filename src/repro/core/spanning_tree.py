"""Minimum spanning trees over neighbor closures (ACE Phase 2).

The paper builds, at every peer, "a minimum spanning tree among each peer and
its immediate logical neighbors ... by simply using an algorithm like PRIM
which has a computation complexity of O(m^2)".  We provide both that
array-based Prim (faithful to the paper's complexity statement) and a
heap-based variant, verified equivalent by the test suite.

Trees are deterministic: ties are broken by ``(cost, node id, parent id)`` so
that independent re-computations at different peers (and across test runs)
agree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

__all__ = ["SpanningTree", "prim_mst", "prim_mst_heap"]

Adjacency = Mapping[int, Mapping[int, float]]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of a closure subgraph.

    Attributes
    ----------
    root:
        The source peer the tree was built for.
    parent:
        Mapping child -> parent (the root maps to itself).
    adjacency:
        Undirected tree adjacency: node -> frozenset of tree neighbors.
    total_cost:
        Sum of tree edge costs.
    """

    root: int
    parent: Mapping[int, int]
    adjacency: Mapping[int, FrozenSet[int]]
    total_cost: float

    def nodes(self) -> Set[int]:
        """All nodes spanned by the tree."""
        return set(self.adjacency)

    def tree_neighbors(self, node: int) -> FrozenSet[int]:
        """Direct tree neighbors of *node* (empty when absent)."""
        return self.adjacency.get(node, frozenset())

    def children(self, node: int) -> Set[int]:
        """Children of *node* in the rooted orientation."""
        return {c for c in self.adjacency.get(node, ()) if self.parent.get(c) == node}

    def edges(self) -> Set[Tuple[int, int]]:
        """Tree edges as ``(min, max)`` pairs."""
        out: Set[Tuple[int, int]] = set()
        for child, par in self.parent.items():
            if child != par:
                out.add((child, par) if child < par else (par, child))
        return out

    def depth_of(self, node: int) -> int:
        """Hop distance from *node* up to the root."""
        depth = 0
        cur = node
        while cur != self.root:
            cur = self.parent[cur]
            depth += 1
            if depth > len(self.parent):
                raise RuntimeError("cycle detected in parent map")
        return depth


def _validate(graph: Adjacency, root: int) -> None:
    if root not in graph:
        raise ValueError(f"root {root} not in graph")
    for u, nbrs in graph.items():
        for v, c in nbrs.items():
            if v not in graph:
                raise ValueError(f"edge ({u}, {v}) leaves the node set")
            if c < 0:
                raise ValueError(f"negative edge cost on ({u}, {v})")


def _build_tree(root: int, parent: Dict[int, int], graph: Adjacency) -> SpanningTree:
    if len(parent) != len(graph):
        missing = set(graph) - set(parent)
        raise ValueError(
            f"graph is not connected from root {root}: unreached {sorted(missing)[:5]}"
        )
    adjacency: Dict[int, Set[int]] = {n: set() for n in graph}
    total = 0.0
    for child, par in parent.items():
        if child == par:
            continue
        adjacency[child].add(par)
        adjacency[par].add(child)
        total += graph[child][par]
    return SpanningTree(
        root=root,
        parent=dict(parent),
        adjacency={n: frozenset(s) for n, s in adjacency.items()},
        total_cost=total,
    )


def prim_mst(graph: Adjacency, root: int) -> SpanningTree:
    """Array-based Prim — the paper's O(m^2) formulation.

    *graph* maps node -> {neighbor: cost} and must be symmetric and
    connected; otherwise ``ValueError`` is raised.
    """
    _validate(graph, root)
    nodes = sorted(graph)
    in_tree: Set[int] = {root}
    best_cost: Dict[int, float] = {}
    best_parent: Dict[int, int] = {}
    for v, c in graph[root].items():
        best_cost[v] = c
        best_parent[v] = root
    parent: Dict[int, int] = {root: root}
    while len(in_tree) < len(nodes):
        chosen: Optional[int] = None
        chosen_key: Optional[Tuple[float, int, int]] = None
        for v in nodes:
            if v in in_tree or v not in best_cost:
                continue
            key = (best_cost[v], v, best_parent[v])
            if chosen_key is None or key < chosen_key:
                chosen, chosen_key = v, key
        if chosen is None:
            break  # disconnected; _build_tree reports it
        in_tree.add(chosen)
        parent[chosen] = best_parent[chosen]
        for v, c in graph[chosen].items():
            if v in in_tree:
                continue
            old = best_cost.get(v)
            # Lexicographic (cost, parent) update matches the heap variant's
            # tie-breaking exactly, so both Prims return identical trees.
            if old is None or (c, chosen) < (old, best_parent[v]):
                best_cost[v] = c
                best_parent[v] = chosen
    return _build_tree(root, parent, graph)


def prim_mst_heap(graph: Adjacency, root: int) -> SpanningTree:
    """Heap-based Prim, O(m log n); identical output to :func:`prim_mst`."""
    _validate(graph, root)
    parent: Dict[int, int] = {root: root}
    in_tree: Set[int] = {root}
    heap: List[Tuple[float, int, int]] = []
    for v, c in graph[root].items():
        heapq.heappush(heap, (c, v, root))
    while heap and len(in_tree) < len(graph):
        c, v, par = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        parent[v] = par
        for w, cw in graph[v].items():
            if w not in in_tree:
                heapq.heappush(heap, (cw, w, v))
    return _build_tree(root, parent, graph)
