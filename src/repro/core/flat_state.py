"""Flat-array store for per-peer ACE optimization state.

The object-mode :class:`~repro.core.ace.AceProtocol` keeps one
:class:`~repro.core.ace.PeerAceState` dataclass per peer — tens of bytes of
Python object headers per field, which dominates memory at 100k+ peers.
:class:`FlatAceStore` holds the same information in struct-of-arrays form:

* scalar fields (``closure_size``, ``closure_edges``) in dense ``int64``
  arrays indexed by a per-peer *row*;
* the ``flooding`` / ``known_neighbors`` membership sets in packed CSR
  snapshot arrays plus a small dict of *pending* rows (rows written since
  the last pack).  When the pending overlay (plus holes left by dropped
  rows) outgrows a threshold, the store re-packs into fresh contiguous
  arrays and counts an ``array_state_syncs`` perf event.

The store only keeps raw memberships — the protocol derives
``non_flooding = known - flooding`` on materialization, exactly as the
object path computes it at store time, so both representations yield
byte-identical protocol behaviour.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..perf import counters

__all__ = ["FlatAceStore"]


class FlatAceStore:
    """Struct-of-arrays container for ACE per-peer state."""

    def __init__(self, repack_threshold: Optional[int] = None) -> None:
        self._repack_threshold = repack_threshold
        self._row: Dict[int, int] = {}
        self._nrows = 0
        self._closure_size: np.ndarray = np.empty(0, dtype=np.int64)
        self._closure_edges: np.ndarray = np.empty(0, dtype=np.int64)
        # Packed membership snapshots cover rows < len(_f_indptr) - 1 that
        # have no pending override; every row touched after the last pack
        # lives in ``_pending`` until the next one.
        self._f_indptr: np.ndarray = np.zeros(1, dtype=np.int64)
        self._f_data: np.ndarray = np.empty(0, dtype=np.int64)
        self._k_indptr: np.ndarray = np.zeros(1, dtype=np.int64)
        self._k_data: np.ndarray = np.empty(0, dtype=np.int64)
        self._pending: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._row)

    def __contains__(self, peer: int) -> bool:
        return peer in self._row

    @property
    def pending_rows(self) -> int:
        """Rows currently held in the unpacked overlay (for tests)."""
        return len(self._pending)

    @property
    def packed_rows(self) -> int:
        """Rows covered by the packed CSR snapshot (for tests)."""
        return len(self._f_indptr) - 1

    # ------------------------------------------------------------------

    def _grow_scalars(self, need: int) -> None:
        cap = len(self._closure_size)
        if need <= cap:
            return
        new_cap = max(8, cap)
        while new_cap < need:
            new_cap *= 2
        pad = np.zeros(new_cap - cap, dtype=np.int64)
        self._closure_size = np.concatenate([self._closure_size, pad])
        self._closure_edges = np.concatenate([self._closure_edges, pad])

    def put(
        self,
        peer: int,
        flooding: Iterable[int],
        known: Iterable[int],
        closure_size: int,
        closure_edges: int,
    ) -> None:
        """Store (or overwrite) a peer's optimization state."""
        row = self._row.get(peer)
        if row is None:
            row = self._nrows
            self._nrows += 1
            self._grow_scalars(self._nrows)
            self._row[peer] = row
        self._closure_size[row] = closure_size
        self._closure_edges[row] = closure_edges
        self._pending[peer] = (
            tuple(sorted(flooding)),
            tuple(sorted(known)),
        )
        self._maybe_repack()

    def drop(self, peer: int) -> bool:
        """Forget a peer's state.  Returns ``True`` if it was present."""
        if peer not in self._row:
            return False
        del self._row[peer]
        self._pending.pop(peer, None)
        self._maybe_repack()
        return True

    # ------------------------------------------------------------------

    def flooding_of(self, peer: int) -> FrozenSet[int]:
        """The stored multicast-tree (flooding) neighbor set."""
        return self._membership(peer, self._f_indptr, self._f_data)

    def known_of(self, peer: int) -> FrozenSet[int]:
        """The neighbor set known when the state was stored."""
        return self._membership(peer, self._k_indptr, self._k_data)

    def closure_size_of(self, peer: int) -> int:
        """Member count of the closure the state was computed from."""
        return int(self._closure_size[self._row[peer]])

    def closure_edges_of(self, peer: int) -> int:
        """Edge count of the closure the state was computed from."""
        return int(self._closure_edges[self._row[peer]])

    def _membership(
        self, peer: int, indptr: np.ndarray, data: np.ndarray
    ) -> FrozenSet[int]:
        pend = self._pending.get(peer)
        if pend is not None:
            values = pend[0] if indptr is self._f_indptr else pend[1]
            return frozenset(values)
        row = self._row[peer]
        s = int(indptr[row])
        e = int(indptr[row + 1])
        return frozenset(data[s:e].tolist())

    # ------------------------------------------------------------------

    def _maybe_repack(self) -> None:
        holes = self._nrows - len(self._row)
        limit = self._repack_threshold
        if limit is None:
            limit = max(64, len(self._row) // 4)
        if len(self._pending) + holes > limit:
            self._repack()

    def _repack(self) -> None:
        """Fold the pending overlay into fresh packed snapshot arrays."""
        counters.array_state_syncs += 1
        order = sorted(self._row)
        n = len(order)
        closure_size = np.zeros(max(n, 1), dtype=np.int64)
        closure_edges = np.zeros(max(n, 1), dtype=np.int64)
        f_indptr = np.zeros(n + 1, dtype=np.int64)
        k_indptr = np.zeros(n + 1, dtype=np.int64)
        f_data: List[int] = []
        k_data: List[int] = []
        for i, peer in enumerate(order):
            pend = self._pending.get(peer)
            if pend is not None:
                flooding: Tuple[int, ...] = pend[0]
                known: Tuple[int, ...] = pend[1]
            else:
                row = self._row[peer]
                fs = int(self._f_indptr[row])
                fe = int(self._f_indptr[row + 1])
                ks = int(self._k_indptr[row])
                ke = int(self._k_indptr[row + 1])
                flooding = tuple(self._f_data[fs:fe].tolist())
                known = tuple(self._k_data[ks:ke].tolist())
            old_row = self._row[peer]
            closure_size[i] = self._closure_size[old_row]
            closure_edges[i] = self._closure_edges[old_row]
            f_data.extend(flooding)
            k_data.extend(known)
            f_indptr[i + 1] = f_indptr[i] + len(flooding)
            k_indptr[i + 1] = k_indptr[i] + len(known)
        self._row = {peer: i for i, peer in enumerate(order)}
        self._nrows = n
        self._closure_size = closure_size
        self._closure_edges = closure_edges
        self._f_indptr = f_indptr
        self._f_data = np.array(f_data, dtype=np.int64)
        self._k_indptr = k_indptr
        self._k_data = np.array(k_data, dtype=np.int64)
        self._pending = {}
