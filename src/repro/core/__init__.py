"""ACE core: the paper's primary contribution.

Exports the protocol driver (:class:`AceProtocol` / :class:`AceConfig`) and
its building blocks — h-neighbor closures, neighbor cost tables, Prim
spanning trees, Phase-3 replacement and the candidate policies.
"""

from .ace import AceConfig, AceProtocol, PeerAceState, StepReport
from .adaptive_depth import (
    AdaptiveAceProtocol,
    DepthAdvisor,
    FrequencyEstimator,
)
from .closure import ClosureView, neighbor_closure
from .cost_table import (
    NeighborCostTable,
    Phase1Report,
    build_cost_table,
    exchange_overhead,
    probe_overhead,
    run_phase1,
)
from .policies import (
    CandidatePolicy,
    ClosestPolicy,
    NaivePolicy,
    RandomPolicy,
    make_policy,
)
from .replacement import ReplacementAction, attempt_replacement
from .spanning_tree import SpanningTree, prim_mst, prim_mst_heap

__all__ = [
    "AceProtocol",
    "AceConfig",
    "AdaptiveAceProtocol",
    "DepthAdvisor",
    "FrequencyEstimator",
    "PeerAceState",
    "StepReport",
    "ClosureView",
    "neighbor_closure",
    "NeighborCostTable",
    "Phase1Report",
    "build_cost_table",
    "probe_overhead",
    "exchange_overhead",
    "run_phase1",
    "SpanningTree",
    "prim_mst",
    "prim_mst_heap",
    "ReplacementAction",
    "attempt_replacement",
    "CandidatePolicy",
    "RandomPolicy",
    "ClosestPolicy",
    "NaivePolicy",
    "make_policy",
]
