#!/usr/bin/env python
"""AS-border crossings: the paper's Section 1 motivation, quantified.

Builds a transit-stub Internet (stub domains = autonomous systems), places
a random Gnutella-like overlay on it, and measures what the paper's cited
studies measured: the share of logical connections that stay inside one AS
(Gnutella: 2-5%).  Then ACE runs and the script tracks, step by step, how
the overlay "comes home": intra-AS connections multiply and query traffic
falls, with the search scope untouched.

Run:  python examples/as_locality.py [peers]
"""

import sys

import numpy as np

from repro import AceProtocol
from repro.experiments.ascii_plot import line_chart, sparkline
from repro.experiments.reporting import format_table
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.autonomous_systems import as_traffic_report, transit_stub
from repro.topology.overlay import small_world_overlay

STEPS = 10


def main(peers: int = 120) -> None:
    rng = np.random.default_rng(13)
    print("Building a transit-stub Internet (42 stub ASes on a 14-router core)...")
    topo, labels = transit_stub(
        transit_nodes=14, stubs_per_transit=3, stub_size=12, rng=rng
    )
    overlay = small_world_overlay(topo, peers, avg_degree=8, rng=rng)
    sources = overlay.peers()[:8]

    def measure(strategy):
        link = as_traffic_report(labels, overlay)
        traffic = sum(
            propagate(overlay, s, strategy, ttl=None).traffic_cost
            for s in sources
        ) / len(sources)
        return link.intra_link_fraction, traffic

    intra0, traffic0 = measure(blind_flooding_strategy(overlay))
    print(f"Random overlay: {100 * intra0:.1f}% of logical connections stay "
          "inside one AS")
    print("  (the paper's cited measurement of Gnutella: 2-5%)")
    print()

    protocol = AceProtocol(overlay, rng=rng)
    intra_series = [100 * intra0]
    traffic_series = [traffic0]
    for _ in range(STEPS):
        protocol.step()
        intra, traffic = measure(ace_strategy(protocol))
        intra_series.append(100 * intra)
        traffic_series.append(traffic)

    print(format_table(
        ["step", "intra-AS links %", "traffic/query"],
        [
            (k, round(intra_series[k], 1), round(traffic_series[k]))
            for k in range(STEPS + 1)
        ],
        title="ACE bringing the overlay home:",
    ))
    print()
    print("intra-AS link share per step: ", sparkline(intra_series))
    print("traffic per query per step:   ", sparkline(traffic_series))
    print()
    norm = [t / traffic_series[0] for t in traffic_series]
    locality = [v / max(intra_series) for v in intra_series]
    print(line_chart(
        {"traffic (normalized)": norm, "AS locality (normalized)": locality},
        height=9,
    ))
    print()
    print(f"After {STEPS} steps: intra-AS links x"
          f"{intra_series[-1] / max(intra_series[0], 0.1):.1f}, "
          f"traffic -{100 * (1 - traffic_series[-1] / traffic_series[0]):.1f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
