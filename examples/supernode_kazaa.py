#!/usr/bin/env python
"""A KaZaA-like two-tier system with ACE on the supernode backbone.

The paper's opening sentence covers both unstructured deployments: queries
are flooded "among peers (such as in Gnutella) or among supernodes (such as
in KaZaA)".  This example elects the highest-capacity quarter of peers as
supernodes, attaches the rest as leaves, and compares three systems on the
same population:

* flat Gnutella-like flooding over every peer,
* the two-tier system (flooding only among supernodes, leaves indexed), and
* the two-tier system with ACE optimizing the supernode backbone.

All three search the full population; the traffic differs.

Run:  python examples/supernode_kazaa.py [peers]
"""

import sys

import numpy as np

from repro import AceProtocol, barabasi_albert, build_two_tier, two_tier_query
from repro.experiments.reporting import format_table
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.overlay import small_world_overlay

STEPS = 6


def main(peers: int = 160) -> None:
    rng = np.random.default_rng(29)
    physical = barabasi_albert(max(8 * peers, 500), m=2, rng=rng)

    print(f"Population: {peers} peers on a {physical.num_nodes}-node underlay")

    flat = small_world_overlay(physical, peers, avg_degree=8, rng=rng)
    flat_sources = flat.peers()[:10]
    flat_traffic = sum(
        propagate(flat, s, blind_flooding_strategy(flat), ttl=None).traffic_cost
        for s in flat_sources
    ) / len(flat_sources)

    print("Electing supernodes by capacity (top 25%)...")
    tt = build_two_tier(physical, peers, supernode_fraction=0.25, rng=rng)
    print(f"  {tt.num_supernodes} supernodes, {tt.num_leaves} leaves, "
          f"backbone degree {tt.backbone.average_degree():.2f}")

    leaves = sorted(tt.leaf_parent)[:10]
    super_traffic = sum(
        two_tier_query(tt, s, holders=[]).traffic_cost for s in leaves
    ) / len(leaves)

    print(f"Running ACE on the backbone for {STEPS} steps...")
    protocol = AceProtocol(tt.backbone, rng=rng)
    protocol.run(STEPS)
    strategy = ace_strategy(protocol)
    ace_traffic = sum(
        two_tier_query(tt, s, holders=[], strategy=strategy).traffic_cost
        for s in leaves
    ) / len(leaves)
    sample = two_tier_query(tt, leaves[0], holders=[], strategy=strategy)

    print()
    print(format_table(
        ["system", "traffic/query", "vs flat"],
        [
            ["flat Gnutella-like flooding", round(flat_traffic), "-"],
            ["two-tier (KaZaA-like)", round(super_traffic),
             f"-{100 * (1 - super_traffic / flat_traffic):.1f}%"],
            ["two-tier + ACE backbone", round(ace_traffic),
             f"-{100 * (1 - ace_traffic / flat_traffic):.1f}%"],
        ],
        title="Full-coverage query traffic:",
    ))
    print()
    print(f"Search scope in all systems: {sample.search_scope}/{peers} peers")
    print("The supernode tier alone saves a lot (the flooding graph is 4x")
    print("smaller); ACE then repairs the backbone's physical mismatch for a")
    print("further cut — the two mechanisms compose.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 160)
