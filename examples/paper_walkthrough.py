#!/usr/bin/env python
"""Replay the paper's worked example (Figures 5-6, Tables 1-2).

The six-peer overlay A..F from Section 3.4: a query from peer F is routed by
blind flooding, then over the per-peer overlay trees built in 1-neighbor and
2-neighbor closures.  The walkthrough prints each peer's tree, the query
paths with their costs (the paper's Tables 1 and 2) and the headline
relations: unnecessary messages drop 3 -> 1 -> 0 and total cost falls with
closure depth.

Run:  python examples/paper_walkthrough.py
"""

from repro.experiments.paper_example import (
    PEER_NAMES,
    build_example_overlay,
    run_walkthrough,
)
from repro.experiments.reporting import format_table


def show_overlay() -> None:
    overlay = build_example_overlay()
    print("The example overlay (logical links with measured costs):")
    rows = [
        (PEER_NAMES[u], PEER_NAMES[v], overlay.cost(u, v))
        for u, v in sorted(overlay.edges())
    ]
    print(format_table(["peer", "peer", "cost"], rows))
    print()
    print("Note the mismatch: the drawn A-B link has physical length 10 but")
    print("its measured cost is", overlay.cost(0, 1), "because the underlay")
    print("routes it through C — exactly the Figure 2 situation.")
    print()


def show_walkthrough(depth) -> None:
    walk = run_walkthrough(depth)
    label = "blind flooding" if depth is None else f"trees in {depth}-neighbor closure"
    print(f"=== Query from {walk.source} via {label} ===")
    print("Forwarding sets:")
    for name in PEER_NAMES:
        targets = ", ".join(walk.trees[name]) or "-"
        print(f"  {name} -> {targets}")
    print()
    print(format_table(
        ["from", "to", "cost"],
        walk.rows(),
        title="Query paths (paper's Tables 1-2 format):",
    ))
    print(f"Total cost: {walk.total_cost:.0f}   "
          f"messages: {walk.messages}   "
          f"unnecessary (duplicate) messages: {walk.duplicate_messages}   "
          f"peers reached: {len(walk.reached)}/{len(PEER_NAMES)}")
    print()


def main() -> None:
    show_overlay()
    for depth in (None, 1, 2):
        show_walkthrough(depth)
    blind = run_walkthrough(None)
    h1 = run_walkthrough(1)
    h2 = run_walkthrough(2)
    print("Paper's Section 3.4 relations, reproduced:")
    print(f"  duplicates: {blind.duplicate_messages} -> "
          f"{h1.duplicate_messages} -> {h2.duplicate_messages}  "
          "(paper: 3 -> 1, and none at h=2)")
    print(f"  total cost: {blind.total_cost:.0f} -> {h1.total_cost:.0f} -> "
          f"{h2.total_cost:.0f}  (monotone decrease, scope unchanged)")


if __name__ == "__main__":
    main()
