#!/usr/bin/env python
"""The closure-depth trade-off (paper Section 5.3, Figures 11-16).

Sweeps the h-neighbor-closure depth for two overlay densities and prints:

* the query-traffic reduction rate per depth (Figure 11),
* the per-round overhead traffic (Figure 12), and
* the optimization rate (gain/penalty) across frequency ratios R, with the
  minimal depth achieving rate > 1 (Figures 13-16).

Run:  python examples/depth_tradeoff.py [peers]
"""

import sys

from repro.experiments.depth_sweep import DepthSweepConfig, run_depth_sweep
from repro.experiments.opt_rate import (
    REPRO_R_VALUES,
    minimal_depths_table,
    rate_vs_depth,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.setup import ScenarioConfig


def main(peers: int = 96) -> None:
    degrees = (4, 10)
    depths = (1, 2, 3, 4)
    print(f"Sweeping C={degrees} x h={depths} on {peers}-peer overlays...")
    sweep = run_depth_sweep(DepthSweepConfig(
        degrees=degrees,
        depths=depths,
        convergence_steps=6,
        query_samples=12,
        base=ScenarioConfig(
            physical_nodes=max(8 * peers, 400), peers=peers, seed=30
        ),
    ))

    print()
    print(format_series(
        "h", list(depths),
        {
            f"C={c} reduction %": [
                round(t.reduction_percent, 1) for t in sweep.for_degree(c)
            ]
            for c in degrees
        },
        title="Query traffic reduction rate vs closure depth (Figure 11)",
    ))
    print()
    print(format_series(
        "h", list(depths),
        {
            f"C={c} overhead": [
                round(t.overhead_per_reconstruction)
                for t in sweep.for_degree(c)
            ]
            for c in degrees
        },
        title="Overhead traffic per optimization round vs depth (Figure 12)",
    ))

    for degree in degrees:
        series = rate_vs_depth(sweep, degree, REPRO_R_VALUES)
        print()
        print(format_series(
            "h", list(depths),
            {f"R={r:g}": [round(rate, 3) for _h, rate in series[r]]
             for r in REPRO_R_VALUES},
            title=f"Optimization rate vs depth at C={degree} (Figures 13/14)",
        ))

    minima = minimal_depths_table(sweep, REPRO_R_VALUES)
    print()
    print(format_table(
        ["R", *(f"C={c} minimal h" for c in degrees)],
        [[f"{r:g}", *(minima[c][r] for c in degrees)] for r in REPRO_R_VALUES],
        title="Minimal closure depth with optimization rate > 1 "
              "(paper: none at R=1; smaller h for denser overlays)",
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
