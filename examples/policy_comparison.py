#!/usr/bin/env python
"""Compare Phase-3 candidate policies and rival schemes (paper Sections 2/6).

Runs, on identical copies of one overlay:

* ACE with the paper's **random** policy,
* ACE with the **closest** and **naive** future-work policies (Section 6),
* the **AOTO** precursor (selective flooding + swap-only replacement), and
* a simplified **LTM** (triangle cutting, Section 2's comparison scheme),

reporting converged traffic, probe counts and final degree for each.

Run:  python examples/policy_comparison.py [peers]
"""

import sys

import numpy as np

from repro import AceConfig, AceProtocol, AotoProtocol, LtmProtocol
from repro.experiments.reporting import format_table
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy

STEPS = 8


def main(peers: int = 96) -> None:
    scenario = build_scenario(ScenarioConfig(
        physical_nodes=max(8 * peers, 400), peers=peers, avg_degree=8, seed=40
    ))
    all_peers = scenario.overlay.peers()
    rng = np.random.default_rng(1)
    sources = [all_peers[int(i)] for i in rng.integers(0, len(all_peers), 12)]

    def measure(overlay, strategy):
        return sum(
            propagate(overlay, s, strategy, ttl=None).traffic_cost
            for s in sources
        ) / len(sources)

    baseline = measure(scenario.overlay, blind_flooding_strategy(scenario.overlay))
    print(f"Blind-flooding baseline: {baseline:,.0f} cost units per query\n")

    rows = []

    for policy in ("random", "closest", "naive"):
        overlay = scenario.fresh_overlay()
        protocol = AceProtocol(
            overlay, AceConfig(policy=policy), rng=np.random.default_rng(2)
        )
        reports = protocol.run(STEPS)
        traffic = measure(overlay, ace_strategy(protocol))
        rows.append([
            f"ace/{policy}",
            round(traffic),
            round(100 * (baseline - traffic) / baseline, 1),
            sum(r.probes for r in reports),
            round(overlay.average_degree(), 2),
        ])
        print(f"ACE with the {policy} policy done.")

    overlay = scenario.fresh_overlay()
    aoto = AotoProtocol(overlay, rng=np.random.default_rng(2))
    reports = aoto.run(STEPS)
    traffic = measure(overlay, ace_strategy(aoto))
    rows.append([
        "aoto",
        round(traffic),
        round(100 * (baseline - traffic) / baseline, 1),
        sum(r.probes for r in reports),
        round(overlay.average_degree(), 2),
    ])
    print("AOTO done.")

    overlay = scenario.fresh_overlay()
    ltm = LtmProtocol(overlay, rng=np.random.default_rng(2))
    ltm.run(STEPS)
    traffic = measure(overlay, blind_flooding_strategy(overlay))
    rows.append([
        "ltm (simplified)",
        round(traffic),
        round(100 * (baseline - traffic) / baseline, 1),
        0,
        round(overlay.average_degree(), 2),
    ])
    print("LTM done.\n")

    print(format_table(
        ["scheme", "traffic/query", "reduction %", "probes", "final degree"],
        rows,
        title=f"Scheme comparison after {STEPS} optimization rounds",
    ))
    print()
    print("Notes: 'closest' pays more probes for its reduction; 'naive'")
    print("explores globally without locality guidance; LTM reduces traffic")
    print("by *removing* connections (watch its final degree), the autonomy")
    print("trade-off the paper's related-work section points out.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
