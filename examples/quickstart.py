#!/usr/bin/env python
"""Quickstart: fix a mismatched overlay with ACE.

Builds a BRITE-style underlay, places a Gnutella-like overlay on it, runs
ACE for ten optimization steps and shows the before/after traffic cost,
response time and search scope of a full-coverage query.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    AceConfig,
    AceProtocol,
    ObjectCatalog,
    WorkloadConfig,
    ace_strategy,
    barabasi_albert,
    blind_flooding_strategy,
    run_query,
    small_world_overlay,
)


def main(seed: int = 9) -> None:
    rng = np.random.default_rng(seed)

    print("1. Building a 1000-node physical underlay (Barabasi-Albert)...")
    physical = barabasi_albert(1000, m=2, rng=rng)

    print("2. Placing a 128-peer Gnutella-like overlay (avg degree 8)...")
    overlay = small_world_overlay(physical, 128, avg_degree=8, rng=rng)
    print(f"   peers={overlay.num_peers} links={overlay.num_edges} "
          f"avg degree={overlay.average_degree():.2f}")

    catalog = ObjectCatalog(
        overlay.peers(), WorkloadConfig(num_objects=100, replicas_per_object=8), rng
    )
    sources = overlay.peers()[:12]

    def measure(strategy, label):
        traffic, responses, scope = 0.0, [], 0
        for i, src in enumerate(sources):
            holders = catalog.holders_of(i % catalog.num_objects)
            result = run_query(overlay, src, strategy, holders, ttl=None)
            traffic += result.traffic_cost
            scope = result.search_scope
            if result.first_response_time is not None:
                responses.append(result.first_response_time)
        avg_traffic = traffic / len(sources)
        avg_response = sum(responses) / len(responses)
        print(f"   {label}: traffic/query={avg_traffic:,.0f} "
              f"response={avg_response:,.0f} scope={scope}")
        return avg_traffic, avg_response

    print("3. Measuring blind flooding (the Gnutella baseline)...")
    before = measure(blind_flooding_strategy(overlay), "blind flooding")

    print("4. Running ACE (depth h=1, random policy) for 10 steps...")
    protocol = AceProtocol(overlay, AceConfig(depth=1), rng=rng)
    for report in protocol.run(10):
        print(f"   step {report.step_index + 1}: "
              f"{report.replacements} replacements, "
              f"{report.keep_both_adds} keep-both adds, "
              f"{report.redundant_sheds} sheds")

    print("5. Measuring ACE tree routing on the optimized overlay...")
    after = measure(ace_strategy(protocol), "ACE routing ")

    print()
    print(f"Traffic reduction:  {100 * (1 - after[0] / before[0]):.1f}% "
          "(paper: ~50% in 10 steps)")
    print(f"Response reduction: {100 * (1 - after[1] / before[1]):.1f}% "
          "(paper: ~35%)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
