#!/usr/bin/env python
"""A churning Gnutella-like system, with and without ACE (paper Section 5.2).

Reproduces the dynamic environment of Figures 9 and 10 at laptop scale:
peers join and leave with log-normal lifetimes (mean 10 minutes), every peer
issues 0.3 queries per minute, and — in the ACE arm — every peer optimizes
its connections twice per minute.  The script prints the windowed traffic
and response-time series for three arms: Gnutella-like blind flooding, ACE,
and ACE combined with a 100-item response index cache.

Run:  python examples/dynamic_gnutella.py [peers] [queries]
"""

import sys

from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.reporting import format_series
from repro.experiments.setup import ScenarioConfig, build_scenario


def main(peers: int = 100, total_queries: int = 600) -> None:
    window = total_queries // 6
    base = ScenarioConfig(
        physical_nodes=max(8 * peers, 400),
        peers=peers,
        avg_degree=8,
        seed=20,
    )
    arms = {}
    for name, kwargs in (
        ("gnutella", dict(enable_ace=False)),
        ("ace", dict(enable_ace=True)),
        ("ace+cache", dict(enable_ace=True, enable_cache=True)),
    ):
        print(f"Simulating the {name} arm "
              f"({peers} peers, {total_queries} queries, churn on)...")
        scenario = build_scenario(base)
        arms[name] = run_dynamic_experiment(
            scenario,
            DynamicConfig(total_queries=total_queries, window=window, **kwargs),
        )
        s = arms[name]
        print(f"  simulated {s.duration:,.0f} s of system time, "
              f"{s.departures} peer departures, "
              f"overhead traffic {s.total_overhead:,.0f}")

    x = list(range(1, 7))
    print()
    print(format_series(
        f"queries (x{window})", x,
        {n: [round(p) for p in s.traffic_points] for n, s in arms.items()},
        title="Average traffic cost per query (ACE arms include overhead) — Figure 9",
    ))
    print()
    print(format_series(
        f"queries (x{window})", x,
        {n: [round(p) for p in s.response_points] for n, s in arms.items()},
        title="Average response time per query — Figure 10",
    ))

    g, a, c = (arms[n] for n in ("gnutella", "ace", "ace+cache"))
    steady = lambda pts: sum(pts[3:]) / len(pts[3:])
    print()
    print(f"Steady-state traffic reduction, ACE vs gnutella-like: "
          f"{100 * (1 - steady(a.traffic_points) / steady(g.traffic_points)):.1f}%")
    print(f"Steady-state response reduction, ACE vs gnutella-like: "
          f"{100 * (1 - steady(a.response_points) / steady(g.response_points)):.1f}%")
    print(f"With index caching: "
          f"{100 * (1 - steady(c.traffic_points) / steady(g.traffic_points)):.1f}% "
          "traffic reduction")


if __name__ == "__main__":
    peers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    queries = int(sys.argv[2]) if len(sys.argv) > 2 else 600
    main(peers, queries)
