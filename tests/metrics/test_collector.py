"""Unit tests for statistics collection."""

import pytest

from repro.metrics.collector import SeriesCollector, Summary, summarize


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_std(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_empty(self):
        s = summarize([])
        assert s == Summary.empty()
        assert s.count == 0

    def test_single_value(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert s.std == 0.0


class TestSeriesCollector:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SeriesCollector(0)

    def test_emits_window_means(self):
        c = SeriesCollector(2)
        assert c.add(1.0) is None
        assert c.add(3.0) == pytest.approx(2.0)
        assert c.add(5.0) is None
        assert c.add(7.0) == pytest.approx(6.0)
        assert c.points == [2.0, 6.0]

    def test_pending(self):
        c = SeriesCollector(3)
        c.add(1.0)
        assert c.pending == 1

    def test_flush_partial_window(self):
        c = SeriesCollector(4)
        c.add(2.0)
        c.add(4.0)
        assert c.flush() == pytest.approx(3.0)
        assert c.points == [3.0]
        assert c.pending == 0

    def test_flush_empty_is_none(self):
        assert SeriesCollector(2).flush() is None

    def test_points_returns_copy(self):
        c = SeriesCollector(1)
        c.add(1.0)
        pts = c.points
        pts.append(99.0)
        assert c.points == [1.0]
