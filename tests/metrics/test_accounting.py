"""Unit tests for traffic accounting."""

import pytest

from repro.metrics.accounting import TrafficAccount, reduction_rate


class TestTrafficAccount:
    def test_record_query(self):
        acct = TrafficAccount()
        acct.record_query(100.0, messages=10, duplicates=3)
        acct.record_query(50.0, messages=5)
        assert acct.query_traffic == 150.0
        assert acct.queries == 2
        assert acct.query_messages == 15
        assert acct.duplicate_messages == 3

    def test_record_overhead(self):
        acct = TrafficAccount()
        acct.record_overhead(30.0)
        acct.record_overhead(20.0)
        assert acct.overhead_traffic == 50.0
        assert acct.total_traffic == 50.0

    def test_per_query_excludes_overhead_by_default(self):
        acct = TrafficAccount()
        acct.record_query(100.0)
        acct.record_overhead(60.0)
        assert acct.per_query_traffic() == 100.0

    def test_per_query_amortizes_overhead(self):
        acct = TrafficAccount()
        acct.record_query(100.0)
        acct.record_query(100.0)
        acct.record_overhead(60.0)
        assert acct.per_query_traffic(include_overhead=True) == pytest.approx(130.0)

    def test_per_query_no_queries(self):
        assert TrafficAccount().per_query_traffic() == 0.0

    def test_merged(self):
        a = TrafficAccount(query_traffic=10.0, overhead_traffic=1.0, queries=1)
        b = TrafficAccount(query_traffic=20.0, overhead_traffic=2.0, queries=2)
        m = a.merged_with(b)
        assert m.query_traffic == 30.0
        assert m.overhead_traffic == 3.0
        assert m.queries == 3


class TestReductionRate:
    def test_basic(self):
        assert reduction_rate(100.0, 50.0) == pytest.approx(0.5)

    def test_no_reduction(self):
        assert reduction_rate(100.0, 100.0) == 0.0

    def test_negative_when_worse(self):
        assert reduction_rate(100.0, 120.0) == pytest.approx(-0.2)

    def test_zero_baseline_safe(self):
        assert reduction_rate(0.0, 10.0) == 0.0
