"""Unit tests for the optimization-rate (gain/penalty) analysis."""

import math

import pytest

from repro.metrics.optimization import (
    OptimizationTradeoff,
    minimal_depth_for_gain,
    optimization_rate,
)


class TestOptimizationRate:
    def test_definition(self):
        # gain = R * saving, penalty = overhead.
        assert optimization_rate(50.0, 100.0, 2.0) == pytest.approx(1.0)
        assert optimization_rate(50.0, 100.0, 4.0) == pytest.approx(2.0)

    def test_scales_linearly_with_r(self):
        base = optimization_rate(30.0, 90.0, 1.0)
        assert optimization_rate(30.0, 90.0, 3.0) == pytest.approx(3 * base)

    def test_zero_overhead_infinite(self):
        assert math.isinf(optimization_rate(10.0, 0.0, 1.0))

    def test_zero_overhead_zero_saving(self):
        assert optimization_rate(0.0, 0.0, 1.0) == 0.0

    def test_negative_r_rejected(self):
        with pytest.raises(ValueError):
            optimization_rate(10.0, 10.0, -1.0)


def make_tradeoff(depth, baseline=100.0, optimized=60.0, overhead=80.0):
    return OptimizationTradeoff(
        depth=depth,
        avg_degree=6.0,
        baseline_traffic_per_query=baseline,
        optimized_traffic_per_query=optimized,
        overhead_per_reconstruction=overhead,
    )


class TestTradeoff:
    def test_saving(self):
        assert make_tradeoff(1).traffic_saved_per_query == pytest.approx(40.0)

    def test_reduction_percent(self):
        assert make_tradeoff(1).reduction_percent == pytest.approx(40.0)

    def test_reduction_percent_zero_baseline(self):
        t = make_tradeoff(1, baseline=0.0, optimized=0.0)
        assert t.reduction_percent == 0.0

    def test_rate(self):
        t = make_tradeoff(1)
        assert t.rate(2.0) == pytest.approx(2.0 * 40.0 / 80.0)


class TestMinimalDepth:
    def test_finds_smallest_profitable_depth(self):
        tradeoffs = [
            make_tradeoff(1, optimized=90.0, overhead=50.0),  # rate(2) = 0.4
            make_tradeoff(2, optimized=60.0, overhead=50.0),  # rate(2) = 1.6
            make_tradeoff(3, optimized=50.0, overhead=60.0),  # rate(2) = 1.67
        ]
        assert minimal_depth_for_gain(tradeoffs, 2.0) == 2

    def test_none_when_never_profitable(self):
        tradeoffs = [make_tradeoff(h, optimized=95.0, overhead=100.0) for h in (1, 2)]
        assert minimal_depth_for_gain(tradeoffs, 1.0) is None

    def test_paper_claim_r_grows_minimal_h_shrinks(self):
        tradeoffs = [
            make_tradeoff(1, optimized=80.0, overhead=50.0),  # saving 20
            make_tradeoff(2, optimized=50.0, overhead=60.0),  # saving 50
        ]
        # At R = 1.5: h=1 rate 0.6, h=2 rate 1.25 -> minimal 2.
        assert minimal_depth_for_gain(tradeoffs, 1.5) == 2
        # At R = 3: h=1 rate 1.2 -> minimal 1.
        assert minimal_depth_for_gain(tradeoffs, 3.0) == 1
