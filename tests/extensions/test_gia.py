"""Unit tests for the Gia capacity-aware comparator."""

import numpy as np
import pytest

from repro.extensions.gia import GiaAdaptation, GiaReport, assign_capacities
from repro.topology.overlay import small_world_overlay


@pytest.fixture
def world(ba_physical):
    return small_world_overlay(
        ba_physical, 40, avg_degree=6, rng=np.random.default_rng(7)
    )


class TestCapacities:
    def test_assignment_levels(self):
        caps = assign_capacities(list(range(500)), np.random.default_rng(0))
        assert set(caps.values()) <= {1.0, 10.0, 100.0, 1000.0}
        assert len(caps) == 500

    def test_distribution_shape(self):
        caps = assign_capacities(list(range(4000)), np.random.default_rng(0))
        values = list(caps.values())
        # The 10x level dominates; 1000x is rare.
        assert values.count(10.0) > values.count(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_capacities([1], np.random.default_rng(0),
                              levels=(1.0,), weights=(0.5, 0.5))


class TestTargetDegree:
    def test_monotone_in_capacity(self, world):
        gia = GiaAdaptation(
            world,
            capacities={p: 1.0 for p in world.peers()},
            rng=np.random.default_rng(0),
        )
        gia.capacities[world.peers()[0]] = 1000.0
        low = gia.target_degree(world.peers()[1])
        high = gia.target_degree(world.peers()[0])
        assert high > low

    def test_clamped(self, world):
        gia = GiaAdaptation(
            world,
            capacities={p: 10.0**9 for p in world.peers()},
            rng=np.random.default_rng(0),
            max_degree=12,
        )
        assert gia.target_degree(world.peers()[0]) == 12


class TestAdaptation:
    def test_correlation_improves(self, world):
        gia = GiaAdaptation(world, rng=np.random.default_rng(1))
        before = gia.capacity_degree_correlation()
        gia.run(6)
        after = gia.capacity_degree_correlation()
        assert after > before
        assert after > 0.3

    def test_degree_bounds_respected(self, world):
        gia = GiaAdaptation(
            world, rng=np.random.default_rng(1), min_degree=2, max_degree=16
        )
        gia.run(6)
        for p in world.peers():
            assert world.degree(p) <= 16

    def test_reports_accumulate(self, world):
        gia = GiaAdaptation(world, rng=np.random.default_rng(1))
        report = gia.step()
        assert gia.steps_run == 1
        assert report.rewires + report.satisfied_peers > 0

    def test_paper_point_mismatch_untouched(self, world):
        """Section 2: Gia 'does not address the topology mismatching
        problem' — the average logical-link cost barely moves, while ACE
        drives it down on the same overlay."""
        from repro.core.ace import AceProtocol

        baseline = world.total_edge_cost() / world.num_edges

        gia_world = world.copy()
        gia = GiaAdaptation(gia_world, rng=np.random.default_rng(2))
        gia.run(6)
        gia_cost = gia_world.total_edge_cost() / gia_world.num_edges

        ace_world = world.copy()
        protocol = AceProtocol(ace_world, rng=np.random.default_rng(2))
        protocol.run(6)
        ace_cost = ace_world.total_edge_cost() / ace_world.num_edges

        assert ace_cost < 0.8 * baseline
        assert gia_cost > 0.8 * baseline  # locality-oblivious rewiring
