"""Unit tests for the landmark-based matching comparator."""

import numpy as np
import pytest

from repro.extensions.landmark import LandmarkMatcher, LandmarkReport
from repro.oracle import LandmarkOracle
from repro.topology.overlay import small_world_overlay
from repro.topology.physical import PhysicalTopology
from repro.topology.overlay import Overlay


@pytest.fixture
def world(ba_physical):
    return small_world_overlay(
        ba_physical, 40, avg_degree=6, rng=np.random.default_rng(3)
    )


class TestVectors:
    def test_vector_shape(self, world):
        matcher = LandmarkMatcher(world, n_landmarks=5, rng=np.random.default_rng(0))
        vec = matcher.vector_of(world.peers()[0])
        assert vec.shape == (5,)
        assert (vec >= 0).all()

    def test_vectors_cached(self, world):
        matcher = LandmarkMatcher(world, n_landmarks=4, rng=np.random.default_rng(0))
        a = matcher.vector_of(0)
        assert matcher.vector_of(0) is a

    def test_needs_landmarks(self, world):
        with pytest.raises(ValueError):
            LandmarkMatcher(world, n_landmarks=0)

    def test_estimate_symmetric_and_zero_on_self(self, world):
        matcher = LandmarkMatcher(world, rng=np.random.default_rng(0))
        a, b = world.peers()[:2]
        assert matcher.estimated_distance(a, b) == pytest.approx(
            matcher.estimated_distance(b, a)
        )
        assert matcher.estimated_distance(a, a) == 0.0

    def test_estimate_is_lower_bound_flavor(self):
        """On a line underlay the landmark estimate underestimates the true
        distance whenever both peers sit on the same side of all landmarks —
        the inaccuracy the paper's criticism relies on."""
        phys = PhysicalTopology(
            10, [(i, i + 1) for i in range(9)], [1.0] * 9
        )
        ov = Overlay(phys, {0: 4, 1: 6})
        ov.connect(0, 1)
        matcher = LandmarkMatcher(
            ov, oracle=LandmarkOracle(phys, landmarks=[0], estimator="euclidean")
        )
        # |d(4,0) - d(6,0)| = 2 equals the true distance here; with the
        # landmark on the same side it can never exceed it.
        assert matcher.estimated_distance(0, 1) <= ov.cost(0, 1) + 1e-9

    def test_landmark_assignment_shim_deprecated(self, world):
        matcher = LandmarkMatcher(world, n_landmarks=4, rng=np.random.default_rng(0))
        matcher.vector_of(0)  # populate the cache the shim must invalidate
        target = world.host_of(world.peers()[0])
        with pytest.warns(DeprecationWarning):
            matcher.landmarks = [target]
        assert matcher.landmarks == [target]
        assert matcher.vector_of(0).shape == (1,)

    def test_shares_oracle_seeded_draw(self, world):
        """Same seed => matcher and a directly-built oracle agree on the
        landmark set — the dedup guarantee of the adapter."""
        matcher = LandmarkMatcher(world, n_landmarks=6, rng=np.random.default_rng(9))
        oracle = LandmarkOracle(
            world.physical,
            n_landmarks=6,
            strategy="random",
            estimator="euclidean",
            rng=np.random.default_rng(9),
        )
        assert matcher.landmarks == oracle.landmarks
        a = world.peers()[0]
        assert matcher.vector_of(a) == pytest.approx(
            np.asarray(oracle.vector_of(world.host_of(a)))
        )


class TestEstimationError:
    def test_error_is_positive(self, world):
        matcher = LandmarkMatcher(world, n_landmarks=4, rng=np.random.default_rng(1))
        err = matcher.estimation_error(samples=64)
        assert err > 0.05  # landmark embedding is measurably inaccurate

    def test_more_landmarks_reduce_error(self, world):
        few = LandmarkMatcher(world, n_landmarks=2, rng=np.random.default_rng(1))
        many = LandmarkMatcher(world, n_landmarks=16, rng=np.random.default_rng(1))
        assert many.estimation_error(samples=128) <= few.estimation_error(
            samples=128
        ) * 1.25


class TestOptimization:
    def test_step_rewires(self, world):
        matcher = LandmarkMatcher(world, rng=np.random.default_rng(2))
        report = matcher.step()
        assert matcher.steps_run == 1
        assert report.probe_overhead > 0
        assert report.rewires >= 0

    def test_degree_roughly_preserved(self, world):
        before = world.average_degree()
        matcher = LandmarkMatcher(world, rng=np.random.default_rng(2))
        matcher.run(4)
        assert abs(world.average_degree() - before) < 0.5

    def test_rewiring_reduces_estimated_cost(self, world):
        matcher = LandmarkMatcher(world, rng=np.random.default_rng(2))
        before = world.total_edge_cost()
        matcher.run(6)
        after = world.total_edge_cost()
        # Estimate-driven rewiring still tends to improve true cost, just
        # less reliably than ACE's direct measurement.
        assert after < before

    def test_min_degree_respected(self, world):
        matcher = LandmarkMatcher(
            world, rng=np.random.default_rng(2), min_degree=2
        )
        matcher.run(4)
        assert all(world.degree(p) >= 1 for p in world.peers())
