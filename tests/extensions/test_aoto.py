"""Unit tests for the AOTO precursor."""

import numpy as np
import pytest

from repro.core.ace import AceConfig
from repro.extensions.aoto import AotoProtocol, aoto_config
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.overlay import small_world_overlay


class TestConfig:
    def test_forces_depth_one_and_no_keep_both(self):
        cfg = aoto_config(AceConfig(depth=4, allow_keep_both=True))
        assert cfg.depth == 1
        assert not cfg.allow_keep_both

    def test_other_fields_preserved(self):
        cfg = aoto_config(AceConfig(policy="closest", min_degree=3))
        assert cfg.policy == "closest"
        assert cfg.min_degree == 3

    def test_default_base(self):
        cfg = aoto_config()
        assert cfg.depth == 1


class TestProtocol:
    def test_runs_and_preserves_scope(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(2)
        )
        protocol = AotoProtocol(ov, rng=np.random.default_rng(2))
        protocol.run(3)
        for src in ov.peers()[:4]:
            prop = propagate(ov, src, ace_strategy(protocol), ttl=None)
            assert prop.reached == set(ov.peers())

    def test_never_keeps_both(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(2)
        )
        protocol = AotoProtocol(ov, rng=np.random.default_rng(2))
        reports = protocol.run(4)
        assert all(r.keep_both_adds == 0 for r in reports)

    def test_reduces_traffic(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 35, avg_degree=8, rng=np.random.default_rng(4)
        )
        sources = ov.peers()[:6]
        before = sum(
            propagate(ov, s, blind_flooding_strategy(ov), ttl=None).traffic_cost
            for s in sources
        )
        protocol = AotoProtocol(ov, rng=np.random.default_rng(4))
        protocol.run(5)
        after = sum(
            propagate(ov, s, ace_strategy(protocol), ttl=None).traffic_cost
            for s in sources
        )
        assert after < before
