"""Unit tests for Hybrid Periodical Flooding."""

import numpy as np
import pytest

from repro.extensions.hpf import HPF_WEIGHTINGS, hpf_strategy
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.overlay import small_world_overlay
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def star():
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (0, 4, 4.0), (0, 5, 5.0)]
    )


class TestValidation:
    def test_bad_fraction(self, star):
        with pytest.raises(ValueError):
            hpf_strategy(star, np.random.default_rng(0), fraction=0.0)
        with pytest.raises(ValueError):
            hpf_strategy(star, np.random.default_rng(0), fraction=1.5)

    def test_bad_min_neighbors(self, star):
        with pytest.raises(ValueError):
            hpf_strategy(star, np.random.default_rng(0), min_neighbors=0)

    def test_bad_weighting(self, star):
        with pytest.raises(ValueError):
            hpf_strategy(star, np.random.default_rng(0), weighting="bogus")

    def test_weighting_registry(self):
        assert HPF_WEIGHTINGS == ("random", "degree", "cost")


class TestSubsetSelection:
    def test_fraction_controls_subset_size(self, star):
        strategy = hpf_strategy(
            star, np.random.default_rng(0), fraction=0.4, min_neighbors=1
        )
        targets = list(strategy(0, None))
        assert len(targets) == 2  # ceil(0.4 * 5)

    def test_min_neighbors_floor(self, star):
        strategy = hpf_strategy(
            star, np.random.default_rng(0), fraction=0.01, min_neighbors=3
        )
        assert len(list(strategy(0, None))) == 3

    def test_full_fraction_returns_everyone(self, star):
        strategy = hpf_strategy(star, np.random.default_rng(0), fraction=1.0)
        assert sorted(strategy(0, None)) == [1, 2, 3, 4, 5]

    def test_excludes_sender(self, star):
        strategy = hpf_strategy(star, np.random.default_rng(0), fraction=1.0)
        assert 3 not in strategy(0, 3)

    def test_leaf_keeps_its_only_link(self, star):
        strategy = hpf_strategy(star, np.random.default_rng(0), fraction=0.5)
        assert list(strategy(1, None)) == [0]

    @pytest.mark.parametrize("weighting", HPF_WEIGHTINGS)
    def test_all_weightings_produce_valid_subsets(self, star, weighting):
        strategy = hpf_strategy(
            star, np.random.default_rng(1), fraction=0.5, weighting=weighting
        )
        targets = list(strategy(0, None))
        assert len(set(targets)) == len(targets)
        assert set(targets) <= {1, 2, 3, 4, 5}

    def test_cost_weighting_prefers_cheap_links(self, star):
        rng = np.random.default_rng(7)
        strategy = hpf_strategy(
            star, rng, fraction=0.2, min_neighbors=1, weighting="cost"
        )
        counts = {n: 0 for n in (1, 2, 3, 4, 5)}
        for _ in range(400):
            for t in strategy(0, None):
                counts[t] += 1
        assert counts[1] > counts[5]


class TestEndToEnd:
    def test_partial_flooding_trades_scope_for_traffic(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 50, avg_degree=8, rng=np.random.default_rng(2)
        )
        full = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        partial = propagate(
            ov, 0,
            hpf_strategy(ov, np.random.default_rng(3), fraction=0.4),
            ttl=None,
        )
        assert partial.traffic_cost < full.traffic_cost
        assert partial.search_scope <= full.search_scope
        # Coverage stays substantial (the "hybrid" point of HPF).
        assert partial.search_scope > 0.5 * full.search_scope
