"""Unit tests for the simplified LTM comparator."""

import numpy as np
import pytest

from repro.extensions.ltm import LtmProtocol, LtmReport
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.overlay import small_world_overlay
from repro.topology.physical import PhysicalTopology
from repro.topology.overlay import Overlay


def overlay_on_line(hosts, edges, n=16):
    phys = PhysicalTopology(
        n, [(i, i + 1) for i in range(n - 1)], [1.0] * (n - 1)
    )
    ov = Overlay(phys, dict(enumerate(hosts)))
    for u, v in edges:
        ov.connect(u, v)
    return ov


class TestTriangleCutting:
    def test_cuts_longest_incident_side(self):
        # Triangle 0@0, 1@1, 2@9: longest side is 0-2 (9).
        ov = overlay_on_line([0, 1, 9], [(0, 1), (1, 2), (0, 2)])
        ltm = LtmProtocol(ov, rng=np.random.default_rng(0), min_degree=1)
        report = LtmReport(step_index=0)
        ltm.optimize_peer(0, report)
        assert report.cuts == 1
        assert not ov.has_edge(0, 2)
        assert ov.is_connected()

    def test_no_triangle_no_cut(self):
        ov = overlay_on_line([0, 5, 9], [(0, 1), (1, 2)])
        ltm = LtmProtocol(ov, rng=np.random.default_rng(0), min_degree=1)
        report = LtmReport(step_index=0)
        assert ltm.optimize_peer(0, report) == 0
        assert report.triangles_seen == 0

    def test_does_not_cut_other_peers_links(self):
        # Longest side 1-2 is not incident to peer 0, so 0 cannot cut it.
        ov = overlay_on_line([4, 0, 9], [(0, 1), (1, 2), (0, 2)])
        ltm = LtmProtocol(ov, rng=np.random.default_rng(0), min_degree=1)
        report = LtmReport(step_index=0)
        ltm.optimize_peer(1, report)
        # d(1,0)=4, d(1,2)=9, d(0,2)=5: peer 1 cuts its own 1-2 link.
        assert not ov.has_edge(1, 2)
        assert ov.has_edge(0, 2)

    def test_respects_min_degree(self):
        ov = overlay_on_line([0, 1, 9], [(0, 1), (1, 2), (0, 2)])
        ltm = LtmProtocol(ov, rng=np.random.default_rng(0), min_degree=2)
        report = LtmReport(step_index=0)
        assert ltm.optimize_peer(0, report) == 0
        assert ov.has_edge(0, 2)

    def test_equilateral_triangle_untouched(self):
        # All sides equal: no strictly longest side, nothing cut.
        phys = PhysicalTopology(3, [(0, 1), (1, 2), (0, 2)], [5.0, 5.0, 5.0])
        ov = Overlay(phys, {0: 0, 1: 1, 2: 2})
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            ov.connect(u, v)
        ltm = LtmProtocol(ov, rng=np.random.default_rng(0), min_degree=1)
        report = LtmReport(step_index=0)
        for p in (0, 1, 2):
            ltm.optimize_peer(p, report)
        assert ov.num_edges == 3


class TestStep:
    def test_step_counts(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(5)
        )
        ltm = LtmProtocol(ov, rng=np.random.default_rng(5))
        report = ltm.step()
        assert ltm.steps_run == 1
        assert report.detector_overhead > 0
        assert report.triangles_seen > 0

    def test_scope_preserved_after_cuts(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(5)
        )
        ltm = LtmProtocol(ov, rng=np.random.default_rng(5))
        ltm.run(3)
        prop = propagate(ov, ov.peers()[0], blind_flooding_strategy(ov), ttl=None)
        assert prop.reached == set(ov.peers())

    def test_traffic_reduced(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 35, avg_degree=8, rng=np.random.default_rng(6)
        )
        sources = ov.peers()[:6]
        before = sum(
            propagate(ov, s, blind_flooding_strategy(ov), ttl=None).traffic_cost
            for s in sources
        )
        ltm = LtmProtocol(ov, rng=np.random.default_rng(6))
        ltm.run(3)
        after = sum(
            propagate(ov, s, blind_flooding_strategy(ov), ttl=None).traffic_cost
            for s in sources
        )
        assert after < before

    def test_convergence(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(7)
        )
        ltm = LtmProtocol(ov, rng=np.random.default_rng(7))
        reports = ltm.run(12)
        assert reports[-1].cuts == 0  # no triangles with cuttable sides left
