"""Sim-vs-live convergence and degradation tests for the network runtime.

The headline guarantee: a seeded scenario run through the live asyncio
runtime under the lockstep discipline produces *the same* results as the
discrete-event simulator — the ACE-optimized adjacency, every step
report's overhead floats, and every query's traffic cost, message counts,
duplicates, scope and logical response time, all compared with ``==``.

Degradation: killing a peer mid-run must not hang or crash the fleet —
the run completes with the victim marked dead, retries counted, and
queries still returning hits.
"""

import pytest

from repro.core.ace import AceConfig
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.net.launch import (
    compare_runs,
    plan_queries,
    run_live,
    run_sim_reference,
)
from repro.net.runtime import NetConfig
from repro.perf import counters

CONFIG = ScenarioConfig(physical_nodes=64, peers=8, avg_degree=4.0, seed=7)
ACE = AceConfig()
STEPS = 2
QUERIES = 6


@pytest.fixture(scope="module")
def plan():
    return plan_queries(build_scenario(CONFIG), QUERIES)


@pytest.fixture(scope="module")
def reference(plan):
    return run_sim_reference(build_scenario(CONFIG), ACE, STEPS, plan)


class TestLockstepConvergence:
    def test_live_run_equals_simulation(self, plan, reference):
        live = run_live(
            build_scenario(CONFIG), ACE, steps=STEPS, plan=plan,
            net=NetConfig(),
        )
        problems = compare_runs(live, reference)
        assert problems == []
        assert live.clean_shutdown
        assert live.dead == []
        assert live.total_hits > 0
        # Real traffic crossed real sockets.
        assert live.bytes_sent > 0
        assert live.messages_sent > 0
        assert live.connections > 0

    def test_step_overheads_are_nonzero(self, reference):
        # Guards the comparison against vacuous equality: the protocol
        # must actually have probed and exchanged tables.
        assert all(r.total_overhead > 0 for r in reference.step_reports)
        assert any(q["responders"] for q in reference.queries)

    def test_net_counters_accumulate(self, plan):
        before = counters.copy()
        live = run_live(
            build_scenario(CONFIG), ACE, steps=1, plan=plan[:2],
            net=NetConfig(),
        )
        delta = counters.delta(before)
        # The result snapshots its totals before the orderly-shutdown
        # frames go out, so the process-wide delta is at least as large.
        assert delta["net_connections"] >= live.connections > 0
        assert delta["net_messages_sent"] >= live.messages_sent > 0
        assert delta["net_bytes_sent"] >= live.bytes_sent > 0


class TestDegradation:
    def test_peer_kill_completes_with_retries(self, plan):
        sources = {item.source for item in plan}
        victim = next(
            p for p in build_scenario(CONFIG).overlay.peers()
            if p not in sources
        )
        live = run_live(
            build_scenario(CONFIG), ACE, steps=1, plan=plan,
            net=NetConfig(drain_timeout=3.0, rpc_timeout=2.0),
            kill_peer=victim, kill_after_query=0, post_kill_steps=1,
        )
        # The run completed: every query produced a result entry and the
        # post-kill step ran (2 reports: 1 regular + 1 post-kill).
        assert len(live.queries) == len(plan)
        assert len(live.step_reports) == 2
        assert victim in live.dead
        assert live.retries >= 1
        assert live.total_hits > 0
        assert victim not in live.adjacency


class TestRealtimeDiscipline:
    def test_realtime_run_matches_adjacency_and_answers(self, plan, reference):
        live = run_live(
            build_scenario(CONFIG), ACE, steps=STEPS, plan=plan,
            net=NetConfig(discipline="realtime", latency_scale=0.0),
        )
        # Control plane (ACE) is discipline-independent: same adjacency
        # and same step floats as the simulator.
        problems = compare_runs(live, reference, check_queries=False)
        assert problems == []
        assert live.clean_shutdown
        assert live.total_hits > 0
        # Wall-clock first-response latency was measured for answered
        # queries.
        walls = [
            q["wall_first_response"]
            for q in live.queries
            if q.get("responders")
        ]
        assert walls and all(w >= 0.0 for w in walls)
