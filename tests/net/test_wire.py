"""Wire-codec tests: every descriptor round-trips bit-exactly.

The convergence guarantee of the live runtime rests on the codec being
lossless: the simulator's cost floats, GUIDs, and table entries must
survive the socket unchanged.  These tests round-trip one instance of
every registered message class (simulator descriptors and control frames),
assert equality field for field, and exercise the failure modes — unknown
type ids, truncated frames, version mismatches, oversized bodies — plus
byte-at-a-time reassembly through :class:`repro.net.wire.FrameAssembler`.
"""

import struct

import pytest

from repro.net.wire import (
    HEADER,
    MAX_BODY_BYTES,
    WIRE_VERSION,
    ConnectAck,
    Envelope,
    FrameAssembler,
    FrameTooLarge,
    GetPeers,
    GetTable,
    Hello,
    OptimizeTurn,
    PeerSample,
    Shutdown,
    TruncatedFrame,
    TurnDone,
    UnknownMessageType,
    VersionMismatch,
    Welcome,
    WireError,
    decode_frame,
    encode_frame,
    message_types,
    type_id_of,
)
from repro.sim.messages import (
    ConnectRequest,
    CostProbe,
    CostProbeReply,
    CostTableMessage,
    DisconnectNotice,
    Ping,
    Pong,
    Query,
    QueryHit,
)

# Floats chosen to be awkward: 0.1 + 0.2 != 0.3, and the sum's exact bits
# must survive JSON; 1/3 has a full 53-bit mantissa.
AWKWARD = 0.1 + 0.2
THIRD = 1.0 / 3.0

ENV = Envelope(src=3, dst=7, ltime=AWKWARD, seq=41, rpc=5, reply=None)

#: One instance of every registered message class, with non-default
#: values in every field that has one.
SAMPLES = [
    Ping(sender=1, guid=101, ttl=5, hops=2),
    Pong(sender=2, guid=102, ttl=4, hops=3),
    Query(sender=3, guid=103, ttl=6, hops=1, object_id=17),
    Query(sender=3, guid=104, ttl=6, hops=1, object_id="an object"),
    QueryHit(sender=4, guid=103, ttl=2, hops=1, object_id=17, responder=9),
    CostProbe(sender=5, guid=105, ttl=1, hops=0, target=8),
    CostProbeReply(sender=8, guid=106, ttl=1, hops=0, target=5),
    CostTableMessage(
        sender=6,
        guid=107,
        entries=((2, AWKWARD), (9, THIRD), (11, 0.0)),
    ),
    ConnectRequest(sender=7, guid=108, target=12),
    DisconnectNotice(sender=8, guid=109, target=13),
    Hello(peer=3, host="127.0.0.1", port=4444),
    Welcome(
        peer=3,
        members=(0, 1, 2, 3),
        addresses={0: ("127.0.0.1", 5000), 2: ("127.0.0.1", 5002)},
        neighbors=(0, 2),
        cost_row={0: AWKWARD, 1: THIRD, 2: 4.25},
        config={"depth": 1, "policy": "random", "max_targets_per_step": None},
    ),
    GetPeers(count=4),
    PeerSample(addresses={5: ("10.0.0.1", 6000)}),
    GetTable(peer=9),
    ConnectAck(accepted=False),
    OptimizeTurn(phase="optimize", step_index=3, rng_state='{"s": 1}'),
    TurnDone(rng_state='{"s": 2}', report={"probes": 4, "cost": THIRD}),
    Shutdown(reason="test over"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_round_trips_bit_exactly(self, message):
        frame = encode_frame(message, ENV)
        decoded, env, consumed = decode_frame(frame)
        assert consumed == len(frame)
        assert type(decoded) is type(message)
        assert decoded == message
        assert env == ENV
        # Field-for-field identity, including float bits and container types.
        for name in vars(message):
            got, want = getattr(decoded, name), getattr(message, name)
            assert got == want
            assert type(got) is type(want)

    def test_every_registered_type_is_covered(self):
        covered = {type(m) for m in SAMPLES}
        assert covered == set(message_types().values())

    def test_cost_table_entries_keep_exact_shape(self):
        msg = CostTableMessage(sender=1, entries=((4, AWKWARD),))
        decoded, _env, _n = decode_frame(encode_frame(msg, ENV))
        assert isinstance(decoded.entries, tuple)
        assert isinstance(decoded.entries[0], tuple)
        assert isinstance(decoded.entries[0][0], int)
        # The float survives with its exact bits (0.30000000000000004).
        assert decoded.entries[0][1] == AWKWARD
        assert struct.pack("!d", decoded.entries[0][1]) == struct.pack(
            "!d", AWKWARD
        )

    def test_welcome_int_keys_survive_json(self):
        msg = Welcome(peer=1, cost_row={7: 1.5}, addresses={7: ("h", 1)})
        decoded, _env, _n = decode_frame(encode_frame(msg, ENV))
        assert decoded.cost_row == {7: 1.5}
        assert decoded.addresses == {7: ("h", 1)}
        assert all(isinstance(k, int) for k in decoded.cost_row)

    def test_envelope_defaults_round_trip(self):
        env = Envelope(src=0, dst=1)
        decoded, got_env, _n = decode_frame(encode_frame(Ping(sender=0), env))
        assert got_env == env
        assert got_env.rpc is None and got_env.reply is None


class TestRejection:
    def test_unknown_type_id_rejected(self):
        frame = encode_frame(Ping(sender=1), ENV)
        bad = HEADER.pack(len(frame) - HEADER.size, WIRE_VERSION, 200)
        with pytest.raises(UnknownMessageType):
            decode_frame(bad + frame[HEADER.size:])

    def test_unregistered_class_rejected_at_encode(self):
        with pytest.raises(UnknownMessageType):
            encode_frame(object(), ENV)
        with pytest.raises(UnknownMessageType):
            type_id_of("not a message")

    def test_truncated_header_rejected(self):
        frame = encode_frame(Ping(sender=1), ENV)
        for cut in range(HEADER.size):
            with pytest.raises(TruncatedFrame):
                decode_frame(frame[:cut])

    def test_truncated_body_rejected(self):
        frame = encode_frame(Query(sender=1, object_id=5), ENV)
        for cut in range(HEADER.size, len(frame)):
            with pytest.raises(TruncatedFrame):
                decode_frame(frame[:cut])

    def test_version_mismatch_rejected(self):
        frame = encode_frame(Ping(sender=1), ENV)
        length, _version, tid = HEADER.unpack_from(frame)
        bad = HEADER.pack(length, WIRE_VERSION + 1, tid) + frame[HEADER.size:]
        with pytest.raises(VersionMismatch):
            decode_frame(bad)

    def test_oversized_declared_body_rejected(self):
        bad = HEADER.pack(MAX_BODY_BYTES + 1, WIRE_VERSION, 1)
        with pytest.raises(FrameTooLarge):
            decode_frame(bad)

    def test_garbage_body_rejected(self):
        body = b"not json at all"
        frame = HEADER.pack(len(body), WIRE_VERSION, 1) + body
        with pytest.raises(WireError):
            decode_frame(frame)


class TestFrameAssembler:
    def test_byte_at_a_time_reassembly(self):
        frames = b"".join(encode_frame(m, ENV) for m in SAMPLES)
        assembler = FrameAssembler()
        got = []
        for i in range(len(frames)):
            got.extend(assembler.feed(frames[i:i + 1]))
        assert [m for m, _e in got] == SAMPLES
        assert all(e == ENV for _m, e in got)
        assert assembler.pending_bytes == 0

    def test_multiple_frames_in_one_feed(self):
        frames = b"".join(encode_frame(m, ENV) for m in SAMPLES[:5])
        assembler = FrameAssembler()
        got = assembler.feed(frames)
        assert [m for m, _e in got] == SAMPLES[:5]

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(Shutdown(reason="x"), ENV)
        assembler = FrameAssembler()
        assert assembler.feed(frame[:-3]) == []
        assert assembler.pending_bytes == len(frame) - 3
        got = assembler.feed(frame[-3:])
        assert [m for m, _e in got] == [Shutdown(reason="x")]
        assert assembler.pending_bytes == 0
