"""Equivalence suite: ArrayOverlay must behave exactly like Overlay.

Every test drives the struct-of-arrays engine and the dict-of-sets reference
implementation through the same operation sequence and asserts identical
observable state — adjacency, costs, epochs, counters-relevant cache
behaviour — including across edit-buffer compaction boundaries forced by a
tiny ``compact_threshold``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import counters
from repro.topology.generators import barabasi_albert, grid
from repro.topology.overlay import Overlay, random_overlay
from repro.topology.soa import ArrayOverlay


def assert_equivalent(obj: Overlay, arr: ArrayOverlay) -> None:
    """Full observable-state comparison between the two engines."""
    assert arr.num_peers == obj.num_peers
    assert arr.num_edges == obj.num_edges
    assert arr.peers() == obj.peers()
    assert arr.epoch == obj.epoch
    assert arr.average_degree() == pytest.approx(obj.average_degree())
    for p in obj.peers():
        assert arr.has_peer(p)
        assert arr.host_of(p) == obj.host_of(p)
        assert arr.neighbors(p) == obj.neighbors(p)
        assert arr.degree(p) == obj.degree(p)
    assert sorted(arr.edges()) == sorted(obj.edges())
    assert arr.is_connected() == obj.is_connected()
    assert sorted(map(sorted, arr.components())) == sorted(
        map(sorted, obj.components())
    )


@pytest.fixture
def physical():
    return barabasi_albert(150, m=2, rng=np.random.default_rng(42))


@pytest.fixture
def pair(physical):
    """An object overlay and its array conversion (aggressive compaction)."""
    obj = random_overlay(physical, 36, avg_degree=5, rng=np.random.default_rng(9))
    arr = ArrayOverlay.from_overlay(obj, compact_threshold=3)
    return obj, arr


class TestConversion:
    def test_from_overlay_matches(self, pair):
        obj, arr = pair
        assert_equivalent(obj, arr)

    def test_from_overlay_carries_known_costs(self, physical):
        obj = random_overlay(
            physical, 20, avg_degree=4, rng=np.random.default_rng(3)
        )
        obj.warm_edge_costs()
        arr = ArrayOverlay.from_overlay(obj)
        assert arr.cached_edge_costs == obj.cached_edge_costs == obj.num_edges
        for u, v in obj.edges():
            assert arr.cost(u, v) == obj.cost(u, v)

    def test_from_array_roundtrip(self, pair):
        _, arr = pair
        again = ArrayOverlay.from_overlay(arr)
        assert_equivalent(arr, again)

    def test_empty_overlay(self, physical):
        arr = ArrayOverlay.from_overlay(Overlay(physical))
        assert arr.num_peers == 0
        assert arr.num_edges == 0
        assert arr.peers() == []
        assert arr.average_degree() == 0.0
        assert arr.is_connected()


class TestMutationEquivalence:
    def test_churn_sequence_across_compactions(self, physical, pair):
        obj, arr = pair
        rng = np.random.default_rng(77)
        next_peer = max(obj.peers()) + 1
        before = counters.soa_compactions
        for _ in range(300):
            op = int(rng.integers(5))
            peers = obj.peers()
            if op == 0 and len(peers) > 6:
                victim = peers[int(rng.integers(len(peers)))]
                obj.remove_peer(victim)
                arr.remove_peer(victim)
            elif op == 1:
                host = int(rng.integers(physical.num_nodes))
                obj.add_peer(next_peer, host)
                arr.add_peer(next_peer, host)
                next_peer += 1
            elif op == 2 and len(peers) > 2:
                i, j = rng.choice(len(peers), 2, replace=False)
                u, v = peers[int(i)], peers[int(j)]
                assert obj.connect(u, v) == arr.connect(u, v)
            elif op == 3 and obj.num_edges:
                edges = sorted(obj.edges())
                u, v = edges[int(rng.integers(len(edges)))]
                assert obj.disconnect(u, v) == arr.disconnect(u, v)
            else:
                if len(peers) >= 2:
                    u, v = peers[0], peers[-1]
                    assert obj.has_edge(u, v) == arr.has_edge(u, v)
            assert obj.epoch == arr.epoch
        assert counters.soa_compactions > before, "threshold never crossed"
        assert_equivalent(obj, arr)

    def test_reconnect_after_tombstone(self, pair):
        obj, arr = pair
        u, v = sorted(obj.edges())[0]
        for engine in (obj, arr):
            assert engine.disconnect(u, v)
            assert engine.connect(u, v)
            assert not engine.connect(u, v)
        assert_equivalent(obj, arr)

    def test_connect_errors_match(self, pair):
        obj, arr = pair
        p = obj.peers()[0]
        for engine in (obj, arr):
            with pytest.raises(ValueError):
                engine.connect(p, p)
            with pytest.raises(KeyError):
                engine.connect(p, 10**9)
            with pytest.raises(KeyError):
                engine.disconnect(p, 10**9)
            with pytest.raises(KeyError):
                engine.neighbors(10**9)
            with pytest.raises(ValueError):
                engine.add_peer(p, 0)
            with pytest.raises(ValueError):
                engine.add_peer(10**9, 10**9)

    def test_slot_reuse_after_removal(self, physical):
        arr = ArrayOverlay(physical)
        for p in range(6):
            arr.add_peer(p, p)
        arr.connect(0, 1)
        arr.connect(1, 2)
        arr.remove_peer(1)
        # New peer reuses the freed slot; stale tombstones must not leak.
        arr.add_peer(99, 7)
        assert arr.neighbors(0) == set()
        assert arr.neighbors(99) == set()
        arr.connect(0, 99)
        assert arr.neighbors(0) == {99}
        assert arr.degree(99) == 1


class TestCostEquivalence:
    def test_warm_and_cost_values(self, pair):
        obj, arr = pair
        assert arr.warm_edge_costs() == obj.warm_edge_costs()
        for u, v in obj.edges():
            assert arr.cost(u, v) == obj.cost(u, v)
        assert arr.cached_edge_costs == obj.cached_edge_costs

    def test_warm_is_noop_when_warm(self, pair):
        obj, arr = pair
        arr.warm_edge_costs()
        runs_before = counters.dijkstra_runs
        assert arr.warm_edge_costs() == 0
        assert counters.dijkstra_runs == runs_before

    def test_costs_from_mixed_targets(self, pair):
        obj, arr = pair
        peers = obj.peers()
        for source in peers[:8]:
            targets = peers[::4] + sorted(obj.neighbors(source))
            assert arr.costs_from(source, targets) == obj.costs_from(
                source, targets
            )

    def test_cost_of_non_edge_and_self(self, pair):
        obj, arr = pair
        peers = obj.peers()
        u = peers[0]
        assert arr.cost(u, u) == obj.cost(u, u) == 0.0
        non_neighbor = next(
            p for p in peers if p != u and p not in obj.neighbors(u)
        )
        assert arr.cost(u, non_neighbor) == obj.cost(u, non_neighbor)

    def test_connect_seeds_cost_from_host_cache(self, pair):
        obj, arr = pair
        obj.warm_edge_costs()
        arr.warm_edge_costs()
        peers = obj.peers()
        u = peers[0]
        candidates = [p for p in peers[1:] if not obj.has_edge(u, p)]
        v = candidates[0]
        obj.costs_from(u, [v])  # populate the host-pair cache in both
        arr.costs_from(u, [v])
        obj.connect(u, v)
        arr.connect(u, v)
        hits_before = counters.edge_cost_hits
        d_obj = obj.cost(u, v)
        d_arr = arr.cost(u, v)
        assert d_obj == d_arr
        assert counters.edge_cost_hits == hits_before + 2

    def test_invalidate_edge_costs(self, pair):
        obj, arr = pair
        obj.warm_edge_costs()
        arr.warm_edge_costs()
        obj.invalidate_edge_costs()
        arr.invalidate_edge_costs()
        assert arr.cached_edge_costs == obj.cached_edge_costs == 0
        assert arr.epoch == obj.epoch
        assert arr.warm_edge_costs() == obj.warm_edge_costs()

    def test_same_host_edges_cost_zero(self, physical):
        arr = ArrayOverlay(physical)
        arr.add_peer(1, 5)
        arr.add_peer(2, 5)
        arr.connect(1, 2)
        assert arr.cost(1, 2) == 0.0
        assert arr.cached_edge_costs == 1


class TestCopySemantics:
    def test_copy_isolated_structure(self, pair):
        _, arr = pair
        clone = arr.copy()
        victim = arr.peers()[0]
        clone.remove_peer(victim)
        assert arr.has_peer(victim)
        assert clone.num_peers == arr.num_peers - 1

    def test_copy_shares_host_cache_but_not_edge_costs(self, pair):
        _, arr = pair
        clone = arr.copy()
        clone.warm_edge_costs()
        # The host-pair cache is shared (object-engine contract), so the
        # original can fill its per-edge costs without new underlay solves.
        runs_before = counters.dijkstra_runs
        arr.warm_edge_costs()
        assert counters.dijkstra_runs == runs_before

    def test_copy_preserves_epoch(self, pair):
        _, arr = pair
        assert arr.copy().epoch == arr.epoch


class TestFloodingCsr:
    def test_rows_sorted_and_complete(self, pair):
        obj, arr = pair
        peers, indptr, targets, costs = arr.flooding_csr()
        assert peers == obj.peers()
        assert not np.isnan(costs).any()
        for i, p in enumerate(peers):
            row = [peers[t] for t in targets[indptr[i] : indptr[i + 1]]]
            assert row == sorted(obj.neighbors(p))

    def test_csr_after_churn(self, pair):
        obj, arr = pair
        u, v = sorted(obj.edges())[0]
        obj.disconnect(u, v)
        arr.disconnect(u, v)
        peers, indptr, targets, _ = arr.flooding_csr()
        i = peers.index(u)
        row = [peers[t] for t in targets[indptr[i] : indptr[i + 1]]]
        assert row == sorted(obj.neighbors(u))

    def test_costs_match_object_engine(self, pair):
        obj, arr = pair
        obj.warm_edge_costs()
        peers, indptr, targets, costs = arr.flooding_csr()
        for i, p in enumerate(peers):
            for k in range(int(indptr[i]), int(indptr[i + 1])):
                q = peers[int(targets[k])]
                assert costs[k] == obj.cost(p, q)


class TestUseOracle:
    def test_use_oracle_resets_costs(self, pair):
        from repro.oracle.exact import ExactOracle

        obj, arr = pair
        obj.warm_edge_costs()
        arr.warm_edge_costs()
        obj.use_oracle(ExactOracle(obj.physical))
        arr.use_oracle(ExactOracle(arr.physical))
        assert arr.cached_edge_costs == obj.cached_edge_costs == 0
        assert arr.epoch == obj.epoch
        assert arr.warm_edge_costs() == obj.warm_edge_costs()
        for u, v in obj.edges():
            assert arr.cost(u, v) == obj.cost(u, v)

    def test_use_oracle_wrong_underlay_raises(self, pair):
        from repro.oracle.exact import ExactOracle

        _, arr = pair
        other = grid(3, 3, delay=1.0)
        with pytest.raises(ValueError):
            arr.use_oracle(ExactOracle(other))
